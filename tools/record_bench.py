#!/usr/bin/env python
"""Record benchmark perf baselines as ``BENCH_*.json`` in the repo root.

The ROADMAP asked for checked-in baselines so re-anchors can see the
speed trajectory, not just benchmark prose.  This regenerator runs the
benchmark workloads in-process and writes one JSON file per benchmark:

* ``BENCH_E12.json``  — the PTAAS guarantees (per-instance widths,
  gaps, iteration counts) and the engine-cache LP-solve reduction;
* ``BENCH_E19b.json`` — batched serving vs one-at-a-time (answer
  parity, scheduler counters, speedup); ``--only e19r`` rewrites it
  with an extra ``remote`` section comparing ``executor="remote"``
  (a two-worker loopback TCP fleet) against the local executors;
* ``BENCH_E21.json``  — the solver-portfolio race (per-mode wall
  clocks and the portfolio-vs-best-pure speedup), when
  ``--only e21`` is requested (slower; not in the default set);
* ``BENCH_E22.json``  — the bounds pre-pass collapse (exact Check
  tasks with vs without the pre-pass, identical widths), when
  ``--only e22`` is requested;
* ``BENCH_E23.json``  — the serve-daemon warm restart (cold vs
  restarted counters — the warm daemon must report zero LP solves and
  zero exact tasks — plus the coalescing window), when ``--only e23``
  is requested;
* ``BENCH_E24.json``  — end-to-end query serving over cached plans
  (cold vs plan-warm restarted counters — the warm daemon answers
  with zero solver work and byte-identical answers — plus the
  plan-coalescing window), when ``--only e24`` is requested.

Each file separates ``metrics`` (deterministic counters — meaningful to
diff across commits) from ``timings`` (wall-clock — machine-dependent,
informational).  Regenerate after perf-relevant changes::

    python tools/record_bench.py            # E12 + E19b
    python tools/record_bench.py --only e21 # the portfolio race
    python tools/record_bench.py --only e22 # the bounds collapse
    python tools/record_bench.py --only e23 # the serve warm restart
    python tools/record_bench.py --only e24 # query serving over plans
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))


def record_e12() -> dict:
    """The E12 PTAAS rows and cache stats, counters only."""
    import time

    from bench_e12_ptaas import engine_cache_stats, ptaas_rows

    t0 = time.perf_counter()
    rows = ptaas_rows(K=3.0, eps=0.5)
    ptaas_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cache = engine_cache_stats()
    cache_seconds = time.perf_counter() - t0
    solves = lambda s: s["lp_solves"] + s["set_cover_solves"]  # noqa: E731
    return {
        "benchmark": "E12",
        "title": "PTAAS guarantees and engine-cache LP reduction",
        "metrics": {
            "instances": [
                {
                    "instance": label,
                    "fhw": exact,
                    "ptaas_width": width,
                    "gap": gap,
                    "iterations": iters,
                    "iteration_bound": bound,
                }
                for label, exact, width, gap, iters, bound in rows
            ],
            "cache": {
                "cover_solves_cached": solves(cache["cached"]),
                "cover_solves_uncached": solves(cache["uncached"]),
                "hit_rate_cached": round(cache["cached"]["hit_rate"], 4),
            },
        },
        "timings": {
            "ptaas_seconds": round(ptaas_seconds, 4),
            "cache_comparison_seconds": round(cache_seconds, 4),
        },
    }


def record_e19b(jobs: int = 2) -> dict:
    """The E19b serving comparison: counters plus the headline speedup."""
    from bench_e19_batch_serving import compare

    requests, (seq_seconds, seq_engine), (batch_seconds, stats) = compare(
        jobs=jobs
    )
    return {
        "benchmark": "E19b",
        "title": "batched multi-instance serving vs one-at-a-time",
        "metrics": {
            "requests": len(requests),
            "kinds": sorted({r.kind for r in requests}),
            "blocks": stats.blocks,
            "tasks_run": stats.tasks_run,
            "speculative_checks": stats.speculative_checks,
            "tasks_cancelled": stats.tasks_cancelled,
            "failures": stats.failures,
            "batched_lp_solves": stats.lp_solves,
            "sequential_lp_solves": seq_engine["lp_solves"],
            "batched_hit_rate": round(stats.hit_rate, 4),
            "jobs": jobs,
        },
        "timings": {
            "sequential_seconds": round(seq_seconds, 4),
            "batched_seconds": round(batch_seconds, 4),
            "speedup": round(seq_seconds / batch_seconds, 2),
        },
    }


def record_e19r(jobs: int = 4, workers: int = 2) -> dict:
    """E19b plus the E19r remote-executor comparison, one payload.

    Writes the same ``BENCH_E19b.json`` as ``--only e19b`` with an
    extra ``remote`` section: fleet counters (deterministic up to
    scheduling) and the thread/process/remote wall-clocks.
    """
    from bench_e19_batch_serving import compare_remote

    payload = record_e19b()
    requests, timings, stats = compare_remote(jobs=jobs, workers=workers)
    thread_seconds, process_seconds, remote_seconds = timings
    payload["metrics"]["remote"] = {
        "requests": len(requests),
        "jobs": jobs,
        "workers": workers,
        "tasks_remote": stats.tasks_remote,
        "tasks_local_fallback": stats.tasks_local_fallback,
        "requeued_tasks": stats.requeued_tasks,
        "remote_workers": stats.remote_workers,
        "answers_identical": True,  # compare_remote asserts it
    }
    payload["timings"]["remote"] = {
        "thread_seconds": round(thread_seconds, 4),
        "process_seconds": round(process_seconds, 4),
        "remote_seconds": round(remote_seconds, 4),
        "remote_vs_process_speedup": round(
            process_seconds / remote_seconds, 2
        ),
    }
    return payload


def record_e21() -> dict:
    """The E21 portfolio race: per-mode timing and answer parity."""
    from bench_e21_portfolio import race

    report = race()
    return {
        "benchmark": "E21",
        "title": "solver portfolio racing SAT vs branch-and-bound",
        "metrics": report["metrics"],
        "timings": report["timings"],
    }


def record_e22() -> dict:
    """The E22 bounds collapse: exact tasks with vs without the pass."""
    from bench_e22_bounds_collapse import collapse

    report = collapse()
    return {
        "benchmark": "E22",
        "title": "bounds pre-pass collapsing the exact k-search",
        "metrics": report["metrics"],
        "timings": report["timings"],
    }


def record_e23() -> dict:
    """The E23 warm restart: cold vs restarted daemon counters."""
    from bench_e23_warm_restart import warm_restart

    report = warm_restart()
    return {
        "benchmark": "E23",
        "title": "serve daemon warm restart from the persistent store",
        "metrics": report["metrics"],
        "timings": report["timings"],
    }


def record_e24() -> dict:
    """The E24 query serving: cold vs plan-warm daemon counters."""
    from bench_e24_query_serving import plan_warm_restart

    report = plan_warm_restart()
    return {
        "benchmark": "E24",
        "title": "query serving over store-cached decomposition plans",
        "metrics": report["metrics"],
        "timings": report["timings"],
    }


RECORDERS = {
    "e12": ("BENCH_E12.json", record_e12),
    "e19b": ("BENCH_E19b.json", record_e19b),
    "e19r": ("BENCH_E19b.json", record_e19r),
    "e21": ("BENCH_E21.json", record_e21),
    "e22": ("BENCH_E22.json", record_e22),
    "e23": ("BENCH_E23.json", record_e23),
    "e24": ("BENCH_E24.json", record_e24),
}

#: E21–E24 run multi-phase comparisons, so they are opt-in.
DEFAULT = ("e12", "e19b")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=sorted(RECORDERS),
        action="append",
        help="record just these benchmarks (repeatable; default: e12 e19b)",
    )
    args = parser.parse_args(argv)
    for key in args.only or DEFAULT:
        path, recorder = RECORDERS[key]
        payload = recorder()
        target = ROOT / path
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {target.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
