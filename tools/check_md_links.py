#!/usr/bin/env python3
"""Markdown link check over README.md and docs/ (the CI docs job).

Verifies that every relative link target in the checked markdown files
exists on disk, and that intra-document anchors (``#section``) point at
a real heading of the target file.  External ``http(s)://`` links are
not fetched — CI must not depend on third-party uptime.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
HEADING = re.compile(r"(?m)^#{1,6}\s+(.*)$")


def checked_files() -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug)


def anchors_of(path: Path) -> set[str]:
    return {slugify(h) for h in HEADING.findall(path.read_text())}


def check_file(path: Path) -> list[str]:
    problems = []
    for raw_target in LINK.findall(path.read_text()):
        target = raw_target.split(" ")[0].strip("<>")
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _sep, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: dead anchor -> {target}"
                )
    return problems


def main() -> int:
    files = checked_files()
    problems = [p for f in files for p in check_file(f)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{'OK' if not problems else f'{len(problems)} broken link(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
