"""Benchmark workloads: parametric query shapes and skewed databases.

The CQ shapes that dominate benchmark corpora (and the HyperBench study
[23]) are stars, chains, cycles and snowflakes; this module generates
them at any size together with databases whose skew separates good plans
from bad ones.  Used by experiment E16 and the examples, and handy for
downstream users profiling their own engines.
"""

from __future__ import annotations

import random

from .query import Atom, ConjunctiveQuery
from .relations import Relation

__all__ = [
    "star_query",
    "chain_query",
    "cycle_query",
    "snowflake_query",
    "random_graph_relation",
    "hub_relation",
    "zipf_relation",
]


def star_query(n_rays: int, relation: str = "r") -> ConjunctiveQuery:
    """``q(c) :- r(c, x1), r(c, x2), ..., r(c, xn)`` — acyclic, ghw 1."""
    if n_rays < 1:
        raise ValueError("need at least one ray")
    atoms = tuple(
        Atom(relation, ("c", f"x{i}")) for i in range(1, n_rays + 1)
    )
    return ConjunctiveQuery(("c",), atoms, name=f"star{n_rays}")


def chain_query(
    length: int, relation: str = "r", boolean: bool = False
) -> ConjunctiveQuery:
    """``q(x0, xn) :- r(x0, x1), ..., r(x(n-1), xn)`` — acyclic, ghw 1."""
    if length < 1:
        raise ValueError("need at least one step")
    atoms = tuple(
        Atom(relation, (f"x{i}", f"x{i + 1}")) for i in range(length)
    )
    head = () if boolean else ("x0", f"x{length}")
    return ConjunctiveQuery(head, atoms, name=f"chain{length}")


def cycle_query(length: int, relation: str = "r") -> ConjunctiveQuery:
    """``q(x1) :- r(x1, x2), ..., r(xn, x1)`` — cyclic, ghw 2."""
    if length < 3:
        raise ValueError("cycles need length >= 3")
    atoms = tuple(
        Atom(relation, (f"x{i}", f"x{(i % length) + 1}"))
        for i in range(1, length + 1)
    )
    return ConjunctiveQuery(("x1",), atoms, name=f"cycle{length}")


def snowflake_query(
    n_arms: int, arm_length: int = 2, relation: str = "r"
) -> ConjunctiveQuery:
    """A star whose rays are chains — the classic OLAP join shape."""
    if n_arms < 1 or arm_length < 1:
        raise ValueError("need positive arms and arm length")
    atoms = []
    for arm in range(1, n_arms + 1):
        prev = "c"
        for step in range(1, arm_length + 1):
            cur = f"a{arm}_{step}"
            atoms.append(Atom(relation, (prev, cur)))
            prev = cur
    return ConjunctiveQuery(
        ("c",), tuple(atoms), name=f"snowflake{n_arms}x{arm_length}"
    )


def random_graph_relation(
    n: int, p: float, seed: int = 0, name: str = "r"
) -> Relation:
    """A uniform random directed graph as a binary relation."""
    rng = random.Random(seed)
    rows = {
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and rng.random() < p
    }
    return Relation.from_rows(name, ["src", "dst"], rows)


def hub_relation(
    n_hubs: int, n_leaves: int, seed: int = 0, name: str = "r"
) -> Relation:
    """Hub-and-spoke edges: high fan-out makes path counts explode.

    Every hub points at its leaves and every leaf at the next hub, so a
    length-k path count grows like ``n_leaves^(k/2)`` — the shape where
    semijoin reduction pays off most.
    """
    rng = random.Random(seed)
    rows = set()
    for hub in range(n_hubs):
        for leaf in range(n_leaves):
            rows.add((f"h{hub}", f"l{hub}_{leaf}"))
            rows.add((f"l{hub}_{leaf}", f"h{(hub + 1) % n_hubs}"))
    for _ in range(max(1, n_hubs // 2)):
        a, b = rng.sample(range(n_hubs), 2)
        rows.add((f"h{a}", f"h{b}"))
    return Relation.from_rows(name, ["src", "dst"], rows)


def zipf_relation(
    n_rows: int, n_values: int, skew: float = 1.2, seed: int = 0,
    name: str = "r",
) -> Relation:
    """A binary relation with Zipf-distributed join keys.

    Value ``v`` is drawn with probability proportional to
    ``1 / (v+1)^skew`` — hot keys create the heavy join partners real
    workloads exhibit.
    """
    if n_values < 1:
        raise ValueError("need at least one value")
    rng = random.Random(seed)
    weights = [1.0 / (v + 1) ** skew for v in range(n_values)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def draw() -> int:
        u = rng.random()
        for v, threshold in enumerate(cumulative):
            if u <= threshold:
                return v
        return n_values - 1

    rows = {(draw(), draw()) for _ in range(n_rows)}
    return Relation.from_rows(name, ["src", "dst"], rows)
