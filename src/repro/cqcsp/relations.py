"""A tiny in-memory relational algebra.

Just enough engine to demonstrate *why* the paper's widths matter: joins,
projections and semijoins over named-attribute relations, used by the
Yannakakis algorithm and the decomposition-guided CQ evaluator.

Relations are immutable: attribute tuple + frozenset of value tuples.
Joins are hash joins on the shared attributes; the engine tracks the
number of intermediate tuples materialized so experiments can show the
blow-up that decompositions avoid.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass


__all__ = [
    "Relation",
    "join_all",
    "relation_to_payload",
    "relation_from_payload",
]

#: JSON-representable scalar types allowed in wire/file relation rows.
_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class Relation:
    """A named relation with a fixed attribute order."""

    name: str
    attributes: tuple[str, ...]
    tuples: frozenset

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in {self.attributes}")
        for row in self.tuples:
            if len(row) != len(self.attributes):
                raise ValueError(
                    f"row {row} does not match attributes {self.attributes}"
                )

    @classmethod
    def from_rows(
        cls, name: str, attributes: Sequence[str], rows: Iterable[Sequence]
    ) -> "Relation":
        """Build a relation from any iterable of row sequences."""
        return cls(
            name, tuple(attributes), frozenset(tuple(r) for r in rows)
        )

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename attributes (identity for unmentioned ones)."""
        attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(name or self.name, attrs, self.tuples)

    def project(self, attributes: Sequence[str]) -> "Relation":
        """π: keep the listed attributes (deduplicating rows)."""
        missing = [a for a in attributes if a not in self.attributes]
        if missing:
            raise KeyError(f"unknown attributes {missing}")
        idx = [self.attributes.index(a) for a in attributes]
        rows = frozenset(tuple(row[i] for i in idx) for row in self.tuples)
        return Relation(self.name, tuple(attributes), rows)

    def select_equal(self, attribute: str, value) -> "Relation":
        """σ: rows whose ``attribute`` equals ``value``."""
        i = self.attributes.index(attribute)
        return Relation(
            self.name,
            self.attributes,
            frozenset(row for row in self.tuples if row[i] == value),
        )

    def _key_indices(self, other: "Relation") -> tuple[list[int], list[int]]:
        shared = [a for a in self.attributes if a in other.attributes]
        return (
            [self.attributes.index(a) for a in shared],
            [other.attributes.index(a) for a in shared],
        )

    def join(self, other: "Relation") -> "Relation":
        """⋈: natural (hash) join on the shared attributes."""
        my_idx, their_idx = self._key_indices(other)
        extra = [
            i
            for i, a in enumerate(other.attributes)
            if a not in self.attributes
        ]
        buckets: dict[tuple, list] = {}
        for row in other.tuples:
            key = tuple(row[i] for i in their_idx)
            buckets.setdefault(key, []).append(row)
        out = set()
        for row in self.tuples:
            key = tuple(row[i] for i in my_idx)
            for match in buckets.get(key, ()):
                out.add(row + tuple(match[i] for i in extra))
        attrs = self.attributes + tuple(other.attributes[i] for i in extra)
        return Relation(f"({self.name}⋈{other.name})", attrs, frozenset(out))

    def semijoin(self, other: "Relation") -> "Relation":
        """⋉: rows of self with a join partner in other."""
        my_idx, their_idx = self._key_indices(other)
        keys = {tuple(row[i] for i in their_idx) for row in other.tuples}
        rows = frozenset(
            row
            for row in self.tuples
            if tuple(row[i] for i in my_idx) in keys
        )
        return Relation(self.name, self.attributes, rows)

    def is_empty(self) -> bool:
        """True iff the relation holds no tuples."""
        return not self.tuples


def relation_to_payload(relation: Relation) -> dict:
    """Encode a relation as the plain-JSON shape used on disk and wire.

    ``{"attributes": [...], "rows": [[...], ...]}`` with rows sorted
    deterministically (by their repr — rows may mix value types), so
    two equal relations always encode byte-identically.
    """
    return {
        "attributes": list(relation.attributes),
        "rows": sorted(
            (list(row) for row in relation.tuples), key=repr
        ),
    }


def relation_from_payload(name: str, obj) -> Relation:
    """Decode ``{"attributes", "rows"}`` into a :class:`Relation`.

    Raises ``ValueError`` on any malformed shape: missing keys, rows of
    the wrong arity, or non-scalar values (only JSON scalars are
    allowed — nested lists would not survive the hash-join key paths).
    """
    if not isinstance(obj, dict):
        raise ValueError(f"relation {name!r} must be a JSON object")
    unknown = set(obj) - {"attributes", "rows"}
    if unknown:
        raise ValueError(
            f"relation {name!r} has unknown keys {sorted(unknown)}; "
            "valid keys: attributes, rows"
        )
    attributes = obj.get("attributes")
    if not isinstance(attributes, (list, tuple)) or not all(
        isinstance(a, str) for a in attributes
    ):
        raise ValueError(
            f"relation {name!r} needs an 'attributes' list of strings"
        )
    rows = obj.get("rows", [])
    if not isinstance(rows, (list, tuple)):
        raise ValueError(f"relation {name!r} needs a 'rows' list")
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)):
            raise ValueError(
                f"relation {name!r} row {i} must be a list"
            )
        if len(row) != len(attributes):
            raise ValueError(
                f"relation {name!r} row {i} has {len(row)} values but "
                f"{len(attributes)} attributes"
            )
        for value in row:
            if not isinstance(value, _SCALARS):
                raise ValueError(
                    f"relation {name!r} row {i} holds non-scalar "
                    f"value {value!r}"
                )
    try:
        return Relation.from_rows(name, attributes, rows)
    except ValueError as exc:
        raise ValueError(f"relation {name!r}: {exc}") from exc


def join_all(relations: Sequence[Relation]) -> tuple[Relation, int]:
    """Left-deep natural join of all relations.

    Returns the result and the *total intermediate tuple count* — the
    quantity that explodes for cyclic queries evaluated naively and stays
    polynomial when joining along a decomposition.
    """
    if not relations:
        raise ValueError("nothing to join")
    acc = relations[0]
    intermediate = len(acc)
    for rel in relations[1:]:
        acc = acc.join(rel)
        intermediate += len(acc)
    return acc, intermediate
