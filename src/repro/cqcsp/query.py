"""Conjunctive queries and their hypergraphs (Section 1).

A CQ ``ans(x, y) :- r(x, z), s(z, y)`` consists of atoms over variables;
its hypergraph has the variables as vertices and one edge per atom —
exactly the translation the paper describes.  CSPs share the same shape
(Section 1: "Formally, CQs and CSPs are the same problem").
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

from ..hypergraph import Hypergraph

__all__ = ["Atom", "ConjunctiveQuery", "parse_cq"]


@dataclass(frozen=True)
class Atom:
    """One query atom: a relation name and a variable tuple.

    Repeated variables within an atom are allowed (they express equality
    selections); constants are not modelled — inline them by selecting on
    the relation beforehand.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError(f"atom {self.relation} has no variables")

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: head variables + body atoms.

    An empty head makes the query Boolean.  Head variables must occur in
    the body (safety).
    """

    head: tuple[str, ...]
    atoms: tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("query must have at least one atom")
        body_vars = self.variables
        unsafe = [v for v in self.head if v not in body_vars]
        if unsafe:
            raise ValueError(f"unsafe head variables: {unsafe}")

    @property
    def variables(self) -> frozenset:
        out: set[str] = set()
        for atom in self.atoms:
            out.update(atom.variables)
        return frozenset(out)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph: variables as vertices, atom scopes as edges.

        Atom occurrences are disambiguated by position (``#i`` suffix), so
        self-joins yield distinct edges as the paper requires ("for every
        atom in Q, E(H) contains a hyperedge").
        """
        edges = {
            f"{atom.relation}#{i}": frozenset(atom.variables)
            for i, atom in enumerate(self.atoms)
        }
        return Hypergraph(edges, name=self.name)

    def atom_for_edge(self, edge_name: str) -> Atom:
        """The atom corresponding to a query-hypergraph edge name."""
        index = int(edge_name.rsplit("#", 1)[1])
        return self.atoms[index]

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(self.head)})"
        return f"{head} :- {', '.join(map(str, self.atoms))}."


_ATOM_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)")


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse ``name(x, y) :- r(x, z), s(z, y).`` into a query.

    The head is everything before ``:-``; a missing head (text starting
    with ``:-``) gives a Boolean query.
    """
    text = text.strip().rstrip(".")
    if ":-" not in text:
        raise ValueError("expected ':-' separating head and body")
    head_text, body_text = text.split(":-", 1)
    head_text = head_text.strip()
    name, head_vars = "q", ()
    if head_text:
        match = _ATOM_RE.fullmatch(head_text)
        if not match:
            raise ValueError(f"cannot parse head {head_text!r}")
        name = match.group(1)
        head_vars = tuple(
            v.strip() for v in match.group(2).split(",") if v.strip()
        )
    atoms = []
    for match in _ATOM_RE.finditer(body_text):
        variables = tuple(
            v.strip() for v in match.group(2).split(",") if v.strip()
        )
        atoms.append(Atom(match.group(1), variables))
    if not atoms:
        raise ValueError("query body has no atoms")
    return ConjunctiveQuery(tuple(head_vars), tuple(atoms), name=name)
