"""Conjunctive queries and their hypergraphs (Section 1).

A CQ ``ans(x, y) :- r(x, z), s(z, y)`` consists of atoms over variables;
its hypergraph has the variables as vertices and one edge per atom —
exactly the translation the paper describes.  CSPs share the same shape
(Section 1: "Formally, CQs and CSPs are the same problem").

Atom positions may also hold :class:`Const` terms — ``r(x, 3)`` or
``r(x, 'iron')`` — which select on the relation before it enters the
join; constants never become hypergraph vertices, so they only ever
shrink the query hypergraph.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

from ..hypergraph import Hypergraph

__all__ = ["Atom", "Const", "ConjunctiveQuery", "parse_cq"]


@dataclass(frozen=True)
class Const:
    """A constant term in an atom position.

    ``value`` is a plain hashable scalar (int or str in the text
    syntax).  In query text, integers are written bare (``r(x, 3)``)
    and strings single- or double-quoted (``r(x, 'iron')``).  A string
    constant may contain commas and whitespace but not its own
    delimiter quote — there is no escape syntax, so the formatter
    picks whichever quote character the value does not contain (a
    value holding *both* kinds can only be built programmatically and
    has no text form).
    """

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            quote = '"' if "'" in self.value else "'"
            return quote + self.value + quote
        return str(self.value)


@dataclass(frozen=True)
class Atom:
    """One query atom: a relation name and a term tuple.

    Terms are variable names (strings) or :class:`Const` values.
    Repeated variables within an atom are allowed (they express equality
    selections); constants express selections on the relation.  At least
    one term must be a variable — an all-constant atom is a membership
    test the relational layer cannot host on any bag.
    """

    relation: str
    variables: tuple

    def __post_init__(self) -> None:
        for term in self.variables:
            if not isinstance(term, (str, Const)):
                raise ValueError(
                    f"atom {self.relation} has a term {term!r} that is "
                    "neither a variable name nor a Const"
                )
        if not self.variable_names:
            raise ValueError(f"atom {self.relation} has no variables")

    @property
    def variable_names(self) -> tuple:
        """The distinct variable names, in first-occurrence order."""
        seen = []
        for term in self.variables:
            if isinstance(term, str) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.variables))})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: head variables + body atoms.

    An empty head makes the query Boolean.  Head terms must be distinct
    variables that occur in the body (safety); constants belong in the
    body, not the head.
    """

    head: tuple
    atoms: tuple
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("query must have at least one atom")
        non_vars = [v for v in self.head if not isinstance(v, str)]
        if non_vars:
            raise ValueError(
                f"head terms must be variables, not {non_vars}"
            )
        if len(set(self.head)) != len(self.head):
            duplicated = sorted(
                {v for v in self.head if self.head.count(v) > 1}
            )
            raise ValueError(f"duplicate head variables: {duplicated}")
        body_vars = self.variables
        unsafe = [v for v in self.head if v not in body_vars]
        if unsafe:
            raise ValueError(f"unsafe head variables: {unsafe}")

    @property
    def variables(self) -> frozenset:
        """All variable names occurring in the body (constants excluded)."""
        out: set[str] = set()
        for atom in self.atoms:
            out.update(atom.variable_names)
        return frozenset(out)

    @property
    def is_boolean(self) -> bool:
        """True iff the head is empty (a yes/no query)."""
        return not self.head

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph: variables as vertices, atom scopes as edges.

        Atom occurrences are disambiguated by position (``#i`` suffix), so
        self-joins yield distinct edges as the paper requires ("for every
        atom in Q, E(H) contains a hyperedge").  Constants contribute no
        vertices — only the variables of an atom form its edge.
        """
        edges = {
            f"{atom.relation}#{i}": frozenset(atom.variable_names)
            for i, atom in enumerate(self.atoms)
        }
        return Hypergraph(edges, name=self.name)

    def atom_for_edge(self, edge_name: str) -> Atom:
        """The atom corresponding to a query-hypergraph edge name."""
        index = int(edge_name.rsplit("#", 1)[1])
        return self.atoms[index]

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(self.head)})"
        return f"{head} :- {', '.join(map(str, self.atoms))}."


_ATOM_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)")
_VARIABLE_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_INT_RE = re.compile(r"-?[0-9]+")
_GAP_RE = re.compile(r"\s*,\s*")


def _split_terms(text: str, context: str) -> list:
    """Split an argument list on commas *outside* quotes.

    A bare ``str.split(",")`` would cut the string constant ``'a,b'``
    in half and then fail with a baffling "cannot parse term" message;
    here a comma inside a quoted string belongs to the string.  There
    is no escape syntax — an unbalanced quote is a loud error, not a
    truncated constant.
    """
    parts: list[str] = []
    buffer: list[str] = []
    quote = None
    for ch in text:
        if quote is not None:
            buffer.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            buffer.append(ch)
        elif ch == ",":
            parts.append("".join(buffer))
            buffer = []
        else:
            buffer.append(ch)
    if quote is not None:
        raise ValueError(
            f"unbalanced {quote} quote in {context}"
        )
    parts.append("".join(buffer))
    return parts


def _parse_term(raw: str, context: str):
    """One atom position: a variable name, an integer, or a quoted string."""
    term = raw.strip()
    if not term:
        raise ValueError(f"empty term in {context} (stray comma?)")
    if _VARIABLE_RE.fullmatch(term):
        return term
    if _INT_RE.fullmatch(term):
        return Const(int(term))
    if term[0] in "'\"":
        if (
            len(term) >= 2
            and term[-1] == term[0]
            and term[0] not in term[1:-1]
        ):
            return Const(term[1:-1])
        raise ValueError(
            f"cannot parse term {term!r} in {context}: string constants "
            "are quote-delimited and cannot contain their own quote "
            "character (no escape syntax)"
        )
    raise ValueError(
        f"cannot parse term {term!r} in {context}: expected a variable "
        "name, an integer, or a quoted string"
    )


def _parse_atoms(body_text: str) -> tuple:
    """All atoms of a query body, refusing any unparsed leftovers.

    ``finditer`` alone would silently skip malformed fragments (a bug
    this parser shipped with: ``q(x) :- r(x), s(y`` used to drop the
    dangling ``s(y`` and answer the wrong query).  Every character
    outside a matched atom must therefore be accounted for exactly:
    whitespace before the first atom and after the last, and a single
    comma (with optional whitespace) between consecutive atoms —
    ``r(x),, s(x)``, a leading comma and a trailing comma are all
    errors, never noise.
    """
    atoms = []
    cursor = 0
    for match in _ATOM_RE.finditer(body_text):
        gap = body_text[cursor:match.start()]
        if not atoms:
            if gap.strip():
                raise ValueError(
                    f"cannot parse {gap.strip()!r} in the query body"
                )
        elif _GAP_RE.fullmatch(gap) is None:
            raise ValueError(
                "expected a single comma between atoms, got "
                f"{gap.strip() or gap!r}"
            )
        context = f"atom {match.group(1)}"
        terms = tuple(
            _parse_term(raw, context)
            for raw in _split_terms(match.group(2), context)
        ) if match.group(2).strip() else ()
        atoms.append(Atom(match.group(1), terms))
        cursor = match.end()
    tail = body_text[cursor:]
    if tail.strip():
        raise ValueError(
            f"cannot parse {tail.strip()!r} in the query body"
        )
    return tuple(atoms)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse ``name(x, y) :- r(x, z), s(z, y).`` into a query.

    The head is everything before ``:-``; a missing head (text starting
    with ``:-``) gives a Boolean query.  Body positions accept variables,
    bare integers and quoted strings (constants; commas inside quotes
    belong to the string, but a string cannot contain its own quote
    character — there is no escape syntax).  Raises ``ValueError`` with
    a pointed message on any malformed input — unparseable fragments,
    doubled/leading/trailing commas and unbalanced quotes are errors,
    never silently dropped.
    """
    text = text.strip()
    if text.endswith("."):
        text = text[:-1].rstrip()
    if ":-" not in text:
        raise ValueError("expected ':-' separating head and body")
    head_text, body_text = text.split(":-", 1)
    head_text = head_text.strip()
    name, head_vars = "q", ()
    if head_text:
        match = _ATOM_RE.fullmatch(head_text)
        if not match:
            raise ValueError(f"cannot parse head {head_text!r}")
        name = match.group(1)
        head_vars = tuple(
            _parse_term(raw, "the head")
            for raw in _split_terms(match.group(2), "the head")
        ) if match.group(2).strip() else ()
    atoms = _parse_atoms(body_text)
    if not atoms:
        raise ValueError("query body has no atoms")
    return ConjunctiveQuery(tuple(head_vars), atoms, name=name)
