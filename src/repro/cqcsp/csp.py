"""Constraint satisfaction problems via hypergraph decompositions.

A CSP is a CQ evaluated over the constraint relations (Section 1); a
class of CSPs with bounded ghw is solvable in polynomial time.  The
solver here answers satisfiability through the Boolean decomposition-
guided evaluator and extracts a witness assignment by self-reducibility
(fix one variable at a time and re-check); a plain backtracking solver
serves as the baseline the experiments compare against.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..decomposition import Decomposition
from ..hypergraph import Hypergraph
from .evaluate import evaluate_with_decomposition
from .query import Atom, ConjunctiveQuery
from .relations import Relation

__all__ = ["Constraint", "CSP", "backtracking_solve"]


@dataclass(frozen=True)
class Constraint:
    """A constraint: a variable scope and the set of allowed tuples."""

    name: str
    scope: tuple[str, ...]
    allowed: frozenset

    def __post_init__(self) -> None:
        for row in self.allowed:
            if len(row) != len(self.scope):
                raise ValueError(
                    f"tuple {row} does not match scope {self.scope}"
                )

    def permits(self, assignment: Mapping[str, object]) -> bool:
        """True iff the (total, for this scope) assignment is allowed."""
        return tuple(assignment[v] for v in self.scope) in self.allowed


@dataclass
class CSP:
    """A CSP instance: variables, per-variable domains, and constraints."""

    domains: dict[str, tuple]
    constraints: list[Constraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        for constraint in self.constraints:
            for v in constraint.scope:
                if v not in self.domains:
                    raise ValueError(
                        f"constraint {constraint.name} mentions unknown "
                        f"variable {v!r}"
                    )

    @property
    def variables(self) -> tuple[str, ...]:
        """The CSP's variables, in domain-declaration order."""
        return tuple(self.domains)

    def hypergraph(self) -> Hypergraph:
        """Constraint hypergraph (isolated variables get unary edges)."""
        edges: dict[str, frozenset] = {
            f"{c.name}#{i}": frozenset(c.scope)
            for i, c in enumerate(self.constraints)
        }
        covered = frozenset().union(*edges.values()) if edges else frozenset()
        for v in self.domains:
            if v not in covered:
                edges[f"dom:{v}#u"] = frozenset([v])
        return Hypergraph(edges, name="csp")

    def _as_query(self) -> tuple[ConjunctiveQuery, dict[str, Relation]]:
        """The Boolean CQ + database encoding of this CSP.

        *Every* variable gets a unary domain atom — constraint relations
        may mention values outside the declared domain, and CSP semantics
        require assignments to come from the domains.
        """
        atoms: list[Atom] = []
        database: dict[str, Relation] = {}
        for i, c in enumerate(self.constraints):
            rel_name = f"{c.name}_{i}"
            atoms.append(Atom(rel_name, c.scope))
            database[rel_name] = Relation(
                rel_name,
                tuple(f"col{j}" for j in range(len(c.scope))),
                c.allowed,
            )
        for v in self.domains:
            rel_name = f"dom_{v}"
            atoms.append(Atom(rel_name, (v,)))
            database[rel_name] = Relation.from_rows(
                rel_name, ("col0",), [(val,) for val in self.domains[v]]
            )
        query = ConjunctiveQuery((), tuple(atoms), name="csp")
        return query, database

    # ------------------------------------------------------------------
    def is_satisfiable(self, decomp: Decomposition | None = None) -> bool:
        """Decide satisfiability along a decomposition of the hypergraph.

        ``decomp`` defaults to a fresh GHD search over the constraint
        hypergraph; pass one explicitly to amortize across calls.
        """
        query, database = self._as_query()
        if decomp is None:
            decomp = self._default_decomposition(query)
        result = evaluate_with_decomposition(query, database, decomp)
        return not result.answers.is_empty()

    def _default_decomposition(self, query: ConjunctiveQuery) -> Decomposition:
        from ..algorithms import generalized_hypertree_width

        hypergraph = query.hypergraph()
        _width, decomp = generalized_hypertree_width(hypergraph)
        return decomp

    def solve(self) -> dict[str, object] | None:
        """A satisfying assignment via self-reduction, or None.

        Fixes variables one at a time (restricting constraint relations)
        and re-checks satisfiability — ``O(n · max-domain)`` Boolean
        evaluations, each polynomial for bounded-width instances.
        """
        query, database = self._as_query()
        decomp = self._default_decomposition(query)
        fixed: dict[str, object] = {}
        current = self
        for v in self.variables:
            chosen = None
            for value in self.domains[v]:
                candidate = current._restrict(v, value)
                if candidate.is_satisfiable(decomp):
                    chosen = value
                    current = candidate
                    break
            if chosen is None:
                return None
            fixed[v] = chosen
        return fixed

    def _restrict(self, variable: str, value) -> "CSP":
        """This CSP with ``variable`` pinned to ``value``."""
        domains = dict(self.domains)
        domains[variable] = (value,)
        constraints = []
        for c in self.constraints:
            if variable in c.scope:
                idx = [i for i, v in enumerate(c.scope) if v == variable]
                allowed = frozenset(
                    row for row in c.allowed
                    if all(row[i] == value for i in idx)
                )
                constraints.append(Constraint(c.name, c.scope, allowed))
            else:
                constraints.append(c)
        return CSP(domains, constraints)


def backtracking_solve(csp: CSP) -> dict[str, object] | None:
    """Plain chronological backtracking (the decomposition-free baseline)."""
    variables = list(csp.variables)
    by_var: dict[str, list[Constraint]] = {v: [] for v in variables}
    for c in csp.constraints:
        for v in c.scope:
            by_var[v].append(c)

    assignment: dict[str, object] = {}

    def consistent(v: str) -> bool:
        for c in by_var[v]:
            if all(u in assignment for u in c.scope):
                if not c.permits(assignment):
                    return False
        return True

    def recurse(i: int) -> bool:
        if i == len(variables):
            return True
        v = variables[i]
        for value in csp.domains[v]:
            assignment[v] = value
            if consistent(v) and recurse(i + 1):
                return True
            del assignment[v]
        return False

    return dict(assignment) if recurse(0) else None
