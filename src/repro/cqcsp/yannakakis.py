"""Yannakakis' algorithm over a decomposition tree [50].

Given relations attached to the nodes of a tree decomposition (each
node's relation has the node's bag variables as attributes), evaluation
proceeds in three passes:

1. bottom-up semijoin reduction (removes tuples with no partner below);
2. top-down semijoin reduction (removes tuples with no partner above);
3. bottom-up joins, projecting each intermediate result onto the head
   variables plus the connector to the parent bag.

For acyclic queries (and for CQs evaluated along a width-k GHD, where
each node relation is the join of <= k atoms) every intermediate result
after the reduction passes is polynomially bounded — the tractability
payoff the paper's Check(·, k) problems exist to unlock.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..decomposition import Decomposition
from .relations import Relation

__all__ = ["yannakakis", "semijoin_reduce"]


def semijoin_reduce(
    decomp: Decomposition, node_relations: Mapping[str, Relation]
) -> dict[str, Relation]:
    """The two semijoin passes; returns fully reduced node relations.

    If any relation becomes empty the query has no answers; callers can
    short-circuit on that.
    """
    reduced = dict(node_relations)
    order = decomp.preorder()
    # Bottom-up: parent ⋉ child.
    for nid in reversed(order):
        par = decomp.parent(nid)
        if par is not None:
            reduced[par] = reduced[par].semijoin(reduced[nid])
    # Top-down: child ⋉ parent.
    for nid in order:
        par = decomp.parent(nid)
        if par is not None:
            reduced[nid] = reduced[nid].semijoin(reduced[par])
    return reduced


def yannakakis(
    decomp: Decomposition,
    node_relations: Mapping[str, Relation],
    head: Sequence[str],
) -> tuple[Relation, int]:
    """Evaluate the tree of node relations, returning ``(answers, cost)``.

    ``cost`` counts intermediate tuples materialized during the join
    pass (the semijoin passes never grow relations).  ``head`` lists the
    output attributes; an empty head yields a Boolean result: a 0-ary
    relation containing the empty tuple iff the query is satisfied.
    """
    for nid in decomp.node_ids:
        rel = node_relations[nid]
        extra = set(rel.attributes) - decomp.bag(nid)
        if extra:
            raise ValueError(
                f"node {nid}: relation attributes {sorted(extra)} "
                "are outside the bag"
            )
    reduced = semijoin_reduce(decomp, node_relations)
    if any(rel.is_empty() for rel in reduced.values()):
        return Relation.from_rows("answers", tuple(head), []), 0

    head_set = set(head)
    cost = 0

    def ascend(nid: str) -> Relation:
        nonlocal cost
        rel = reduced[nid]
        for child in decomp.children(nid):
            rel = rel.join(ascend(child))
            cost += len(rel)
        par = decomp.parent(nid)
        connector = (
            decomp.bag(nid) & decomp.bag(par) if par is not None else set()
        )
        keep = [
            a for a in rel.attributes if a in head_set or a in connector
        ]
        return rel.project(keep)

    result = ascend(decomp.root)
    ordered = [a for a in head if a in result.attributes]
    missing = [a for a in head if a not in result.attributes]
    if missing:
        raise ValueError(f"head variables {missing} not produced by the tree")
    return result.project(ordered).rename({}, name="answers"), cost
