"""Decomposition-guided CQ evaluation vs naive join evaluation.

This is the paper's motivating application spelled out in code: a CQ of
ghw k evaluates in time polynomial in ``|D|^k + output`` by (1) finding a
width-k GHD of the query hypergraph, (2) joining the <= k atoms of each
node's λ into a node relation, and (3) running Yannakakis over the tree.
The naive baseline joins atoms left-deep and can materialize intermediate
results exponentially larger than both input and output.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..algorithms import generalized_hypertree_decomposition
from ..decomposition import Decomposition
from .query import Atom, Const, ConjunctiveQuery
from .relations import Relation, join_all
from .yannakakis import yannakakis

__all__ = [
    "atom_relation",
    "node_relations_from_ghd",
    "EvaluationResult",
    "evaluate_with_decomposition",
    "evaluate",
    "evaluate_naive",
]


def atom_relation(database: Mapping[str, Relation], atom: Atom) -> Relation:
    """The relation for one atom, with attributes renamed to variables.

    Handles repeated variables (``r(x, x)``) by filtering rows whose
    corresponding positions agree, then deduplicating columns, and
    constants (``r(x, 3)``) by selecting rows whose position carries the
    constant's value before dropping the column.
    """
    base = database.get(atom.relation)
    if base is None:
        raise ValueError(
            f"atom {atom} references unknown relation {atom.relation!r}"
        )
    if len(base.attributes) != len(atom.variables):
        raise ValueError(
            f"atom {atom} has arity {len(atom.variables)}, relation "
            f"{atom.relation} has arity {len(base.attributes)}"
        )
    first_position: dict[str, int] = {}
    keep_positions: list[int] = []
    constants: list[tuple[int, object]] = []
    for i, term in enumerate(atom.variables):
        if isinstance(term, Const):
            constants.append((i, term.value))
        elif term not in first_position:
            first_position[term] = i
            keep_positions.append(i)
    variable_positions = [
        (i, first_position[term])
        for i, term in enumerate(atom.variables)
        if not isinstance(term, Const)
    ]
    rows = []
    for row in base.tuples:
        if any(row[i] != value for i, value in constants):
            continue
        if all(row[i] == row[first] for i, first in variable_positions):
            rows.append(tuple(row[i] for i in keep_positions))
    attrs = tuple(atom.variables[i] for i in keep_positions)
    return Relation.from_rows(str(atom), attrs, rows)


def node_relations_from_ghd(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    decomp: Decomposition,
) -> tuple[dict[str, Relation], int]:
    """One relation per decomposition node: join of its λ-atoms, projected
    to the bag.  Returns ``(relations, tuples materialized)``.

    Requires integral covers (a GHD); each node then joins at most
    ``width`` atoms, so the per-node cost is ``O(|D|^width)``.
    """
    if not decomp.is_integral():
        raise ValueError("CQ evaluation needs an integral (GHD) cover")
    out: dict[str, Relation] = {}
    cost = 0
    for nid in decomp.node_ids:
        bag = decomp.bag(nid)
        parts = []
        for edge_name in sorted(decomp.cover(nid).support):
            atom = query.atom_for_edge(edge_name)
            parts.append(atom_relation(database, atom))
        if parts:
            joined, intermediate = join_all(parts)
        else:
            # An empty λ forces an empty bag; the node's relation is the
            # 0-ary identity (one empty tuple), neutral under joins.
            joined, intermediate = Relation.from_rows(nid, (), [()]), 0
        cost += intermediate
        uncovered = bag - set(joined.attributes)
        if uncovered:
            # Condition (3) of a GHD guarantees bag ⊆ B(λ); tripping
            # this means the witness is invalid and silent projection
            # would produce wrong answers rather than a loud failure.
            raise ValueError(
                f"node {nid}: bag variables {sorted(uncovered)} are not "
                "covered by the node's λ-atoms (invalid GHD)"
            )
        keep = [a for a in joined.attributes if a in bag]
        out[nid] = joined.project(keep)
    # Every atom must be *enforced*, not just covered: semijoin each atom
    # into a node whose bag contains its variables (condition (1)
    # guarantees one exists).  Atoms already in some λ are unaffected.
    for atom in query.atoms:
        scope = frozenset(atom.variable_names)
        host = next(
            (nid for nid in decomp.node_ids if scope <= decomp.bag(nid)),
            None,
        )
        if host is None:
            raise ValueError(f"no bag covers atom {atom} (invalid GHD)")
        out[host] = out[host].semijoin(atom_relation(database, atom))
    return out, cost


@dataclass(frozen=True)
class EvaluationResult:
    """Answers plus the intermediate-tuple cost of producing them."""

    answers: Relation
    intermediate_tuples: int


def evaluate_with_decomposition(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    decomp: Decomposition,
) -> EvaluationResult:
    """Evaluate a CQ along a given GHD of its hypergraph."""
    node_rels, build_cost = node_relations_from_ghd(query, database, decomp)
    answers, join_cost = yannakakis(decomp, node_rels, query.head)
    return EvaluationResult(answers, build_cost + join_cost)


def evaluate(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    k: int | None = None,
) -> EvaluationResult:
    """Find a GHD of the query (width <= k, default: smallest that the
    fixpoint method certifies) and evaluate along it."""
    hypergraph = query.hypergraph()
    if k is None:
        k = 1
        decomp = None
        while decomp is None and k <= hypergraph.num_edges:
            decomp = generalized_hypertree_decomposition(hypergraph, k)
            if decomp is None:
                k += 1
    else:
        decomp = generalized_hypertree_decomposition(hypergraph, k)
    if decomp is None:
        raise ValueError(f"query has no GHD of width <= {k}")
    return evaluate_with_decomposition(query, database, decomp)


def evaluate_naive(
    query: ConjunctiveQuery, database: Mapping[str, Relation]
) -> EvaluationResult:
    """Left-deep join of all atoms, then project the head (the baseline)."""
    parts = [atom_relation(database, atom) for atom in query.atoms]
    joined, cost = join_all(parts)
    return EvaluationResult(
        joined.project(list(query.head)).rename({}, name="answers"), cost
    )
