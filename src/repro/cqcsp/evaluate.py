"""Decomposition-guided CQ evaluation vs naive join evaluation.

This is the paper's motivating application spelled out in code: a CQ of
ghw k evaluates in time polynomial in ``|D|^k + output`` by (1) finding a
width-k GHD of the query hypergraph, (2) joining the <= k atoms of each
node's λ into a node relation, and (3) running Yannakakis over the tree.
The naive baseline joins atoms left-deep and can materialize intermediate
results exponentially larger than both input and output.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..algorithms import generalized_hypertree_decomposition
from ..decomposition import Decomposition
from .query import Atom, ConjunctiveQuery
from .relations import Relation, join_all
from .yannakakis import yannakakis

__all__ = [
    "atom_relation",
    "node_relations_from_ghd",
    "EvaluationResult",
    "evaluate_with_decomposition",
    "evaluate",
    "evaluate_naive",
]


def atom_relation(database: Mapping[str, Relation], atom: Atom) -> Relation:
    """The relation for one atom, with attributes renamed to variables.

    Handles repeated variables (``r(x, x)``) by filtering rows whose
    corresponding positions agree, then deduplicating columns.
    """
    base = database[atom.relation]
    if len(base.attributes) != len(atom.variables):
        raise ValueError(
            f"atom {atom} has arity {len(atom.variables)}, relation "
            f"{atom.relation} has arity {len(base.attributes)}"
        )
    first_position: dict[str, int] = {}
    keep_positions: list[int] = []
    for i, v in enumerate(atom.variables):
        if v not in first_position:
            first_position[v] = i
            keep_positions.append(i)
    rows = []
    for row in base.tuples:
        if all(
            row[i] == row[first_position[v]]
            for i, v in enumerate(atom.variables)
        ):
            rows.append(tuple(row[i] for i in keep_positions))
    attrs = tuple(atom.variables[i] for i in keep_positions)
    return Relation.from_rows(str(atom), attrs, rows)


def node_relations_from_ghd(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    decomp: Decomposition,
) -> tuple[dict[str, Relation], int]:
    """One relation per decomposition node: join of its λ-atoms, projected
    to the bag.  Returns ``(relations, tuples materialized)``.

    Requires integral covers (a GHD); each node then joins at most
    ``width`` atoms, so the per-node cost is ``O(|D|^width)``.
    """
    if not decomp.is_integral():
        raise ValueError("CQ evaluation needs an integral (GHD) cover")
    out: dict[str, Relation] = {}
    cost = 0
    for nid in decomp.node_ids:
        bag = decomp.bag(nid)
        parts = []
        for edge_name in sorted(decomp.cover(nid).support):
            atom = query.atom_for_edge(edge_name)
            parts.append(atom_relation(database, atom))
        joined, intermediate = join_all(parts)
        cost += intermediate
        keep = [a for a in joined.attributes if a in bag]
        out[nid] = joined.project(keep)
    # Every atom must be *enforced*, not just covered: semijoin each atom
    # into a node whose bag contains its variables (condition (1)
    # guarantees one exists).  Atoms already in some λ are unaffected.
    for atom in query.atoms:
        scope = frozenset(atom.variables)
        host = next(
            (nid for nid in decomp.node_ids if scope <= decomp.bag(nid)),
            None,
        )
        if host is None:
            raise ValueError(f"no bag covers atom {atom} (invalid GHD)")
        out[host] = out[host].semijoin(atom_relation(database, atom))
    return out, cost


@dataclass(frozen=True)
class EvaluationResult:
    """Answers plus the intermediate-tuple cost of producing them."""

    answers: Relation
    intermediate_tuples: int


def evaluate_with_decomposition(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    decomp: Decomposition,
) -> EvaluationResult:
    """Evaluate a CQ along a given GHD of its hypergraph."""
    node_rels, build_cost = node_relations_from_ghd(query, database, decomp)
    answers, join_cost = yannakakis(decomp, node_rels, query.head)
    return EvaluationResult(answers, build_cost + join_cost)


def evaluate(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    k: int | None = None,
) -> EvaluationResult:
    """Find a GHD of the query (width <= k, default: smallest that the
    fixpoint method certifies) and evaluate along it."""
    hypergraph = query.hypergraph()
    if k is None:
        k = 1
        decomp = None
        while decomp is None and k <= hypergraph.num_edges:
            decomp = generalized_hypertree_decomposition(hypergraph, k)
            if decomp is None:
                k += 1
    else:
        decomp = generalized_hypertree_decomposition(hypergraph, k)
    if decomp is None:
        raise ValueError(f"query has no GHD of width <= {k}")
    return evaluate_with_decomposition(query, database, decomp)


def evaluate_naive(
    query: ConjunctiveQuery, database: Mapping[str, Relation]
) -> EvaluationResult:
    """Left-deep join of all atoms, then project the head (the baseline)."""
    parts = [atom_relation(database, atom) for atom in query.atoms]
    joined, cost = join_all(parts)
    return EvaluationResult(
        joined.project(list(query.head)).rename({}, name="answers"), cost
    )
