"""Decompositions as cached query plans — the paper's point, end to end.

The motivation for computing (generalized) hypertree width is that a
low-width decomposition *is* a query plan: a CQ whose hypergraph has
ghw k evaluates in polynomial time via Yannakakis over the join tree
(Section 1).  This module closes that loop against the serving stack:

* **plan** — :meth:`QueryPlanner.plan` routes the query hypergraph
  through the full reduce → split → solve → stitch pipeline
  (:class:`~repro.pipeline.batch.BatchScheduler` with ``kind="ghw"`` —
  integral covers, exactly what Yannakakis needs).  With a
  :class:`~repro.store.ResultStore` attached, the witness persists
  under the canonical hypergraph hash, so every later query of the
  same *shape* — same canonical hypergraph, any data — replays the
  stored plan with zero solver tasks and zero LP solves.
* **execute** — :meth:`QueryPlanner.execute` derives the join tree
  from the stitched witness (one relation per decomposition node: the
  join of its λ-atoms projected to the bag; atoms not in any λ are
  enforced by a semijoin into a covering bag) and runs semijoin
  reduction + Yannakakis, projecting to the head.

The plan key has the same dimensions as the store's instance records
and the serve daemon's coalescing identity — canonical hash × kind ×
solver × params fingerprint — so "two requests share one plan
computation" and "two requests share one store record" are the same
statement (see :func:`plan_key`).  The shape determines the join tree
only; the query's head, constants, argument order and repeated
variables live outside the hypergraph, so a shared plan is always
rebound to the asking query (:meth:`QueryPlan.rebound`) before it
executes — ``q(x) :- r(x, 3)`` and ``q(x) :- r(x, 5)`` share one
decomposition and keep their own answers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, replace

from ..decomposition import Decomposition
from ..hypergraph import Hypergraph
from ..pipeline.batch import BatchRequest, BatchScheduler
from ..store import ResultStore, params_fingerprint
from .evaluate import node_relations_from_ghd
from .query import ConjunctiveQuery
from .relations import Relation
from .yannakakis import yannakakis

__all__ = [
    "PLAN_KIND",
    "plan_key",
    "QueryPlan",
    "PlanInfo",
    "QueryResult",
    "PlannerStats",
    "QueryPlanner",
    "answer_query",
]

#: The width kind every plan solve uses.  Yannakakis needs one relation
#: per node built from whole atoms, i.e. *integral* covers — a GHD.
#: (fhw witnesses are fractional and cannot host node relations.)
PLAN_KIND = "ghw"


def plan_key(
    query: ConjunctiveQuery,
    solver: str = "bb",
    params: Mapping | None = None,
) -> tuple:
    """The caching/coalescing identity of a query's plan.

    ``(canonical hypergraph hash, kind, solver, params fingerprint)`` —
    the same dimensions :class:`~repro.store.ResultStore` keys instance
    records on and the serve daemon coalesces on, so queries that share
    a plan computation are exactly the ones that share a store record.
    Two queries with different relation names but isomorphic hypergraphs
    do NOT share a plan (the canonical hash covers edge names), which is
    what keeps the stored witness's λ edge names resolvable against the
    query's atoms.

    The key identifies a *plan*, not a query: distinct queries may
    share it (the hypergraph does not see the head, constants, atom
    argument order or repeated-variable patterns).  Sharing the
    decomposition across them is the whole point — but execution must
    then run each caller's own query, which is why every cache hit is
    rebound via :meth:`QueryPlan.rebound` before it leaves the planner.
    """
    return (
        query.hypergraph().canonical_hash(),
        PLAN_KIND,
        solver,
        params_fingerprint(dict(params or {})),
    )


@dataclass(frozen=True)
class QueryPlan:
    """A solved, reusable plan for one query shape.

    Attributes
    ----------
    query : ConjunctiveQuery
        The query this plan instance is *bound* to — execution runs
        exactly this query's head, constants, argument order and
        repeated-variable patterns.  The decomposition is shared by
        every query of the shape; :meth:`rebound` attaches it to
        another same-shape query (the planner does this on every
        in-memory cache hit, so :meth:`QueryPlanner.plan` always
        returns a plan bound to the query you asked about).
    hypergraph : Hypergraph
        Its query hypergraph (variables as vertices, atom occurrences
        as edges).
    width : int
        The ghw of the hypergraph — the exponent of the evaluation
        guarantee ``O(|D|^width + output)``.
    decomposition : Decomposition
        The stitched witness GHD; its bags/covers *are* the join tree.
    solver : str
        The solver mode that produced (or would produce) the witness.
    key : tuple
        The :func:`plan_key` this plan is cached under.
    from_store : bool
        Whether the solve was answered by a persistent store record
        instead of running the exact engines.
    """

    query: ConjunctiveQuery
    hypergraph: Hypergraph
    width: int
    decomposition: Decomposition
    solver: str
    key: tuple
    from_store: bool

    def rebound(self, query: ConjunctiveQuery) -> "QueryPlan":
        """This plan carrying ``query`` in place of the one it holds.

        A plan depends on its query only through the query hypergraph:
        the witness's λ edge names (``relation#i``) and bag variables
        are fixed by the canonical hash, so any query with the same
        canonical hypergraph can reuse the decomposition.  Everything
        the hypergraph does *not* see — the head, constants, argument
        order, repeated-variable patterns — lives on the query object,
        which is exactly why execution must receive the caller's own
        query and never a cached exemplar's (distinct queries share a
        hypergraph: ``q(x) :- r(x, 3)`` and ``q(x) :- r(x, 5)`` have
        different answers but one plan).

        Raises ``ValueError`` when ``query`` has a different canonical
        hypergraph — such a query cannot ride this decomposition.
        """
        if query == self.query:
            return self
        if (
            query.hypergraph().canonical_hash()
            != self.hypergraph.canonical_hash()
        ):
            raise ValueError(
                "query does not share this plan's hypergraph shape"
            )
        return replace(self, query=query)


@dataclass(frozen=True)
class PlanInfo:
    """How one :meth:`QueryPlanner.plan_detailed` call was satisfied.

    ``cache_hit`` — served from the in-memory plan cache (no scheduler
    run at all).  ``from_store`` — a scheduler ran but the persistent
    store answered it (zero exact tasks).  ``tasks_run`` / ``lp_solves``
    — exact engine work of this call (0 on either kind of hit).
    """

    cache_hit: bool
    from_store: bool
    tasks_run: int = 0
    lp_solves: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class QueryResult:
    """Answers of one execution plus the plan that produced them."""

    answers: Relation
    cost: int
    plan: QueryPlan

    @property
    def satisfied(self) -> bool:
        """True iff there is at least one answer (Boolean semantics)."""
        return not self.answers.is_empty()


@dataclass
class PlannerStats:
    """Lifetime counters of one :class:`QueryPlanner`.

    ``plans`` counts scheduler runs (cold plans), ``plan_cache_hits``
    in-memory replays, ``plan_store_hits`` runs answered by the
    persistent store, ``executions`` Yannakakis runs, and ``tasks_run``
    / ``lp_solves`` the exact-engine work summed over all plan solves —
    both stay at 0 when every shape is plan-warm.
    """

    plans: int = 0
    plan_cache_hits: int = 0
    plan_store_hits: int = 0
    executions: int = 0
    tasks_run: int = 0
    lp_solves: int = 0

    def as_dict(self) -> dict:
        """The counters as a JSON-ready dictionary."""
        return {
            "plans": self.plans,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_store_hits": self.plan_store_hits,
            "executions": self.executions,
            "tasks_run": self.tasks_run,
            "lp_solves": self.lp_solves,
        }


class QueryPlanner:
    """Plan-then-execute CQ answering over the width pipeline.

    Parameters
    ----------
    store : ResultStore or str or None
        Persistent plan cache.  A path opens a store at that directory
        for the planner's lifetime; a :class:`~repro.store.ResultStore`
        is shared (the serve daemon passes its own).  ``None`` still
        caches plans in memory, but restarts start cold.
    solver, bounds, preprocess : str
        Scheduler configuration for plan solves (same meanings as the
        ``repro width`` flags).
    jobs : int, optional
        Worker count inside each plan solve.
    executor : str
        Pool type of plan solves — one of
        :data:`~repro.pipeline.solve.EXECUTORS`.
    max_plans : int
        In-memory plan LRU capacity (evicts least-recently-used; the
        persistent store is unaffected by eviction).
    """

    def __init__(
        self,
        store: ResultStore | str | None = None,
        *,
        solver: str = "bb",
        bounds: str = "portfolio",
        preprocess: str = "full",
        jobs: int | None = None,
        executor: str = "thread",
        max_plans: int = 128,
    ) -> None:
        self._owns_store = store is not None and not isinstance(
            store, ResultStore
        )
        self.store = ResultStore(store) if self._owns_store else store
        self.solver = solver
        self.bounds = bounds
        self.preprocess = preprocess
        self.jobs = jobs
        self.executor = executor
        self.max_plans = max(1, int(max_plans))
        self.stats = PlannerStats()
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self._lock = threading.Lock()

    def close(self) -> None:
        """Close the store if this planner opened it from a path."""
        if self._owns_store and self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    def plan(self, query: ConjunctiveQuery) -> QueryPlan:
        """The (cached) plan for a query; solves its hypergraph if cold."""
        found, _info = self.plan_detailed(query)
        return found

    def plan_detailed(
        self, query: ConjunctiveQuery
    ) -> tuple[QueryPlan, PlanInfo]:
        """Like :meth:`plan`, also reporting how the plan was obtained.

        The serve daemon uses the :class:`PlanInfo` to account exact
        work per computation (its warm-restart guarantee asserts the
        counters stay at zero on repeated shapes).
        """
        hypergraph = query.hypergraph()
        key = plan_key(query, self.solver)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.stats.plan_cache_hits += 1
        if cached is not None:
            # The cached plan may have been derived for a *different*
            # query of the same shape (same canonical hypergraph,
            # different head/constants/argument order).  Rebinding makes
            # the returned plan execute THIS query — returning the
            # exemplar verbatim silently answered the wrong query.
            return cached.rebound(query), PlanInfo(
                cache_hit=True, from_store=False
            )
        started = time.perf_counter()
        scheduler = BatchScheduler(
            jobs=self.jobs,
            preprocess=self.preprocess,
            executor=self.executor,
            solver=self.solver,
            bounds=self.bounds,
            store=self.store,
        )
        handle = scheduler.submit(
            BatchRequest(hypergraph, kind=PLAN_KIND, label=query.name)
        )
        run_stats = scheduler.run()
        width, witness = handle.unwrap()
        if not witness.is_integral():
            raise ValueError(
                "plan solve returned a non-integral witness; "
                "Yannakakis needs a GHD"
            )
        plan = QueryPlan(
            query=query,
            hypergraph=hypergraph,
            width=int(width),
            decomposition=witness,
            solver=self.solver,
            key=key,
            from_store=run_stats.store_instance_hits > 0,
        )
        info = PlanInfo(
            cache_hit=False,
            from_store=plan.from_store,
            tasks_run=run_stats.tasks_run,
            lp_solves=run_stats.lp_solves,
            seconds=time.perf_counter() - started,
        )
        with self._lock:
            self.stats.plans += 1
            self.stats.plan_store_hits += 1 if plan.from_store else 0
            self.stats.tasks_run += info.tasks_run
            self.stats.lp_solves += info.lp_solves
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan, info

    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, database: Mapping[str, Relation]
    ) -> QueryResult:
        """Run semijoin reduction + Yannakakis along the plan's tree.

        Executes ``plan.query`` — the query the plan is *bound* to,
        which for plans obtained from :meth:`plan` / :meth:`plan_detailed`
        is always the query that was asked (cache hits are rebound).
        Holders of a shared plan answering a different same-shape query
        (the serve daemon's coalesced siblings) must rebind first via
        :meth:`QueryPlan.rebound`.

        ``database`` maps relation names to :class:`Relation` objects;
        every atom of the plan's query must resolve to a relation of
        matching arity (``ValueError`` otherwise).  The same plan may
        execute against any number of databases — that is the point.
        """
        node_rels, build_cost = node_relations_from_ghd(
            plan.query, database, plan.decomposition
        )
        answers, join_cost = yannakakis(
            plan.decomposition, node_rels, plan.query.head
        )
        with self._lock:
            self.stats.executions += 1
        return QueryResult(answers, build_cost + join_cost, plan)

    def answer(
        self, query: ConjunctiveQuery, database: Mapping[str, Relation]
    ) -> QueryResult:
        """Plan (or replay a cached plan) and execute in one call."""
        return self.execute(self.plan(query), database)


def answer_query(
    query: ConjunctiveQuery,
    database: Mapping[str, Relation],
    store: ResultStore | str | None = None,
    **options,
) -> QueryResult:
    """One-shot convenience: plan and execute with a throwaway planner.

    ``options`` are forwarded to :class:`QueryPlanner` (``solver``,
    ``bounds``, ``preprocess``, ``jobs``, ``executor``, ``max_plans``).
    Prefer holding a :class:`QueryPlanner` when answering many queries —
    it is what makes repeated shapes free.
    """
    planner = QueryPlanner(store, **options)
    try:
        return planner.answer(query, database)
    finally:
        planner.close()
