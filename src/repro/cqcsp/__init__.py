"""Conjunctive queries and CSPs — the motivating applications (Section 1).

Beyond the offline demo pieces (relational algebra, Yannakakis, CQ
parsing, workload generators), :mod:`repro.cqcsp.planner` wires query
answering into the serving stack: decompositions become cached query
plans (:class:`QueryPlanner`), persisted in the result store and
replayed with zero solver work for repeated query shapes.
"""

from .csp import CSP, Constraint, backtracking_solve
from .evaluate import (
    EvaluationResult,
    atom_relation,
    evaluate,
    evaluate_naive,
    evaluate_with_decomposition,
    node_relations_from_ghd,
)
from .planner import (
    PLAN_KIND,
    PlanInfo,
    PlannerStats,
    QueryPlan,
    QueryPlanner,
    QueryResult,
    answer_query,
    plan_key,
)
from .query import Atom, Const, ConjunctiveQuery, parse_cq
from .workloads import (
    chain_query,
    cycle_query,
    hub_relation,
    random_graph_relation,
    snowflake_query,
    star_query,
    zipf_relation,
)
from .relations import (
    Relation,
    join_all,
    relation_from_payload,
    relation_to_payload,
)
from .yannakakis import semijoin_reduce, yannakakis

__all__ = [
    "Relation",
    "join_all",
    "relation_to_payload",
    "relation_from_payload",
    "Atom",
    "Const",
    "ConjunctiveQuery",
    "parse_cq",
    "PLAN_KIND",
    "plan_key",
    "QueryPlan",
    "PlanInfo",
    "QueryResult",
    "PlannerStats",
    "QueryPlanner",
    "answer_query",
    "yannakakis",
    "semijoin_reduce",
    "atom_relation",
    "node_relations_from_ghd",
    "EvaluationResult",
    "evaluate",
    "evaluate_naive",
    "evaluate_with_decomposition",
    "CSP",
    "Constraint",
    "backtracking_solve",
    "star_query",
    "chain_query",
    "cycle_query",
    "snowflake_query",
    "random_graph_relation",
    "hub_relation",
    "zipf_relation",
]
