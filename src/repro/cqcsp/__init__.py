"""Conjunctive queries and CSPs — the motivating applications (Section 1)."""

from .csp import CSP, Constraint, backtracking_solve
from .evaluate import (
    EvaluationResult,
    atom_relation,
    evaluate,
    evaluate_naive,
    evaluate_with_decomposition,
    node_relations_from_ghd,
)
from .query import Atom, ConjunctiveQuery, parse_cq
from .workloads import (
    chain_query,
    cycle_query,
    hub_relation,
    random_graph_relation,
    snowflake_query,
    star_query,
    zipf_relation,
)
from .relations import Relation, join_all
from .yannakakis import semijoin_reduce, yannakakis

__all__ = [
    "Relation",
    "join_all",
    "Atom",
    "ConjunctiveQuery",
    "parse_cq",
    "yannakakis",
    "semijoin_reduce",
    "atom_relation",
    "node_relations_from_ghd",
    "EvaluationResult",
    "evaluate",
    "evaluate_naive",
    "evaluate_with_decomposition",
    "CSP",
    "Constraint",
    "backtracking_solve",
    "star_query",
    "chain_query",
    "cycle_query",
    "snowflake_query",
    "random_graph_relation",
    "hub_relation",
    "zipf_relation",
]
