"""Persistent result store: width answers that survive restarts.

``solve_many`` amortizes work *within* one process, but every
:class:`~repro.engine.oracle.CoverOracle` entry, settled
:class:`~repro.pipeline.solve.BlockState` verdict and stitched witness
still dies with the process.  This package spills them to disk:

* :class:`ResultStore` — an append-only, checksummed record log keyed
  on ``(hypergraph canonical hash, measure, k, solver mode)``.  Records
  are length-prefixed and CRC-protected, so a crash mid-write (or any
  corrupt/truncated tail) degrades to a **cache miss, never a wrong
  answer**: loading stops at the first bad record and the next append
  truncates the bad tail away;
* every stored witness is **re-validated** against the hypergraph it is
  served for before it is trusted (:func:`checked_witness`) — the store
  is untrusted input, exactly like the solver outputs it mirrors;
* the batch scheduler seeds per-block search state from the store and
  writes verdicts back on settle (``BatchScheduler(store=...)``), and
  the ``repro serve`` daemon answers repeat requests from it with zero
  LP solves and zero exact Check tasks (benchmark E23).

The log format and record vocabulary live in :mod:`repro.store.log`.
"""

from .log import (
    STORE_FILENAME,
    ResultStore,
    StoreStats,
    checked_witness,
    params_fingerprint,
)

__all__ = [
    "ResultStore",
    "StoreStats",
    "checked_witness",
    "params_fingerprint",
    "STORE_FILENAME",
]
