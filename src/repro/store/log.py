"""The append-only result log behind :class:`ResultStore`.

Why a log and not a database: the write path of a serving daemon must
be cheap (one append per settled verdict), crash tolerance must be
*structural* rather than transactional (any torn write is detected and
discarded on load), and the whole store must remain dependency-free.
The format is deliberately boring::

    record   := MAGIC(4) | length(4, big-endian) | crc32(4) | payload
    payload  := UTF-8 JSON {"key": [...], "value": {...}}

Loading scans records until the first structural problem — bad magic,
impossible length, CRC mismatch, malformed JSON — and remembers the
byte offset of the last good record.  Everything after it is a
*skipped tail*: reads behave as if those records were never written,
and the next append truncates the file back to the good prefix before
writing.  A writer killed between ``write`` and ``fsync`` therefore
costs at most the unsynced suffix — recomputation, never corruption.

Record vocabulary (all keys start with a type tag):

* ``("block", hhash, kind, solver, params_fp)`` — a settled iterative
  block: ``{"width": k, "witness": {...}}``.  Implies every ``k' < k``
  was rejected, so one record seeds the whole k-search.
* ``("block-exact", hhash, kind, solver, params_fp)`` — a oneshot
  exact-oracle block: ``{"width": w, "witness": {...}}``.
* ``("check", hhash, kind, k, solver, params_fp)`` — one Check(X, k)
  verdict: ``{"accepted": bool, "witness": {...} | null}``.
* ``("instance", hhash, request_kind, solver, params_fp)`` — a full
  request answer (stitched witness), the serve layer's fast path.
* ``("oracle", hhash)`` — exported cover-oracle entries for one
  hypergraph (see :meth:`repro.engine.oracle.CoverOracle.export_entries`).

Witness payloads use the stable JSON schema of
:mod:`repro.decomposition.io`; bag vertices are stringified there, so
round trips are exact for string-vertex hypergraphs (the serving
formats) and safely *miss* — witness validation fails — for exotic
vertex types.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..decomposition import Decomposition, validate
from ..decomposition.io import decomposition_from_json
from ..hypergraph import Hypergraph

__all__ = [
    "ResultStore",
    "StoreStats",
    "checked_witness",
    "params_fingerprint",
    "STORE_FILENAME",
]

#: File name of the record log inside a store directory.
STORE_FILENAME = "results.log"

#: Per-record frame: magic, payload length, payload CRC32.
_MAGIC = b"RPS1"
_HEADER = struct.Struct(">4sII")

#: Refuse absurd record sizes (a corrupt length field would otherwise
#: make the loader try to read gigabytes before failing the CRC).
_MAX_RECORD_BYTES = 64 * 1024 * 1024

_EPS = 1e-9


def params_fingerprint(params: dict | None) -> str:
    """A stable, order-independent fingerprint of solver parameters.

    Store keys include it so answers computed under different tuning
    parameters (``method``, ``vertex_limit``, enumeration caps, ...)
    never serve each other.  Unfingerprintable values (non-JSON
    objects, e.g. a custom ``find_fhd`` callable) yield the sentinel
    ``"!opaque"``, which matches nothing but itself within one process
    and is never written by the persistence layer — callers skip
    storing such requests.
    """
    if not params:
        return "{}"
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return "!opaque"


def checked_witness(
    hypergraph: Hypergraph,
    payload: dict | None,
    kind: str,
    width: float | None = None,
) -> Decomposition | None:
    """Deserialize and re-validate a stored witness, or None.

    The store is untrusted input: a witness only counts if it parses
    *and* validates as a ``kind`` decomposition of ``hypergraph``
    (within ``width``, when given).  Any failure — malformed JSON
    shape, wrong hypergraph, wrong kind, width too large — degrades to
    a cache miss by returning None.
    """
    if not isinstance(payload, dict):
        return None
    try:
        decomposition = decomposition_from_json(json.dumps(payload))
        validate(hypergraph, decomposition, kind=kind, width=width)
    except (ValueError, KeyError, TypeError, AttributeError):
        return None
    return decomposition


@dataclass
class StoreStats:
    """Load/append counters of one :class:`ResultStore`.

    Attributes
    ----------
    records_loaded : int
        Well-formed records read at open time.
    records_skipped : int
        Records lost to the corrupt/truncated tail at open time (at
        most 1 can be counted — loading stops at the first bad frame —
        so this is 0 or 1; the *bytes* lost are in ``bytes_skipped``).
    records_appended : int
        Records written by this handle since opening.
    bytes_valid : int
        Length of the good log prefix.
    bytes_skipped : int
        Bytes after the good prefix discarded at open time.
    entries : int
        Live keys in the index (last record per key wins).
    """

    records_loaded: int = 0
    records_skipped: int = 0
    records_appended: int = 0
    bytes_valid: int = 0
    bytes_skipped: int = 0
    entries: int = 0

    def as_dict(self) -> dict:
        """The counters as a JSON-ready dictionary."""
        return {
            "records_loaded": self.records_loaded,
            "records_skipped": self.records_skipped,
            "records_appended": self.records_appended,
            "bytes_valid": self.bytes_valid,
            "bytes_skipped": self.bytes_skipped,
            "entries": self.entries,
        }


class ResultStore:
    """A persistent, crash-tolerant map from solve keys to verdicts.

    Parameters
    ----------
    path : str or Path
        Store directory (created if missing); the log lives at
        ``path/results.log``.
    fsync : bool, optional
        Force every append to stable storage before returning (default
        False: the OS flushes on its own schedule, and a crash costs
        only the unsynced suffix — recomputation, not corruption).

    The store is safe for concurrent use from many threads of one
    process (appends serialize on an internal lock).  Concurrent
    *writers in different processes* are not supported — run one
    ``repro serve`` daemon per store directory.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._index: dict[tuple, dict] = {}
        self._file = open(self.log_path, "a+b")
        self._load()

    @property
    def log_path(self) -> Path:
        """Path of the append-only record log."""
        return self.path / STORE_FILENAME

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Index the good log prefix; remember where the bad tail starts."""
        f = self._file
        f.seek(0)
        good = 0
        while True:
            header = f.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break  # clean end of log (or torn header: same treatment)
            magic, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC or length > _MAX_RECORD_BYTES:
                break
            payload = f.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            try:
                record = json.loads(payload.decode("utf-8"))
                key = tuple(record["key"])
                value = record["value"]
            except (ValueError, KeyError, TypeError):
                break
            self._index[key] = value
            self.stats.records_loaded += 1
            good = f.tell()
        f.seek(0, 2)
        end = f.tell()
        self.stats.bytes_valid = good
        self.stats.bytes_skipped = end - good
        if end > good:
            self.stats.records_skipped = 1
        self.stats.entries = len(self._index)
        self._valid_bytes = good

    def append(self, key: tuple, value: dict, overwrite: bool = False) -> bool:
        """Append one record; returns whether anything was written.

        With ``overwrite=False`` (default) an existing key is left
        alone — verdicts are immutable facts, so re-writing them only
        grows the log.  The first append after opening a store with a
        corrupt tail truncates the tail away, keeping the invariant
        that the file is exactly the good prefix plus new records.
        """
        key = tuple(key)
        payload = json.dumps(
            {"key": list(key), "value": value}, sort_keys=True
        ).encode("utf-8")
        header = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload))
        with self._lock:
            if not overwrite and key in self._index:
                return False
            f = self._file
            f.seek(0, 2)
            if f.tell() != self._valid_bytes:
                f.truncate(self._valid_bytes)
                f.seek(self._valid_bytes)
                self.stats.bytes_skipped = 0
            f.write(header + payload)
            f.flush()
            if self.fsync:
                import os

                os.fsync(f.fileno())
            self._valid_bytes = f.tell()
            self._index[key] = value
            self.stats.records_appended += 1
            self.stats.bytes_valid = self._valid_bytes
            self.stats.entries = len(self._index)
        return True

    def get(self, key: tuple) -> dict | None:
        """The live value of ``key``, or None (raw, un-revalidated)."""
        return self._index.get(tuple(key))

    def __contains__(self, key: tuple) -> bool:
        return tuple(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def type_counts(self) -> dict:
        """Live record count per record-type tag (``repro store stats``)."""
        counts: dict[str, int] = {}
        for key in self._index:
            tag = str(key[0]) if key else "?"
            counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    def close(self) -> None:
        """Close the log file handle (reads/writes after this raise)."""
        self._file.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Typed records
    # ------------------------------------------------------------------
    @staticmethod
    def _knorm(k) -> float:
        return round(float(k), 9)

    def put_block(
        self,
        hypergraph: Hypergraph,
        kind: str,
        solver: str,
        params: dict | None,
        width: int,
        witness: Decomposition,
    ) -> None:
        """Persist a settled iterative block: its width and witness."""
        fp = params_fingerprint(params)
        if fp == "!opaque":
            return
        self.append(
            ("block", hypergraph.canonical_hash(), kind, solver, fp),
            {"width": int(width), "witness": witness.as_dict()},
        )

    def get_block(
        self,
        hypergraph: Hypergraph,
        kind: str,
        solver: str,
        params: dict | None,
    ) -> tuple[int, Decomposition] | None:
        """A validated ``(width, witness)`` for the block, or None."""
        value = self.get(
            (
                "block",
                hypergraph.canonical_hash(),
                kind,
                solver,
                params_fingerprint(params),
            )
        )
        if not isinstance(value, dict):
            return None
        width = value.get("width")
        if not isinstance(width, int) or width < 1:
            return None
        witness = checked_witness(
            hypergraph, value.get("witness"), kind, width=width + _EPS
        )
        return None if witness is None else (width, witness)

    def put_block_exact(
        self,
        hypergraph: Hypergraph,
        kind: str,
        solver: str,
        params: dict | None,
        width: float,
        witness: Decomposition,
    ) -> None:
        """Persist a oneshot exact-oracle block result."""
        fp = params_fingerprint(params)
        if fp == "!opaque":
            return
        self.append(
            ("block-exact", hypergraph.canonical_hash(), kind, solver, fp),
            {"width": float(width), "witness": witness.as_dict()},
        )

    def get_block_exact(
        self,
        hypergraph: Hypergraph,
        kind: str,
        solver: str,
        params: dict | None,
    ) -> tuple[float, Decomposition] | None:
        """A validated oneshot ``(width, witness)``, or None."""
        value = self.get(
            (
                "block-exact",
                hypergraph.canonical_hash(),
                kind,
                solver,
                params_fingerprint(params),
            )
        )
        if not isinstance(value, dict):
            return None
        width = value.get("width")
        if not isinstance(width, (int, float)) or width < 1 - _EPS:
            return None
        witness = checked_witness(
            hypergraph, value.get("witness"), kind, width=float(width) + _EPS
        )
        return None if witness is None else (float(width), witness)

    def put_check(
        self,
        hypergraph: Hypergraph,
        kind: str,
        k,
        solver: str,
        params: dict | None,
        witness: Decomposition | None,
    ) -> None:
        """Persist one Check(X, k) verdict (None witness = rejected)."""
        fp = params_fingerprint(params)
        if fp == "!opaque":
            return
        self.append(
            (
                "check",
                hypergraph.canonical_hash(),
                kind,
                self._knorm(k),
                solver,
                fp,
            ),
            {
                "accepted": witness is not None,
                "witness": None if witness is None else witness.as_dict(),
            },
        )

    def get_check(
        self,
        hypergraph: Hypergraph,
        kind: str,
        k,
        solver: str,
        params: dict | None,
    ):
        """A stored Check verdict: ``(accepted, witness)`` or None.

        An *accepted* record whose witness fails re-validation is a
        miss (never trust the log); a *rejected* record needs no
        witness and is returned as ``(False, None)``.
        """
        value = self.get(
            (
                "check",
                hypergraph.canonical_hash(),
                kind,
                self._knorm(k),
                solver,
                params_fingerprint(params),
            )
        )
        if not isinstance(value, dict):
            return None
        if not value.get("accepted"):
            return (False, None)
        witness = checked_witness(
            hypergraph, value.get("witness"), kind, width=float(k) + _EPS
        )
        return None if witness is None else (True, witness)

    def put_instance(
        self,
        hypergraph: Hypergraph,
        request_kind: str,
        solver: str,
        params: dict | None,
        value: dict,
    ) -> None:
        """Persist a full request answer (the serve layer's fast path)."""
        fp = params_fingerprint(params)
        if fp == "!opaque":
            return
        self.append(
            ("instance", hypergraph.canonical_hash(), request_kind, solver, fp),
            value,
        )

    def get_instance(
        self,
        hypergraph: Hypergraph,
        request_kind: str,
        solver: str,
        params: dict | None,
    ) -> dict | None:
        """The raw stored answer for a full request, or None.

        Witness re-validation is the caller's job (the serve layer
        validates against the request's own hypergraph and kind).
        """
        return self.get(
            (
                "instance",
                hypergraph.canonical_hash(),
                request_kind,
                solver,
                params_fingerprint(params),
            )
        )

    def put_oracle_entries(
        self, hypergraph: Hypergraph, entries: list
    ) -> None:
        """Persist exported cover-oracle entries for one hypergraph.

        Overwrites the previous export (the newest snapshot subsumes
        older, smaller ones).  Empty exports are not written.
        """
        if entries:
            self.append(
                ("oracle", hypergraph.canonical_hash()),
                {"entries": entries},
                overwrite=True,
            )

    def get_oracle_entries(self, hypergraph: Hypergraph) -> list:
        """The stored oracle export for a hypergraph ([] when absent)."""
        value = self.get(("oracle", hypergraph.canonical_hash()))
        if not isinstance(value, dict):
            return []
        entries = value.get("entries")
        return entries if isinstance(entries, list) else []
