"""The ``CoverOracle``: one memoized cover service for all algorithms.

Width searches ask the same cover questions over and over — "what is the
optimal fractional cover of this bag using these edges?", "does this bag
admit a cover of weight <= k?", "give me an integral cover of this bag".
Before the engine, each algorithm answered them with its own ad-hoc LP
calls (and its own private caches, when it cached at all).  The oracle
centralizes them behind an LRU cache keyed on ``(kind, bag,
allowed_edges)`` and a pluggable LP backend, so

* repeated queries — within one search *and across algorithms sharing a
  hypergraph* — hit the cache instead of the solver;
* LP-solve counts and hit rates are observable (CLI ``--cache-stats``,
  benchmark tables);
* the solver is swappable (scipy-HiGHS default, pure-Python fallback).

Use :func:`oracle_for` to get the shared oracle of a hypergraph under the
current engine configuration; construct :class:`CoverOracle` directly
only when you need private caching or a specific backend.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from ..covers import EPS, FractionalCover
from ..covers.fractional import solve_fractional_cover
from ..covers.integral import edge_cover_of, greedy_edge_cover_of
from ..hypergraph import Hypergraph, Vertex
from .backends import LPBackend, get_backend
from .context import SearchContext, get_context

__all__ = [
    "CoverOracle",
    "OracleStats",
    "oracle_for",
    "DEFAULT_CACHE_SIZE",
]

#: Default LRU capacity per oracle (0 disables caching entirely).
DEFAULT_CACHE_SIZE = 100_000

#: Cap used for "purely fractional" covers (Algorithm 3's check 2.a): the
#: LP is solved with per-edge weights strictly below 1 so the resulting γ
#: has an empty integral part; see ``fractional_cover_capped``.
CAP_BELOW_ONE = 1.0 - 1e-6


class OracleStats:
    """Mutable counters; also aggregated globally via ``engine.stats()``."""

    __slots__ = ("lp_solves", "set_cover_solves", "hits", "misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.lp_solves = 0
        self.set_cover_solves = 0
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits over lookups (0.0 when there were no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """The counters as a JSON-ready dictionary."""
        return {
            "lp_solves": self.lp_solves,
            "set_cover_solves": self.set_cover_solves,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


#: Library-wide aggregate, reset/read via repro.engine.stats helpers.
GLOBAL_STATS = OracleStats()


class CoverOracle:
    """Memoized fractional/integral cover queries for one hypergraph.

    All queries are keyed on ``(kind, bag, allowed_edges)`` where ``bag``
    and ``allowed_edges`` are interned frozensets, and answered through
    the configured :class:`~repro.engine.backends.LPBackend`.  Covers are
    deterministic for a fixed backend (edge order is sorted), so caching
    never changes results — property tests in ``tests/test_engine.py``
    verify agreement with the uncached covers-layer functions.
    """

    def __init__(
        self,
        context: SearchContext | Hypergraph,
        backend: LPBackend | str | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if isinstance(context, Hypergraph):
            context = get_context(context)
        self.context = context
        self.hypergraph = context.hypergraph
        self.backend = (
            backend if isinstance(backend, LPBackend) else get_backend(backend)
        )
        self.cache_size = max(0, int(cache_size))
        self._cache: OrderedDict = OrderedDict()
        # Verified-feasible covers imported from a store log.  They are
        # *upper-bound hints* — sound one-sided evidence (ρ* <= weight),
        # never treated as the optimal answer; see ``import_entries``.
        self._hints: dict = {}
        self.stats = OracleStats()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _lookup(self, key):
        if not self.cache_size:
            return None
        hit = self._cache.get(key, _MISS)
        if hit is _MISS:
            return None
        try:
            self._cache.move_to_end(key)
        except KeyError:
            # Concurrently evicted by another thread of the parallel
            # block solver; the value we already read stays valid.
            pass
        self.stats.hits += 1
        GLOBAL_STATS.hits += 1
        return hit

    def _store(self, key, value):
        self.stats.misses += 1
        GLOBAL_STATS.misses += 1
        if self.cache_size:
            self._cache[key] = value
            while len(self._cache) > self.cache_size:
                try:
                    self._cache.popitem(last=False)
                except KeyError:
                    break  # another thread emptied it first
        return value

    def _key(self, kind: str, bag: frozenset, allowed: frozenset | None):
        return (kind, bag, allowed)

    def _normalize(
        self,
        vertex_set: Iterable[Vertex],
        allowed_edges: Iterable[str] | None,
    ) -> tuple[frozenset, frozenset | None]:
        bag = self.context.intern(
            vertex_set
            if type(vertex_set) is frozenset
            else frozenset(vertex_set)
        )
        allowed = (
            None
            if allowed_edges is None
            else (
                allowed_edges
                if type(allowed_edges) is frozenset
                else frozenset(allowed_edges)
            )
        )
        return bag, allowed

    # ------------------------------------------------------------------
    # Fractional covers
    # ------------------------------------------------------------------
    def fractional_cover(
        self,
        vertex_set: Iterable[Vertex],
        allowed_edges: Iterable[str] | None = None,
    ) -> FractionalCover | None:
        """Optimal fractional cover of ``vertex_set`` (None if infeasible).

        Semantics match :func:`repro.covers.fractional.fractional_cover_of`:
        each target vertex must receive total weight >= 1 from the allowed
        edges, contributing with their full vertex sets.
        """
        bag, allowed = self._normalize(vertex_set, allowed_edges)
        key = self._key("frac", bag, allowed)
        cached = self._lookup(key)
        if cached is not None:
            return cached[0]
        return self._store(key, (self._solve_fractional(bag, allowed),))[0]

    def fractional_weight(
        self,
        vertex_set: Iterable[Vertex],
        allowed_edges: Iterable[str] | None = None,
    ) -> float | None:
        """``ρ*`` of the bag within the allowed edges, or None."""
        cover = self.fractional_cover(vertex_set, allowed_edges)
        return None if cover is None else cover.weight

    def cover_feasible_within(
        self,
        vertex_set: Iterable[Vertex],
        budget: float,
        allowed_edges: Iterable[str] | None = None,
    ) -> bool:
        """True iff the bag has a fractional cover of weight <= budget.

        Imported store entries participate as one-sided evidence: a
        verified-feasible cover of weight <= budget proves feasibility
        without an LP solve, but can never prove *in*feasibility (its
        weight is only an upper bound on ρ*), so a hint heavier than
        the budget falls through to the exact LP.
        """
        bag, allowed = self._normalize(vertex_set, allowed_edges)
        key = self._key("frac", bag, allowed)
        cached = self._lookup(key)
        if cached is None:
            hint = self._hints.get(key)
            if hint is not None and hint.weight <= budget + EPS:
                self.stats.hits += 1
                GLOBAL_STATS.hits += 1
                return True
            cached = self._store(
                key, (self._solve_fractional(bag, allowed),)
            )
        cover = cached[0]
        return cover is not None and cover.weight <= budget + EPS

    def fractional_cover_capped(
        self,
        vertex_set: Iterable[Vertex],
        budget: float | None = None,
    ) -> FractionalCover | None:
        """A purely fractional optimal cover: per-edge weights < 1.

        Algorithm 3's check 2.a treats its γ as purely fractional — a
        weight-1 edge would silently enlarge the Definition 6.3 set S and
        break the weak special condition.  The LP is therefore solved
        with weights capped strictly below 1; when that is infeasible
        (some wanted vertex lies in a single edge) the uncapped cover is
        returned instead, matching the pre-engine behaviour.

        ``budget`` lets imported store hints short-circuit the LP: check
        2.a is existential, so *any* verified purely fractional cover of
        the bag with weight <= budget is an acceptable γ.  A hint heavier
        than the budget proves nothing and the LP is solved normally;
        without a budget, hints are never consulted (the caller expects
        the optimum).
        """
        bag, _ = self._normalize(vertex_set, None)
        key = self._key("capped", bag, None)
        cached = self._lookup(key)
        if cached is not None:
            return cached[0]
        if budget is not None:
            hint = self._hints.get(key)
            if hint is not None and hint.weight <= budget + EPS:
                self.stats.hits += 1
                GLOBAL_STATS.hits += 1
                return hint
        capped = self._solve_fractional(bag, None, cap=CAP_BELOW_ONE)
        if capped is None:
            capped = self._solve_fractional(bag, None)
        return self._store(key, (capped,))[0]

    def _solve_fractional(
        self,
        bag: frozenset,
        allowed: frozenset | None,
        cap: float | None = None,
    ) -> FractionalCover | None:
        self.stats.lp_solves += 1
        GLOBAL_STATS.lp_solves += 1
        # One shared pipeline with the covers layer — only the solver
        # (this oracle's backend) differs from fractional_cover_of.
        return solve_fractional_cover(
            self.hypergraph,
            bag,
            allowed_edges=allowed,
            solver=self.backend.solve_covering_lp,
            cap=cap,
        )

    # ------------------------------------------------------------------
    # Persistence (the result store spills/reloads these entries)
    # ------------------------------------------------------------------
    def export_entries(self, limit: int | None = None) -> list:
        """The cached LP answers as plain JSON-ready entries.

        Only the LP-backed kinds (``"frac"``, ``"capped"``) are
        exported — they are the expensive solves worth persisting —
        and only entries whose bag/allowed elements are JSON scalars
        (strings or ints), so the export round-trips losslessly.
        Entries are newest-first; ``limit`` bounds the export size.

        Each entry is ``[kind, bag, allowed, weights]`` with ``bag`` a
        sorted list, ``allowed`` a sorted list or None, and ``weights``
        the cover's edge-weight mapping or None for an infeasible bag.
        """
        out: list = []
        for key, value in reversed(self._cache.items()):
            kind, bag, allowed = key
            if kind not in ("frac", "capped"):
                continue
            if not all(isinstance(v, (str, int)) for v in bag):
                continue
            if allowed is not None and not all(
                isinstance(e, str) for e in allowed
            ):
                continue
            cover = value[0]
            out.append(
                [
                    kind,
                    sorted(bag, key=repr),
                    None if allowed is None else sorted(allowed),
                    None if cover is None else dict(cover.weights),
                ]
            )
            if limit is not None and len(out) >= limit:
                break
        return out

    def import_entries(self, entries: list) -> int:
        """Seed the oracle from an export; returns entries accepted.

        Imported data is untrusted (it may come from a store log), so
        nothing imported is ever served as an *optimal* ρ*:

        * *Infeasible* verdicts (``weights is None``) are re-derived
          exactly — a fractional cover is infeasible iff some bag
          vertex lies in no allowed edge — and only then enter the
          authoritative cache.
        * Feasible covers are verified to actually cover their bag
          within the allowed edges (and, for ``"capped"`` entries, to
          keep every per-edge weight strictly below 1), then retained
          as *upper-bound hints* only: they answer
          :meth:`cover_feasible_within` and budgeted
          :meth:`fractional_cover_capped` queries they satisfy without
          an LP solve, while exact ρ* queries still solve — so a
          well-formed but suboptimal record can never inflate a width
          or flip a verdict.

        Rejected entries are skipped silently — a bad record is a
        cache miss, never a wrong answer.  Counters are untouched:
        importing is neither a hit nor a miss.
        """
        accepted = 0
        for entry in entries:
            if not (isinstance(entry, (list, tuple)) and len(entry) == 4):
                continue
            kind, bag_list, allowed_list, weights = entry
            if kind not in ("frac", "capped"):
                continue
            if not isinstance(bag_list, (list, tuple)):
                continue
            bag = self.context.intern(frozenset(bag_list))
            if not bag or not bag <= self.hypergraph.vertices:
                continue
            if allowed_list is None:
                allowed = None
                usable = set(self.hypergraph.edges)
            else:
                if not isinstance(allowed_list, (list, tuple)):
                    continue
                allowed = frozenset(allowed_list)
                if not allowed <= set(self.hypergraph.edges):
                    continue
                usable = set(allowed)
            if weights is None:
                # Exact re-derivation of the infeasibility verdict.
                covered: set = set()
                for name in usable:
                    covered |= self.hypergraph.edge(name)
                if bag <= covered:
                    continue
                cover = None
            else:
                if not isinstance(weights, dict):
                    continue
                try:
                    cover = FractionalCover(
                        {str(e): float(w) for e, w in weights.items()}
                    )
                except (TypeError, ValueError):
                    continue
                if not set(cover.weights) <= usable:
                    continue
                if kind == "capped" and any(
                    w > CAP_BELOW_ONE + EPS for w in cover.weights.values()
                ):
                    continue
                feasible = all(
                    sum(
                        w
                        for e, w in cover.weights.items()
                        if v in self.hypergraph.edge(e)
                    )
                    >= 1.0 - EPS
                    for v in bag
                )
                if not feasible:
                    continue
            if not self.cache_size:
                continue
            key = self._key(kind, bag, allowed)
            if cover is None:
                if key not in self._cache:
                    self._cache[key] = (None,)
                    while len(self._cache) > self.cache_size:
                        try:
                            self._cache.popitem(last=False)
                        except KeyError:  # pragma: no cover - racing clear
                            break
                    accepted += 1
            elif key not in self._hints and len(self._hints) < self.cache_size:
                self._hints[key] = cover
                accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Integral covers
    # ------------------------------------------------------------------
    def integral_cover(
        self,
        vertex_set: Iterable[Vertex],
        limit: int | None = None,
    ) -> FractionalCover | None:
        """A minimum integral edge cover (λ) of the bag, as a 0/1 cover."""
        bag, _ = self._normalize(vertex_set, None)
        key = self._key(f"int:{limit}", bag, None)
        cached = self._lookup(key)
        if cached is not None:
            return cached[0]
        self.stats.set_cover_solves += 1
        GLOBAL_STATS.set_cover_solves += 1
        cover = edge_cover_of(self.hypergraph, bag, limit=limit)
        return self._store(key, (cover,))[0]

    def greedy_cover(
        self, vertex_set: Iterable[Vertex]
    ) -> FractionalCover | None:
        """A greedy (ln-approximate) integral cover of the bag."""
        bag, _ = self._normalize(vertex_set, None)
        key = self._key("greedy", bag, None)
        cached = self._lookup(key)
        if cached is not None:
            return cached[0]
        self.stats.set_cover_solves += 1
        GLOBAL_STATS.set_cover_solves += 1
        cover = greedy_edge_cover_of(self.hypergraph, bag)
        return self._store(key, (cover,))[0]


class _Miss:
    __slots__ = ()


_MISS = _Miss()


def oracle_for(
    hypergraph: Hypergraph | SearchContext,
    backend: str | None = None,
    cache_size: int | None = None,
) -> CoverOracle:
    """The shared oracle of a hypergraph under the current engine config.

    Oracles live on the hypergraph's :class:`SearchContext`, keyed by
    ``(backend, cache_size)``, so every algorithm touching the same
    hypergraph under the same configuration shares one cache.

    Parameters
    ----------
    hypergraph : Hypergraph or SearchContext
        The instance (or its context) whose oracle to fetch.
    backend : str, optional
        LP backend name; defaults to the configured engine backend.
    cache_size : int, optional
        LRU capacity (0 disables caching); defaults to the configured
        engine cache size.

    Returns
    -------
    CoverOracle
        The shared per-context oracle for that configuration.
    """
    from . import engine_config  # late: avoid import cycle
    from .backends import default_backend_name

    config = engine_config()
    backend_name = backend if backend is not None else config.backend
    # Normalize "library default" to the concrete backend so equivalent
    # configurations (None vs the default's explicit name) share one
    # oracle and one warm cache.
    backend_name = backend_name or default_backend_name()
    size = cache_size if cache_size is not None else config.cache_size
    context = (
        hypergraph
        if isinstance(hypergraph, SearchContext)
        else get_context(hypergraph)
    )
    key = (backend_name, size)
    oracle = context._oracles.get(key)
    if oracle is None:
        oracle = CoverOracle(context, backend=backend_name, cache_size=size)
        context._oracles[key] = oracle
    return oracle
