"""Generic Check(X, k) branch-and-bound skeleton (the ``k-decomp`` shape).

Every positive result in the paper (Theorems 4.11, 4.15, 5.2, 6.1)
reduces to the same alternating search: a state is a pair ``(C_r, R)``
of an open component and the parent's cover edges; at each state a cover
``S`` of bounded size is guessed subject to (a) the frontier
``V(R) ∩ ⋃ edges(C_r)`` lies inside ``V(S)`` and (b) ``V(S)`` meets the
component; the ``[V(S)]``-components inside ``C_r`` are then solved
recursively, and on acceptance the witness tree is rebuilt top-down with
bags ``B_u = V(S_u) ∩ (B_r ∪ C_u)``.

:class:`CheckSearch` implements that skeleton once, on top of the shared
:class:`~repro.engine.context.SearchContext` (memoized components,
frontiers and edge unions) and :class:`~repro.engine.oracle.CoverOracle`
(memoized cover LPs).  What varies between width measures is expressed
through hooks:

* :meth:`max_cover_size` — the cardinality bound on ``S`` (k for HD/GHD,
  k·d for the Theorem 5.2 FHD search);
* :meth:`admissible` — extra per-guess checks (strictness, ρ* <= k);
* :meth:`state_key` — the memoization key (frontier-summarized for plain
  HDs, full parent cover when strictness depends on it);
* :meth:`guess_order` — the guess-ordering strategy (named strategies in
  :data:`GUESS_STRATEGIES`).

``HDSearch`` (and through it the GHD subedge-augmentation path) and
``StrictFHDSearch`` are thin instantiations in the algorithms layer.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Hashable

from ..covers import FractionalCover
from ..decomposition import Decomposition
from ..hypergraph import Hypergraph
from .context import SearchContext, get_context
from .oracle import CoverOracle, oracle_for

__all__ = ["CheckSearch", "GUESS_STRATEGIES"]


def _order_by_coverage(search: "CheckSearch", candidates: list, target: frozenset):
    """Best-first: single edges ordered by coverage of component ∪ frontier.

    Lets the search commit to large separators early (the seed library's
    behaviour, kept as the default).
    """
    hg = search.hypergraph
    return sorted(candidates, key=lambda e: (-len(hg.edge(e) & target), e))


def _order_lexicographic(search: "CheckSearch", candidates: list, target: frozenset):
    """Plain sorted order — deterministic baseline for ablations."""
    return sorted(candidates)


#: Named guess-ordering strategies selectable per search.
GUESS_STRATEGIES: dict[str, Callable] = {
    "coverage": _order_by_coverage,
    "lexicographic": _order_lexicographic,
}


class CheckSearch:
    """Reusable Check(X, k) search over ``(component, parent cover)`` states.

    Parameters
    ----------
    hypergraph:
        The hypergraph to decompose (possibly subedge-augmented).
    k:
        The integral cover-size budget (see :meth:`max_cover_size`).
    context / oracle:
        Shared engine services; default to the hypergraph's registered
        context and the configured oracle, so concurrent searches on the
        same hypergraph share caches.
    guess_strategy:
        A key of :data:`GUESS_STRATEGIES` (default ``"coverage"``).
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        *,
        context: SearchContext | None = None,
        oracle: CoverOracle | None = None,
        guess_strategy: str = "coverage",
    ) -> None:
        if k < 1:
            raise ValueError("width bound k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self.context = context if context is not None else get_context(hypergraph)
        self.oracle = oracle if oracle is not None else oracle_for(self.context)
        if guess_strategy not in GUESS_STRATEGIES:
            raise ValueError(
                f"guess_strategy must be one of {sorted(GUESS_STRATEGIES)}"
            )
        self.guess_strategy = guess_strategy
        self._order = GUESS_STRATEGIES[guess_strategy]
        self._memo: dict[Hashable, tuple | None] = {}
        self._edge_names = sorted(hypergraph.edge_names)
        self.states_explored = 0

    # -- hooks ---------------------------------------------------------
    def max_cover_size(self) -> int:
        """The cardinality bound on a guessed cover S (default: k)."""
        return self.k

    def admissible(
        self,
        cover_edges: frozenset,
        component: frozenset,
        frontier: frozenset,
        parent_cover: frozenset,
    ) -> bool:
        """Extra acceptance test for a guessed cover (default: none)."""
        return True

    def state_key(
        self, component: frozenset, parent_cover: frozenset, frontier: frozenset
    ) -> Hashable:
        """Memo key; for plain HDs the frontier summarizes the parent."""
        return (component, frontier)

    def guess_order(self, candidates: list[str], target: frozenset) -> list[str]:
        """Candidate ordering for the configured strategy."""
        return self._order(self, candidates, target)

    # -- search --------------------------------------------------------
    def run(self) -> Decomposition | None:
        """Search for a decomposition of width <= k; None when none exists."""
        hg = self.hypergraph
        if hg.num_vertices == 0:
            raise ValueError("hypergraph has no vertices")
        root = self.context.intern(hg.vertices)
        if not self._solve(root, frozenset()):
            return None
        return self._rebuild()

    def _frontier(self, component: frozenset, parent_cover: frozenset) -> frozenset:
        """``V(R) ∩ ⋃ edges(C_r)``: the parent-cover part seen by C_r."""
        return self.context.frontier(component, parent_cover)

    def _candidate_edges(
        self, component: frozenset, frontier: frozenset
    ) -> list[str]:
        """Edges that can usefully appear in S: those meeting C_r ∪ frontier.

        Normal-form decompositions never need cover edges disjoint from
        the bag, and bags live inside ``B_r ∪ C_r`` — see module docs.
        """
        hg = self.hypergraph
        relevant = component | frontier
        return [e for e in self._edge_names if hg.edge(e) & relevant]

    def _guesses(
        self, component: frozenset, frontier: frozenset, parent_cover: frozenset
    ):
        """All admissible covers S for this state, strategy-ordered."""
        ctx = self.context
        target = component | frontier
        candidates = self.guess_order(
            self._candidate_edges(component, frontier), target
        )
        for size in range(1, self.max_cover_size() + 1):
            for combo in combinations(candidates, size):
                cover = ctx.intern(frozenset(combo))
                covered = ctx.vertices_of(cover)
                if not frontier <= covered:
                    continue
                if not covered & component:
                    continue
                if not self.admissible(cover, component, frontier, parent_cover):
                    continue
                yield cover, covered

    def _solve(self, component: frozenset, parent_cover: frozenset) -> bool:
        frontier = self._frontier(component, parent_cover)
        key = self.state_key(component, parent_cover, frontier)
        if key in self._memo:
            return self._memo[key] is not None
        self._memo[key] = None
        self.states_explored += 1
        ctx = self.context
        for cover, covered in self._guesses(component, frontier, parent_cover):
            child_components = ctx.components_within(
                ctx.intern(component - covered)
            )
            if all(self._solve(child, cover) for child in child_components):
                self._memo[key] = (cover, child_components)
                return True
        return False

    def _rebuild(self) -> Decomposition:
        ctx = self.context
        nodes: list[tuple[str, frozenset, FractionalCover]] = []
        parent: dict[str, str] = {}
        counter = 0

        def build(
            component: frozenset,
            parent_cover: frozenset,
            parent_id: str | None,
            parent_bag: frozenset,
        ) -> None:
            nonlocal counter
            frontier = self._frontier(component, parent_cover)
            entry = self._memo[self.state_key(component, parent_cover, frontier)]
            assert entry is not None
            cover, child_components = entry
            node_id = f"n{counter}"
            counter += 1
            covered = ctx.vertices_of(cover)
            bag = covered & (parent_bag | component)
            nodes.append((node_id, bag, self.node_cover(cover, bag)))
            if parent_id is not None:
                parent[node_id] = parent_id
            for child in child_components:
                build(child, cover, node_id, bag)

        build(ctx.intern(self.hypergraph.vertices), frozenset(), None, frozenset())
        return Decomposition(nodes, parent=parent, root="n0")

    def node_cover(self, cover: frozenset, bag: frozenset) -> FractionalCover:
        """The λ/γ recorded at a witness node (default: all-ones λ = S)."""
        return FractionalCover({e: 1.0 for e in cover})
