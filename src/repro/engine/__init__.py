"""The unified decomposition engine (context → oracle → search).

Shared infrastructure for every width-search algorithm in the library:

* :mod:`repro.engine.context` — per-hypergraph :class:`SearchContext`
  memoizing components, frontiers, incidence closures and the primal
  graph, with frozenset interning;
* :mod:`repro.engine.oracle` — the :class:`CoverOracle`, an LRU-cached
  fractional/integral cover service keyed on ``(bag, allowed_edges)``
  over pluggable LP backends (scipy-HiGHS default, pure-Python simplex
  fallback);
* :mod:`repro.engine.search` — :class:`CheckSearch`, the generic
  Check(X, k) branch-and-bound skeleton that ``HDSearch``, the GHD
  subedge-augmentation path and the FHD search instantiate.

Engine-wide configuration (LP backend, cache size) is process-global and
set via :func:`configure`; the CLI exposes it as ``--backend`` and
``--cache-size``.  Aggregate LP/cache statistics are read via
:func:`stats` and zeroed via :func:`reset_stats` (CLI ``--cache-stats``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .backends import (
    LPBackend,
    PurePythonSimplexBackend,
    ScipyHiGHSBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from .context import SearchContext, clear_context_registry, get_context
from .oracle import (
    DEFAULT_CACHE_SIZE,
    GLOBAL_STATS,
    CoverOracle,
    OracleStats,
    oracle_for,
)
from .search import GUESS_STRATEGIES, CheckSearch

__all__ = [
    "SearchContext",
    "get_context",
    "clear_context_registry",
    "CoverOracle",
    "OracleStats",
    "oracle_for",
    "DEFAULT_CACHE_SIZE",
    "CheckSearch",
    "GUESS_STRATEGIES",
    "LPBackend",
    "ScipyHiGHSBackend",
    "PurePythonSimplexBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend_name",
    "EngineConfig",
    "engine_config",
    "configure",
    "stats",
    "reset_stats",
]


@dataclass
class EngineConfig:
    """Process-global engine settings (see :func:`configure`).

    ``backend`` of None means "library default" (scipy when available,
    else the pure-Python simplex).  ``cache_size`` of 0 disables the
    cover cache — useful for measuring what the cache buys.
    """

    backend: str | None = None
    cache_size: int = DEFAULT_CACHE_SIZE


_CONFIG = EngineConfig()


def engine_config() -> EngineConfig:
    """The live engine configuration object."""
    return _CONFIG


def configure(
    backend: str | None = None, cache_size: int | None = None
) -> EngineConfig:
    """Set process-global engine defaults; returns the config.

    Only the arguments passed are changed (``backend="auto"`` restores
    the library default).  Oracles already handed out keep their
    configuration; new :func:`oracle_for` calls pick up the updated
    defaults.
    """
    if backend is not None:
        if backend == "auto":
            _CONFIG.backend = None
        elif backend not in available_backends():
            raise ValueError(
                f"unknown LP backend {backend!r}; available: "
                f"{available_backends()}"
            )
        else:
            _CONFIG.backend = backend
    if cache_size is not None:
        _CONFIG.cache_size = max(0, int(cache_size))
    return _CONFIG


def stats() -> dict:
    """Aggregate LP-solve and cache statistics across all oracles."""
    return GLOBAL_STATS.as_dict()


def reset_stats() -> None:
    """Zero the aggregate statistics (per-oracle counters are untouched)."""
    GLOBAL_STATS.reset()
