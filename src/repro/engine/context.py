"""Per-hypergraph ``SearchContext``: shared memoization for width searches.

Every Check(HD/GHD/FHD, k) search and every width oracle in this library
spends its inner loop on the same handful of structural queries — the
``[C]``-components of a region, the union of a cover's edges, the set of
edges incident to a component, the frontier a parent cover shows a child
component.  Before the engine existed each algorithm recomputed these from
scratch (and often materialized throwaway induced subhypergraphs to do
so).  A :class:`SearchContext` is created once per hypergraph and memoizes
all of them, so the results are shared *across* algorithms: the HD search
warms the caches the GHD and FHD searches then hit.

Contexts are handed out by :func:`get_context`, which keeps a small LRU
registry keyed by the (immutable, hashable) hypergraph, so independent
call sites computing on the same hypergraph transparently share one
context.

Sharing trades memory for solves: memo tables live as long as their
context, i.e. until the registry's LRU (64 hypergraphs) evicts it.
Long-lived processes that churn through many hard instances should call
:func:`clear_context_registry` between batches (benchmarks do, via
``measure_engine``), and the oracle's LRU is bounded by ``cache_size``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from ..hypergraph import Hypergraph, Vertex
from ..hypergraph.components import components as _components

__all__ = ["SearchContext", "get_context", "clear_context_registry"]

#: How many hypergraphs the global context registry keeps alive.
_REGISTRY_CAPACITY = 64

_EMPTY = frozenset()


class SearchContext:
    """Memoized structural queries for one (immutable) hypergraph.

    The context interns frozensets (so repeated identical components and
    covers share one object and hash once) and caches:

    * ``vertices_of(cover)`` — ``V(S)`` for a set of edge names;
    * ``incident_edges(component)`` — ``edges(C)``;
    * ``frontier(component, parent_cover)`` — the part of the parent's
      cover visible from a component (the ``k-decomp`` interface set);
    * ``components_within(region)`` — the connected components of the
      subhypergraph induced on ``region``, computed directly from the
      incidence structure without building an induced ``Hypergraph``;
    * ``components(separator)`` — the ``[C]``-components of the whole
      hypergraph;
    * ``primal_adjacency`` — the (hypergraph-cached) Gaifman graph.

    All results are immutable, so sharing them across searches is safe.
    """

    __slots__ = (
        "hypergraph",
        "_intern",
        "_vertices_of",
        "_incident",
        "_frontier",
        "_components_within",
        "_components",
        "stats",
        "_oracles",
    )

    def __init__(self, hypergraph: Hypergraph) -> None:
        self.hypergraph = hypergraph
        self._intern: dict[frozenset, frozenset] = {}
        self._vertices_of: dict[frozenset, frozenset] = {}
        self._incident: dict[frozenset, frozenset] = {}
        self._frontier: dict[tuple[frozenset, frozenset], frozenset] = {}
        self._components_within: dict[frozenset, tuple[frozenset, ...]] = {}
        self._components: dict[frozenset, tuple[frozenset, ...]] = {}
        self.stats = {"hits": 0, "misses": 0}
        # CoverOracles attached to this context, keyed by configuration;
        # managed by repro.engine.oracle.oracle_for.
        self._oracles: dict = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, vertex_set: Iterable[Vertex]) -> frozenset:
        """A canonical frozenset equal to ``vertex_set``.

        Components and covers recur constantly during a search; interning
        them means each distinct set hashes once and membership tables
        stay small.
        """
        fs = (
            vertex_set
            if type(vertex_set) is frozenset
            else frozenset(vertex_set)
        )
        return self._intern.setdefault(fs, fs)

    # ------------------------------------------------------------------
    # Memoized structural queries
    # ------------------------------------------------------------------
    def vertices_of(self, cover: frozenset) -> frozenset:
        """``V(S) = ∪ S`` for a frozenset of edge names, memoized."""
        cached = self._vertices_of.get(cover)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        self.stats["misses"] += 1
        result = self.intern(self.hypergraph.vertices_of(cover))
        self._vertices_of[cover] = result
        return result

    def incident_edges(self, component: frozenset) -> frozenset:
        """``edges(C)``: edges meeting the component, memoized."""
        cached = self._incident.get(component)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        self.stats["misses"] += 1
        result = self.hypergraph.incident_edges(component)
        self._incident[component] = result
        return result

    def frontier(self, component: frozenset, parent_cover: frozenset) -> frozenset:
        """``V(R) ∩ ⋃ edges(C_r)``: the parent-cover part seen by C_r."""
        key = (component, parent_cover)
        cached = self._frontier.get(key)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        self.stats["misses"] += 1
        covered = self.vertices_of(parent_cover)
        result = self.intern(
            covered & self.vertices_of(self.incident_edges(component))
        )
        self._frontier[key] = result
        return result

    def components_within(self, region: frozenset) -> tuple[frozenset, ...]:
        """Connected components of the subhypergraph induced on ``region``.

        Equivalent to ``components(H.induced(region), ())``: taking the
        complement of the region as the separator gives exactly the same
        partition — two region vertices are connected iff some edge
        contains both inside the region — without ever materializing an
        induced ``Hypergraph`` in the search hot loop, and through the
        single BFS implementation in :mod:`repro.hypergraph.components`.
        """
        cached = self._components_within.get(region)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        self.stats["misses"] += 1
        result = tuple(
            self.intern(c)
            for c in _components(
                self.hypergraph, self.hypergraph.vertices - region
            )
        )
        self._components_within[region] = result
        return result

    def components(self, separator: Iterable[Vertex] = ()) -> tuple[frozenset, ...]:
        """The ``[C]``-components of the whole hypergraph, memoized."""
        sep = separator if type(separator) is frozenset else frozenset(separator)
        cached = self._components.get(sep)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        self.stats["misses"] += 1
        result = tuple(
            self.intern(c) for c in _components(self.hypergraph, sep)
        )
        self._components[sep] = result
        return result

    @property
    def primal_adjacency(self) -> dict[Vertex, frozenset]:
        """The Gaifman-graph adjacency (cached on the hypergraph)."""
        return self.hypergraph.primal_graph()

    # ------------------------------------------------------------------
    def cache_sizes(self) -> dict[str, int]:
        """Entry counts per memo table (for diagnostics and benchmarks)."""
        return {
            "interned": len(self._intern),
            "vertices_of": len(self._vertices_of),
            "incident_edges": len(self._incident),
            "frontier": len(self._frontier),
            "components_within": len(self._components_within),
            "components": len(self._components),
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_registry: OrderedDict[Hypergraph, SearchContext] = OrderedDict()


def get_context(hypergraph: Hypergraph) -> SearchContext:
    """The shared :class:`SearchContext` for ``hypergraph``.

    Contexts are kept in a bounded LRU registry keyed by the hypergraph
    itself (hashable and immutable, with a cached hash), so equal
    hypergraphs — even ones constructed independently — share one context
    and therefore one set of caches.

    Parameters
    ----------
    hypergraph : Hypergraph
        The instance whose context to fetch or create.

    Returns
    -------
    SearchContext
        The (possibly freshly registered) shared context.
    """
    ctx = _registry.get(hypergraph)
    if ctx is None:
        ctx = SearchContext(hypergraph)
        _registry[hypergraph] = ctx
        while len(_registry) > _REGISTRY_CAPACITY:
            try:
                _registry.popitem(last=False)
            except KeyError:
                break  # concurrently cleared (parallel block solver)
    else:
        try:
            _registry.move_to_end(hypergraph)
        except KeyError:
            _registry[hypergraph] = ctx
    return ctx


def clear_context_registry() -> None:
    """Drop all shared contexts (used by tests and benchmarks)."""
    _registry.clear()
