"""Pluggable LP backends for the cover oracle.

Every covering problem the paper needs (ρ*, τ*, capped covers) has the
shape ``min c·x  s.t.  sum_{j in row} x_j >= 1,  0 <= x <= ub``.  The
engine routes all of them through a backend object so the solver is
swappable:

* :class:`ScipyHiGHSBackend` — the default when scipy is installed;
  delegates to :func:`repro.covers.linear_program.solve_covering_lp`
  (``scipy.optimize.linprog`` with the HiGHS method).
* :class:`PurePythonSimplexBackend` — the dependency-free two-phase
  simplex of :mod:`repro.covers.simplex`.  It keeps the library working
  on slim installs and provides an independent solver to cross-check
  the scipy results against.

Backends register themselves in a name -> factory registry; the CLI's
``--backend`` flag and :func:`repro.engine.configure` select by name.
"""

from __future__ import annotations

from collections.abc import Callable

from ..covers.linear_program import HAVE_SCIPY, CoveringLPResult
from ..covers.simplex import simplex_covering_lp

__all__ = [
    "LPBackend",
    "ScipyHiGHSBackend",
    "PurePythonSimplexBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend_name",
]


class LPBackend:
    """Interface: solve one covering LP.  Subclasses set ``name``."""

    name = "abstract"

    def solve_covering_lp(
        self,
        membership: list[list[int]],
        n_vars: int,
        costs: list[float] | None = None,
        upper_bounds: list[float] | None = None,
    ) -> CoveringLPResult:
        """Solve ``min c·x  s.t.  sum_{j in row} x_j >= 1, 0 <= x <= ub``.

        Parameters
        ----------
        membership : list of list of int
            One row per covering constraint: the variable indices whose
            sum must reach 1.
        n_vars : int
            Number of variables.
        costs : list of float, optional
            Objective coefficients (default: all 1).
        upper_bounds : list of float, optional
            Per-variable upper bounds (default: unbounded above).

        Returns
        -------
        CoveringLPResult
            Optimal value and a primal solution vector.

        Raises
        ------
        NotImplementedError
            On the abstract base class.
        """
        raise NotImplementedError


class ScipyHiGHSBackend(LPBackend):
    """scipy.optimize.linprog (HiGHS) via the covers-layer wrapper."""

    name = "scipy"

    def solve_covering_lp(
        self, membership, n_vars, costs=None, upper_bounds=None
    ) -> CoveringLPResult:
        """Solve the covering LP with scipy's HiGHS method."""
        from ..covers.linear_program import solve_covering_lp

        return solve_covering_lp(
            membership, n_vars, costs=costs, upper_bounds=upper_bounds
        )


class PurePythonSimplexBackend(LPBackend):
    """The dependency-free simplex of :mod:`repro.covers.simplex`."""

    name = "purepython"

    def solve_covering_lp(
        self, membership, n_vars, costs=None, upper_bounds=None
    ) -> CoveringLPResult:
        """Solve the covering LP with the built-in two-phase simplex."""
        return simplex_covering_lp(
            membership, n_vars, costs=costs, upper_bounds=upper_bounds
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, Callable[[], LPBackend]] = {}


def register_backend(name: str, factory: Callable[[], LPBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _BACKENDS[name] = factory


def get_backend(name: str | None = None) -> LPBackend:
    """Instantiate a backend by name (None = library default)."""
    resolved = name or default_backend_name()
    try:
        factory = _BACKENDS[resolved]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {resolved!r}; available: {available_backends()}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_BACKENDS)


def default_backend_name() -> str:
    """``"scipy"`` when scipy is importable, else ``"purepython"``."""
    return "scipy" if HAVE_SCIPY else "purepython"


register_backend("purepython", PurePythonSimplexBackend)
if HAVE_SCIPY:
    register_backend("scipy", ScipyHiGHSBackend)
