"""Reduction layer: inverse-recording simplification rules on hypergraphs.

Real CQ hypergraphs are dominated by structure a width search should
never see: duplicate and subsumed edges, isolated vertices, vertices of
identical edge-type (the paper's Section 5 reduced form ``H^-``) and
degree-1 vertices whose only edge can be re-attached as a leaf.  Each
rule here shrinks the instance and emits an *undo record*; replaying the
records in reverse (:func:`repro.decomposition.stitch.replay_reductions`)
lifts a decomposition of the reduced hypergraph back to a decomposition
of the original one, of the same width (or width 1 for re-attached
leaves, which never dominates since every width is >= 1).

Width-safety is tracked per rule: dropping subsumed edges or eliminating
degree-1 vertices preserves ghw and fhw but **not** hw — the paper's
Section 4 is precisely about hw being sensitive to subedge structure —
so :func:`reduce_instance` takes the target ``kind`` and applies only
the rules proven safe for it:

* ``drop_isolated_vertices``   — hd / ghd / fhd (no bag may contain them)
* ``drop_duplicate_edges``     — hd / ghd / fhd (same content, one name)
* ``fuse_twin_vertices``       — hd / ghd / fhd (identical edge-type, §5)
* ``drop_subsumed_edges``      — ghd / fhd (e ⊊ f: f's bag covers e)
* ``eliminate_degree_one``     — ghd / fhd (leaf node {e} re-attached)

Every stitched decomposition is re-validated against the *original*
hypergraph by the callers, so soundness never rests on this module being
right.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hypergraph import Hypergraph, Vertex

__all__ = [
    "ReducedInstance",
    "reduce_instance",
    "RULES",
    "rules_for",
    "DroppedEdges",
    "DroppedIsolated",
    "FusedTwins",
    "RemovedDegreeOne",
]

#: Decomposition kinds a width query may target.
_KINDS = ("hd", "ghd", "fhd")


# ----------------------------------------------------------------------
# Undo records.  Each record knows how to replay itself onto a mutable
# decomposition tree (see repro.decomposition.stitch.TreeBuilder): the
# replay turns a decomposition valid for the state *after* the rule into
# one valid for the state *before* it.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DroppedIsolated:
    """Isolated vertices removed; no bag may contain them, so no undo."""

    vertices: tuple

    def replay(self, tree) -> None:  # pragma: no cover - trivial
        """No-op: isolated vertices appear in no bag."""
        return None


@dataclass(frozen=True)
class DroppedEdges:
    """Duplicate or subsumed edges dropped.

    The keeper's content contains each dropped edge's content, so the bag
    containing the keeper already covers them: replay is a no-op.
    """

    names: tuple[str, ...]
    keeper: str
    reason: str  # "duplicate" | "subsumed"

    def replay(self, tree) -> None:
        """No-op: the keeper's bag already covers the dropped edges."""
        return None


@dataclass(frozen=True)
class FusedTwins:
    """Vertices of identical edge-type fused into a representative.

    Replay adds the removed twins to every bag containing the
    representative; covers are untouched (every cover edge containing the
    representative contains the twins too), so all of conditions (1)-(4)
    are preserved — this rule is safe even for plain HDs.
    """

    removed: tuple
    representative: Vertex

    def replay(self, tree) -> None:
        """Re-add the fused twins to every bag with the representative."""
        tree.add_to_bags_with(self.representative, self.removed)


@dataclass(frozen=True)
class RemovedDegreeOne:
    """A degree-1 vertex removed from its only edge.

    ``remaining`` is the edge's content right after the removal.  Replay
    attaches a fresh leaf with bag ``remaining ∪ {vertex}`` and cover
    ``{edge: 1}`` below any node whose bag contains ``remaining`` (one
    exists by edge coverage of the reduced instance).
    """

    vertex: Vertex
    edge: str
    remaining: frozenset

    def replay(self, tree) -> None:
        """Re-attach the removed vertex as a fresh width-1 leaf node."""
        anchor = tree.find_node_containing(self.remaining)
        tree.attach_leaf(
            bag=self.remaining | {self.vertex},
            cover={self.edge: 1.0},
            parent_id=anchor,
        )


# ----------------------------------------------------------------------
# Rules.  Each operates on a mutable {name: frozenset} mapping and
# returns the undo records it emitted (empty when it did not fire).
# ----------------------------------------------------------------------
def _drop_isolated_vertices(edges: dict, isolated: set) -> list:
    if not isolated:
        return []
    record = DroppedIsolated(tuple(sorted(isolated, key=str)))
    isolated.clear()
    return [record]


def _drop_duplicate_edges(edges: dict, isolated: set) -> list:
    by_content: dict[frozenset, list[str]] = {}
    for name, vs in edges.items():
        by_content.setdefault(vs, []).append(name)
    records = []
    for names in by_content.values():
        if len(names) < 2:
            continue
        keeper = min(names)
        dropped = tuple(sorted(n for n in names if n != keeper))
        for n in dropped:
            del edges[n]
        records.append(DroppedEdges(dropped, keeper, "duplicate"))
    return records


def _drop_subsumed_edges(edges: dict, isolated: set) -> list:
    """Drop every edge strictly contained in another (run dedup first)."""
    names = sorted(edges, key=lambda n: (len(edges[n]), n))
    records = []
    for name in names:
        content = edges[name]
        keeper = next(
            (
                other
                for other in edges
                if other != name and content < edges[other]
            ),
            None,
        )
        if keeper is not None:
            del edges[name]
            records.append(DroppedEdges((name,), keeper, "subsumed"))
    return records


def _fuse_twin_vertices(edges: dict, isolated: set) -> list:
    by_type: dict[frozenset, list] = {}
    incidence: dict = {}
    for name, vs in edges.items():
        for v in vs:
            incidence.setdefault(v, set()).add(name)
    for v, inc in incidence.items():
        by_type.setdefault(frozenset(inc), []).append(v)
    records = []
    for group in by_type.values():
        if len(group) < 2:
            continue
        rep = min(group, key=str)
        removed = tuple(sorted((v for v in group if v != rep), key=str))
        gone = set(removed)
        for name in incidence[rep]:
            edges[name] = edges[name] - gone
        records.append(FusedTwins(removed, rep))
    return records


def _eliminate_degree_one(edges: dict, isolated: set) -> list:
    incidence: dict = {}
    for name, vs in edges.items():
        for v in vs:
            incidence.setdefault(v, set()).add(name)
    records = []
    for v in sorted(incidence, key=str):
        inc = incidence[v]
        if len(inc) != 1:
            continue
        (name,) = inc
        if len(edges[name]) < 2:
            continue  # never empty an edge; singleton blocks solve trivially
        edges[name] = edges[name] - {v}
        records.append(RemovedDegreeOne(v, name, edges[name]))
    return records


#: Rule registry: name -> (apply, kinds the rule provably preserves).
RULES: dict[str, tuple] = {
    "isolated": (_drop_isolated_vertices, frozenset(_KINDS)),
    "duplicate-edges": (_drop_duplicate_edges, frozenset(_KINDS)),
    "twin-vertices": (_fuse_twin_vertices, frozenset(_KINDS)),
    "subsumed-edges": (_drop_subsumed_edges, frozenset({"ghd", "fhd"})),
    "degree-one": (_eliminate_degree_one, frozenset({"ghd", "fhd"})),
}


def rules_for(kind: str) -> list[str]:
    """Names of the rules that preserve the given decomposition kind."""
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}")
    return [name for name, (_fn, safe) in RULES.items() if kind in safe]


@dataclass
class ReducedInstance:
    """The outcome of :func:`reduce_instance`.

    ``undo`` lists the records in application order; replay them in
    reverse to lift a decomposition of ``hypergraph`` back to one of
    ``original``.
    """

    original: Hypergraph
    hypergraph: Hypergraph
    undo: tuple = ()
    rule_counts: dict = field(default_factory=dict)
    passes: int = 0

    @property
    def vertices_removed(self) -> int:
        """How many vertices the reduction eliminated."""
        return self.original.num_vertices - self.hypergraph.num_vertices

    @property
    def edges_removed(self) -> int:
        """How many edges the reduction eliminated."""
        return self.original.num_edges - self.hypergraph.num_edges

    @property
    def changed(self) -> bool:
        """Whether any rule fired (False means ``hypergraph is original``)."""
        return bool(self.undo)


def reduce_instance(
    hypergraph: Hypergraph,
    kind: str = "ghd",
    rules: list[str] | None = None,
) -> ReducedInstance:
    """Apply the kind-safe reduction rules to a fixpoint.

    Parameters
    ----------
    hypergraph : Hypergraph
        The instance to simplify.
    kind : str, optional
        Target decomposition kind (``"hd"``, ``"ghd"``, ``"fhd"``;
        default ``"ghd"``) — only the rules proven width-safe for it
        are applied.
    rules : list of str, optional
        Restrict to a subset of :data:`RULES` by name (still filtered
        by kind-safety).

    Returns
    -------
    ReducedInstance
        The reduced hypergraph plus the undo records that lift a
        decomposition of it back to one of the input.  Edge names are
        preserved — undo records refer to them — and ``result.hypergraph
        is hypergraph`` when nothing fired.

    Raises
    ------
    ValueError
        If ``kind`` is unknown or ``rules`` names an unknown rule.
    """
    selected = rules_for(kind)
    if rules is not None:
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            raise ValueError(f"unknown rules {unknown}; known: {sorted(RULES)}")
        selected = [r for r in selected if r in rules]

    edges: dict[str, frozenset] = dict(hypergraph.edges)
    isolated: set = set(hypergraph.isolated_vertices())
    undo: list = []
    counts: dict[str, int] = {}
    passes = 0
    # Every firing strictly shrinks |V| + size(E) (or clears the isolated
    # set once), so the fixpoint is reached within size(H) passes.
    budget = hypergraph.size + len(isolated) + 2
    changed = True
    while changed:
        changed = False
        passes += 1
        if passes > budget:  # pragma: no cover - safety net
            raise RuntimeError("reduction did not reach a fixpoint (bug)")
        for name in selected:
            fn, _safe = RULES[name]
            records = fn(edges, isolated)
            if records:
                changed = True
                counts[name] = counts.get(name, 0) + len(records)
                undo.extend(records)

    if not undo:
        return ReducedInstance(hypergraph, hypergraph, (), counts, passes)
    reduced = Hypergraph(
        edges,
        vertices=isolated,
        name=f"{hypergraph.name}^-" if hypergraph.name else None,
    )
    return ReducedInstance(hypergraph, reduced, tuple(undo), counts, passes)
