"""Bounds pre-pass: cheap per-block bounds that collapse the k-search.

The exact ``Check(X, k)`` solves are the expensive part of every width
query; the structural bounds around them are near-linear.  This layer
runs, per block, an **ordering portfolio** — min-degree, min-fill, and
seeded randomized-tiebreak restarts from
:func:`repro.algorithms.heuristics.portfolio_orderings`, each finished
with the measure-specific cover (integral for hw/ghw, fractional for
fhw) — together with the clique **lower bound** of Lemma 2.8, and
returns a :class:`BlockBounds` record per block.

Schedulers consume the record through :func:`seeded_block_state`: the
pre-seeded :class:`~repro.pipeline.solve.BlockState` starts the search
at the lower bound (every smaller k is recorded as rejected without a
solve), carries the portfolio witness as an accepted result at the
upper bound (so ``BlockState.ceiling()`` prunes all speculation above
it), and — when the bounds meet — settles instantly, skipping the
exact engine entirely.  The witness doubles as an **anytime answer**:
a valid decomposition is in hand before the first exact check runs.

Soundness: every portfolio witness is re-validated for the query's
kind before it is trusted (elimination orderings do not in general
satisfy the HD special condition, so hd candidates that fail
validation are discarded and only the lower bound applies), and the
integral clique cover number lower-bounds ghw and hence hw, while the
fractional one lower-bounds fhw.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..decomposition import Decomposition, validate
from ..hypergraph import Hypergraph
from .solve import BlockState

__all__ = [
    "BOUNDS_MODES",
    "BlockBounds",
    "compute_block_bounds",
    "seeded_block_state",
]

#: Valid ``bounds=`` arguments for every solver in the pipeline, in
#: decreasing order of work done: ``"portfolio"`` (ordering portfolio
#: upper bound + clique lower bound, the default), ``"clique"`` (lower
#: bound only), ``"none"`` (no pre-pass; the pre-bounds behaviour).
#: The CLI ``--bounds`` flag and the docs document exactly this tuple
#: (``tests/test_docs.py`` pins the agreement).
BOUNDS_MODES = ("portfolio", "clique", "none")

_EPS = 1e-9


@dataclass(frozen=True)
class BlockBounds:
    """Pre-pass verdict for one block: ``lower <= width <= upper``.

    Attributes
    ----------
    kind : str
        Decomposition kind the bounds (and witness) are valid for.
    lower : float
        Sound lower bound on the block's width (>= 1).
    upper : float
        Width of the best validated portfolio witness, or ``inf`` when
        no candidate validated (always the case in ``"clique"`` mode).
    witness : Decomposition or None
        The validated decomposition achieving ``upper``.
    orderings : int
        Portfolio orderings evaluated before stopping.
    seconds : float
        Wall-clock spent on this block's pre-pass.
    """

    kind: str
    lower: float = 1.0
    upper: float = math.inf
    witness: Decomposition | None = None
    orderings: int = 0
    seconds: float = 0.0

    @property
    def lower_k(self) -> int:
        """Smallest integer k the exact search still has to check."""
        return max(1, math.ceil(self.lower - _EPS))

    @property
    def upper_k(self) -> int | None:
        """Integer k at which the witness accepts, or None without one."""
        if self.witness is None:
            return None
        return max(1, math.ceil(self.upper - _EPS))

    @property
    def decided(self) -> bool:
        """Whether the bounds meet: the witness is already optimal."""
        return self.witness is not None and self.lower >= self.upper - _EPS


def compute_block_bounds(
    hypergraph: Hypergraph,
    kind: str,
    mode: str = "portfolio",
    restarts: int | None = None,
    seed: int = 0,
) -> BlockBounds:
    """Run the bounds pre-pass on one block.

    Parameters
    ----------
    hypergraph : Hypergraph
        The block to bound.
    kind : str
        Decomposition kind (``"hd"``, ``"ghd"`` or ``"fhd"``): selects
        the cover measure (fractional for fhd, integral otherwise) and
        the validation every witness candidate must pass.
    mode : str, optional
        One of :data:`BOUNDS_MODES` (default ``"portfolio"``).
    restarts : int, optional
        Randomized-tiebreak restarts on top of the two classics
        (default :data:`repro.algorithms.heuristics.DEFAULT_RESTARTS`).
    seed : int, optional
        Seed for the restart tiebreaks (deterministic per seed).

    Returns
    -------
    BlockBounds
        The bounds record; trivial (``lower=1, upper=inf``) in
        ``"none"`` mode or on an edgeless block.

    Raises
    ------
    ValueError
        If ``mode`` is not one of :data:`BOUNDS_MODES` or ``kind`` is
        not a known decomposition kind.
    """
    if mode not in BOUNDS_MODES:
        raise ValueError(f"bounds must be one of {BOUNDS_MODES}, got {mode!r}")
    if kind not in ("hd", "ghd", "fhd"):
        raise ValueError(f"kind must be 'hd', 'ghd' or 'fhd', got {kind!r}")
    if mode == "none" or hypergraph.num_edges == 0:
        return BlockBounds(kind=kind)
    # Lazy algorithm imports keep the pipeline package import-cycle
    # free, mirroring the solver registry in .solve.
    from ..algorithms.heuristics import (
        DEFAULT_RESTARTS,
        clique_lower_bound,
        evaluate_ordering,
        portfolio_orderings,
    )
    from ..engine import oracle_for

    t0 = time.perf_counter()
    cost = "fractional" if kind == "fhd" else "integral"
    oracle = oracle_for(hypergraph)
    lower = max(1.0, clique_lower_bound(hypergraph, cost=cost, oracle=oracle))
    upper = math.inf
    witness: Decomposition | None = None
    orderings = 0
    if mode == "portfolio":
        if restarts is None:
            restarts = DEFAULT_RESTARTS
        for _name, order in portfolio_orderings(
            hypergraph, restarts=restarts, seed=seed
        ):
            orderings += 1
            width, candidate = evaluate_ordering(
                hypergraph, order, cost=cost, oracle=oracle
            )
            if width >= upper:
                continue
            try:
                # Elimination orderings do not in general satisfy the
                # HD special condition — only validated candidates may
                # seed the search.
                validate(hypergraph, candidate, kind=kind, width=width + _EPS)
            except ValueError:
                continue
            upper, witness = width, candidate
            if lower >= upper - _EPS:
                break  # bounds met: the witness is optimal
    return BlockBounds(
        kind=kind,
        lower=lower,
        upper=upper,
        witness=witness,
        orderings=orderings,
        seconds=time.perf_counter() - t0,
    )


def seeded_block_state(bounds: BlockBounds | None, cap: int) -> BlockState:
    """A :class:`BlockState` pre-seeded from one block's bounds.

    Every k below the lower bound is recorded as a rejection (sound:
    the block's width is >= ``bounds.lower``), and the portfolio
    witness — when it fits under ``cap`` — as an accepted result at
    its width, so the existing ``settle()``/``ceiling()`` machinery
    prunes the search without any scheduler-side special cases:

    * the serial and parallel k-loops start at ``bounds.lower_k``;
    * speculation above the witness never submits
      (``ceiling() <= upper_k - 1``);
    * when the bounds meet, the state settles immediately and no exact
      check runs at all;
    * when even the lower bound exceeds ``cap``, every k is seeded
      rejected and the scheduler raises its usual cap-exhausted error.

    ``bounds=None`` (mode ``"none"``) returns a fresh state.
    """
    state = BlockState()
    if bounds is None:
        return state
    lower_k = bounds.lower_k
    for k in range(1, min(lower_k, cap + 2)):
        state.results[k] = None
    state.next_k = lower_k
    upper_k = bounds.upper_k
    if upper_k is not None and lower_k <= upper_k <= cap:
        state.results[upper_k] = bounds.witness
    state.settle()
    return state
