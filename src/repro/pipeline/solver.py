"""The ``WidthSolver`` facade: reduce → split → solve → stitch.

Every public width entry point of the library routes through this class
(``preprocess="none"`` is the escape hatch back to the raw algorithms).
A query runs in four stages, each timed and counted in
:class:`PipelineStats`:

1. **reduce** — kind-safe simplification rules with undo records
   (:mod:`repro.pipeline.reduce`);
2. **split** — biconnected blocks of the primal graph for ghw/fhw,
   connected components for hw (:mod:`repro.pipeline.split`);
3. **solve** — any registered per-block algorithm, serially or on a
   thread/process pool with cross-block and cross-k speculation
   (:mod:`repro.pipeline.solve`);
4. **stitch** — per-block witnesses joined along the block-cut forest
   and reduction undos replayed (:mod:`repro.decomposition.stitch`),
   then re-validated against the *original* hypergraph.

The stitched width is ``max(1, max over blocks)``: every width measure
is >= 1 on a non-empty hypergraph and re-attached degree-1 leaves cost
exactly 1, so the pipeline answer equals the direct answer — the
property tests in ``tests/test_pipeline.py`` pin this agreement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..decomposition import (
    Decomposition,
    replay_reductions,
    stitch_blocks,
    validate,
)
from ..hypergraph import Hypergraph
from .bounds import BOUNDS_MODES, BlockBounds, compute_block_bounds, seeded_block_state
from .reduce import ReducedInstance, reduce_instance
from .solve import (
    CAP_MESSAGES,
    SOLVER_MODES,
    BlockScheduler,
    engines_for,
    iterative_width_search,
)
from .split import Block, split_instance

__all__ = [
    "WidthSolver",
    "PipelineStats",
    "solve_width",
    "last_pipeline_stats",
    "prepare_instance",
    "stitch_instance",
    "split_mode_for",
    "PREPROCESS_MODES",
]

#: Valid ``preprocess=`` arguments, in decreasing order of work done.
#: The CLI ``--preprocess`` flag and the README document exactly this
#: tuple (``tests/test_docs.py`` pins the agreement).
PREPROCESS_MODES = ("full", "reduce", "split", "none")

#: The stats of the most recent pipeline run in this process, for
#: callers (CLI ``--pipeline-stats``, benchmark tables) that go through
#: the plain entry-point functions rather than holding a WidthSolver.
_LAST_STATS = None


def last_pipeline_stats():
    """The :class:`PipelineStats` of the most recent run, or None.

    Returns
    -------
    PipelineStats or None
        Statistics of the last :class:`WidthSolver` query completed in
        this process, or None when no pipeline run has happened yet.
    """
    return _LAST_STATS

_EPS = 1e-9


def split_mode_for(kind: str, preprocess: str) -> str:
    """The split mode the pipeline uses for a decomposition kind.

    Parameters
    ----------
    kind : str
        Decomposition kind: ``"hd"``, ``"ghd"`` or ``"fhd"``.
    preprocess : str
        One of :data:`PREPROCESS_MODES`.

    Returns
    -------
    str
        ``"none"`` when the preprocess mode skips splitting,
        ``"components"`` for hw (re-rooting block HDs can break the
        special condition), ``"biconnected"`` for ghw/fhw.
    """
    if preprocess in ("none", "reduce"):
        return "none"
    return "components" if kind == "hd" else "biconnected"


def prepare_instance(
    hypergraph: Hypergraph, kind: str, preprocess: str = "full"
) -> tuple[ReducedInstance, list[Block]]:
    """Run the reduce and split stages for one instance.

    This is the front half of the pipeline, shared by
    :class:`WidthSolver` (one instance per call) and the batch scheduler
    in :mod:`repro.pipeline.batch` (all instances up front).

    Parameters
    ----------
    hypergraph : Hypergraph
        The instance to prepare.
    kind : str
        Decomposition kind (``"hd"``, ``"ghd"``, ``"fhd"``); gates
        which reduction rules and which split mode are safe.
    preprocess : str, optional
        One of :data:`PREPROCESS_MODES` (default ``"full"``).

    Returns
    -------
    (ReducedInstance, list of Block)
        The reduction outcome (with its undo records) and the solvable
        blocks of the reduced hypergraph.

    Raises
    ------
    ValueError
        If ``preprocess`` is not one of :data:`PREPROCESS_MODES`.
    """
    if preprocess not in PREPROCESS_MODES:
        raise ValueError(f"preprocess must be one of {PREPROCESS_MODES}")
    if preprocess in ("full", "reduce"):
        reduced = reduce_instance(hypergraph, kind=kind)
    else:
        reduced = ReducedInstance(hypergraph, hypergraph)
    blocks = split_instance(
        reduced.hypergraph, split_mode_for(kind, preprocess)
    )
    return reduced, blocks


def stitch_instance(
    original: Hypergraph,
    reduced: ReducedInstance,
    blocks: list[Block],
    witnesses: list[Decomposition],
    kind: str,
    width: float | None = None,
) -> Decomposition:
    """Join per-block witnesses and lift them back to the original.

    The back half of the pipeline, shared by :class:`WidthSolver` and
    the batch scheduler: re-root and join the block decompositions
    along the block-cut forest, replay the reduction undo records, and
    re-validate the result against the *original* hypergraph, so
    soundness never rests on the reduce/split layers being right.

    Parameters
    ----------
    original : Hypergraph
        The unreduced input instance to validate against.
    reduced : ReducedInstance
        The reduction outcome whose undo records are replayed.
    blocks : list of Block
        The blocks, parallel to ``witnesses``.
    witnesses : list of Decomposition
        One validated decomposition per block.
    kind : str
        Decomposition kind to validate as (``"hd"``/``"ghd"``/``"fhd"``).
    width : float, optional
        Width bound passed to the validator (None skips the check).

    Returns
    -------
    Decomposition
        A validated decomposition of ``original``.

    Raises
    ------
    ValueError
        If the stitched decomposition fails validation (a pipeline bug).
    """
    stitched = stitch_blocks(
        [
            (witness, block.parent, block.cut_vertex)
            for block, witness in zip(blocks, witnesses)
        ]
    )
    final = replay_reductions(stitched, reduced.undo)
    validate(original, final, kind=kind, width=width)
    return final


@dataclass
class PipelineStats:
    """Per-stage statistics of one pipeline run."""

    kind: str = ""
    preprocess: str = "full"
    jobs: int = 1
    reduce_seconds: float = 0.0
    split_seconds: float = 0.0
    solve_seconds: float = 0.0
    stitch_seconds: float = 0.0
    vertices_before: int = 0
    edges_before: int = 0
    vertices_removed: int = 0
    edges_removed: int = 0
    rule_counts: dict = field(default_factory=dict)
    blocks: int = 1
    block_sizes: list = field(default_factory=list)  # (|V|, |E|) per block
    tasks_run: int = 0
    speculative_checks: int = 0
    tasks_cancelled: int = 0
    bounds: str = "none"
    bounds_seconds: float = 0.0
    bounds_ks_pruned: int = 0
    bounds_checks_avoided: int = 0
    bounds_blocks_decided: int = 0
    anytime_width: float | None = None

    @property
    def total_seconds(self) -> float:
        """Wall-clock summed over the pipeline stages (incl. bounds)."""
        return (
            self.reduce_seconds
            + self.split_seconds
            + self.bounds_seconds
            + self.solve_seconds
            + self.stitch_seconds
        )

    def as_dict(self) -> dict:
        """The statistics as a JSON-ready dictionary."""
        return {
            "kind": self.kind,
            "preprocess": self.preprocess,
            "jobs": self.jobs,
            "vertices_removed": self.vertices_removed,
            "edges_removed": self.edges_removed,
            "rule_counts": dict(self.rule_counts),
            "blocks": self.blocks,
            "block_sizes": list(self.block_sizes),
            "tasks_run": self.tasks_run,
            "speculative_checks": self.speculative_checks,
            "tasks_cancelled": self.tasks_cancelled,
            "bounds": self.bounds,
            "bounds_ks_pruned": self.bounds_ks_pruned,
            "bounds_checks_avoided": self.bounds_checks_avoided,
            "bounds_blocks_decided": self.bounds_blocks_decided,
            "anytime_width": self.anytime_width,
            "reduce_seconds": self.reduce_seconds,
            "split_seconds": self.split_seconds,
            "bounds_seconds": self.bounds_seconds,
            "solve_seconds": self.solve_seconds,
            "stitch_seconds": self.stitch_seconds,
            "total_seconds": self.total_seconds,
        }


class WidthSolver:
    """One hypergraph, every width query, one preprocessing discipline.

    Parameters
    ----------
    hypergraph:
        The instance to decompose.
    preprocess:
        ``"full"`` (reduce + split, the default), ``"reduce"``,
        ``"split"``, or ``"none"`` (raw algorithms, bit-for-bit the
        pre-pipeline behaviour).
    jobs:
        Worker count for cross-block / cross-k parallelism (None or 1 =
        serial).
    executor:
        ``"thread"`` (default; shares engine caches) or ``"process"``
        (GIL-free, cold caches per worker).
    solver:
        Engine-selection mode for the Check(X, k) queries, one of
        :data:`repro.pipeline.solve.SOLVER_MODES`: ``"bb"`` (default,
        branch-and-bound), ``"sat"`` (the CNF engine in
        :mod:`repro.sat`), or ``"portfolio"`` (race both per
        ``(block, k)`` task; the loser is cancelled and counted in
        ``last_stats.tasks_cancelled``).  Oracle/heuristic queries are
        unaffected.
    bounds:
        Bounds pre-pass mode, one of
        :data:`repro.pipeline.bounds.BOUNDS_MODES`: ``"portfolio"``
        (default; per-block ordering-portfolio upper bound + clique
        lower bound, seeding every exact search), ``"clique"`` (lower
        bound only), or ``"none"`` (no pre-pass — the pre-bounds
        behaviour).  The pre-pass only prunes which exact checks run;
        answers are identical in every mode.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        preprocess: str = "full",
        jobs: int | None = None,
        executor: str = "thread",
        solver: str = "bb",
        bounds: str = "portfolio",
    ) -> None:
        if preprocess not in PREPROCESS_MODES:
            raise ValueError(f"preprocess must be one of {PREPROCESS_MODES}")
        if solver not in SOLVER_MODES:
            raise ValueError(f"solver must be one of {SOLVER_MODES}")
        if bounds not in BOUNDS_MODES:
            raise ValueError(f"bounds must be one of {BOUNDS_MODES}")
        self.hypergraph = hypergraph
        self.preprocess = preprocess
        self.jobs = max(1, int(jobs or 1))
        self.executor = executor
        self.solver = solver
        self.bounds = bounds
        self.last_stats: PipelineStats | None = None

    # ------------------------------------------------------------------
    # Stage plumbing
    # ------------------------------------------------------------------
    def _prepare(
        self, kind: str
    ) -> tuple[ReducedInstance, list[Block], BlockScheduler, PipelineStats]:
        stats = PipelineStats(
            kind=kind,
            preprocess=self.preprocess,
            jobs=self.jobs,
            vertices_before=self.hypergraph.num_vertices,
            edges_before=self.hypergraph.num_edges,
        )
        t0 = time.perf_counter()
        if self.preprocess in ("full", "reduce"):
            reduced = reduce_instance(self.hypergraph, kind=kind)
        else:
            reduced = ReducedInstance(self.hypergraph, self.hypergraph)
        t1 = time.perf_counter()
        blocks = split_instance(
            reduced.hypergraph, split_mode_for(kind, self.preprocess)
        )
        t2 = time.perf_counter()
        stats.reduce_seconds = t1 - t0
        stats.split_seconds = t2 - t1
        stats.vertices_removed = reduced.vertices_removed
        stats.edges_removed = reduced.edges_removed
        stats.rule_counts = dict(reduced.rule_counts)
        stats.blocks = len(blocks)
        stats.block_sizes = [
            (b.hypergraph.num_vertices, b.hypergraph.num_edges) for b in blocks
        ]
        scheduler = BlockScheduler(jobs=self.jobs, executor=self.executor)
        return reduced, blocks, scheduler, stats

    def _stitch(
        self,
        reduced: ReducedInstance,
        blocks: list[Block],
        witnesses: list[Decomposition],
        stats: PipelineStats,
        kind: str,
        width: float | None,
    ) -> Decomposition:
        t0 = time.perf_counter()
        final = stitch_instance(
            self.hypergraph, reduced, blocks, witnesses, kind, width
        )
        stats.stitch_seconds = time.perf_counter() - t0
        return final

    def _finish(self, stats: PipelineStats, scheduler: BlockScheduler) -> None:
        global _LAST_STATS
        stats.tasks_run = scheduler.tasks_run
        stats.speculative_checks = scheduler.speculative_checks
        stats.tasks_cancelled = scheduler.tasks_cancelled
        self.last_stats = stats
        _LAST_STATS = stats

    def _solve_each(
        self,
        solver: str,
        blocks: list[Block],
        scheduler: BlockScheduler,
        stats: PipelineStats,
        params: dict,
        stop_on_none: bool = False,
        engines: tuple[str, ...] | None = None,
    ) -> list:
        t0 = time.perf_counter()
        results = scheduler.map(
            [(solver, block.hypergraph, dict(params)) for block in blocks],
            stop_on_none=stop_on_none,
            engines=engines,
        )
        stats.solve_seconds += time.perf_counter() - t0
        return results

    def _bounds_pass(
        self, kind: str, blocks: list[Block], stats: PipelineStats
    ) -> list[BlockBounds] | None:
        """Bound every block before the exact stage; None in mode "none".

        Fills the bounds fields of ``stats``, including the **anytime
        answer**: when every block produced a portfolio witness, their
        stitched width (``max(1, max block uppers)``) is available as
        ``stats.anytime_width`` before any exact check runs.
        """
        stats.bounds = self.bounds
        if self.bounds == "none":
            return None
        t0 = time.perf_counter()
        bounds_list = [
            compute_block_bounds(block.hypergraph, kind, mode=self.bounds)
            for block in blocks
        ]
        stats.bounds_seconds = time.perf_counter() - t0
        if bounds_list and all(b.witness is not None for b in bounds_list):
            stats.anytime_width = max(1.0, *(b.upper for b in bounds_list))
        return bounds_list

    # ------------------------------------------------------------------
    # Check(X, k) queries
    # ------------------------------------------------------------------
    def _check(
        self, kind: str, solver: str, k, params: dict
    ) -> Decomposition | None:
        reduced, blocks, scheduler, stats = self._prepare(kind)
        bounds_list = self._bounds_pass(kind, blocks, stats)
        witnesses: list = [None] * len(blocks)
        pending = list(range(len(blocks)))
        if bounds_list is not None:
            if any(b.lower > k + _EPS for b in bounds_list):
                # Some block's width provably exceeds k: reject without
                # a single exact solve.
                stats.bounds_checks_avoided += len(blocks)
                self._finish(stats, scheduler)
                return None
            # A validated portfolio witness at width <= k answers a
            # block's check outright.  Restricted to the complete
            # checks (hd/ghd without enumeration caps): the capped and
            # bounded-degree variants may *intentionally* reject
            # instances a better witness would accept, and the pre-pass
            # must never change an answer.
            if kind in ("hd", "ghd") and set(params) <= {"method"}:
                pending = []
                for i, b in enumerate(bounds_list):
                    if b.witness is not None and b.upper <= k + _EPS:
                        witnesses[i] = b.witness
                        stats.bounds_checks_avoided += 1
                    else:
                        pending.append(i)
        if pending:
            solved = self._solve_each(
                solver,
                [blocks[i] for i in pending],
                scheduler,
                stats,
                {"k": k, **params},
                stop_on_none=True,  # one rejecting block decides the answer
                engines=engines_for(solver, self.solver),
            )
            for i, witness in zip(pending, solved):
                witnesses[i] = witness
        if any(w is None for w in witnesses):
            self._finish(stats, scheduler)
            return None
        final = self._stitch(
            reduced, blocks, witnesses, stats, kind, width=k + _EPS
        )
        self._finish(stats, scheduler)
        return final

    def hypertree_decomposition(self, k: int) -> Decomposition | None:
        """Check(HD, k) with preprocessing; None when hw(H) > k."""
        if k < 1:
            raise ValueError("width bound k must be >= 1")
        return self._check("hd", "check-hd", k, {})

    def generalized_hypertree_decomposition(
        self, k: int, method: str = "fixpoint", **caps
    ) -> Decomposition | None:
        """Check(GHD, k) with preprocessing; None when ghw(H) > k."""
        return self._check(
            "ghd", "check-ghd", k, {"method": method, **caps}
        )

    def fractional_hypertree_decomposition_bounded_degree(
        self, k: float, d: int | None = None, **caps
    ) -> Decomposition | None:
        """Check(FHD, k) under bounded degree (Theorem 5.2), preprocessed.

        ``d`` defaults per block to the block's own degree, which never
        exceeds the input's — smaller supports, smaller searches.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        params: dict = dict(caps)
        if d is not None:
            params["d"] = d
        return self._check("fhd", "check-fhd-bd", k, params)

    # ------------------------------------------------------------------
    # Width searches (iterate k per block)
    # ------------------------------------------------------------------
    def _iterative_width(
        self,
        kind: str,
        solver: str,
        kmax: int | None,
        params: dict,
        cap_message: str,
    ) -> tuple[int, Decomposition]:
        reduced, blocks, scheduler, stats = self._prepare(kind)
        caps = [
            block.hypergraph.num_edges if kmax is None else kmax
            for block in blocks
        ]
        bounds_list = self._bounds_pass(kind, blocks, stats)
        states = None
        if bounds_list is not None:
            states = [
                seeded_block_state(b, cap)
                for b, cap in zip(bounds_list, caps)
            ]
            for b, cap, state in zip(bounds_list, caps, states):
                below = min(b.lower_k - 1, cap)
                stats.bounds_ks_pruned += max(0, below)
                stats.bounds_checks_avoided += max(0, below)
                if b.upper_k is not None and b.upper_k <= cap:
                    stats.bounds_ks_pruned += cap - b.upper_k + 1
                if state.width is not None:
                    stats.bounds_blocks_decided += 1
                    stats.bounds_checks_avoided += 1
        t0 = time.perf_counter()
        results = iterative_width_search(
            solver,
            [block.hypergraph for block in blocks],
            caps,
            scheduler,
            params=params,
            cap_message=cap_message,
            engines=engines_for(solver, self.solver),
            states=states,
        )
        stats.solve_seconds = time.perf_counter() - t0
        width = max(1, *(k for k, _w in results)) if results else 1
        final = self._stitch(
            reduced,
            blocks,
            [witness for _k, witness in results],
            stats,
            kind,
            width=width + _EPS,
        )
        self._finish(stats, scheduler)
        return width, final

    def hypertree_width(self, kmax: int | None = None) -> tuple[int, Decomposition]:
        """``hw(H)`` with a validated witness HD."""
        return self._iterative_width(
            "hd", "check-hd", kmax, {}, CAP_MESSAGES["hw"]
        )

    def generalized_hypertree_width(
        self, kmax: int | None = None, method: str = "fixpoint", **caps
    ) -> tuple[int, Decomposition]:
        """``ghw(H)`` with a validated witness GHD."""
        return self._iterative_width(
            "ghd",
            "check-ghd",
            kmax,
            {"method": method, **caps},
            CAP_MESSAGES["ghw"],
        )

    # ------------------------------------------------------------------
    # Exact elimination oracles (per-block 2^n DP)
    # ------------------------------------------------------------------
    def _exact_width(
        self, kind: str, solver: str, cast, vertex_limit: int | None
    ) -> tuple[int | float, Decomposition]:
        """Shared driver of the per-block exact elimination oracles.

        Blocks the bounds pre-pass *decided* (clique lower bound meets
        a validated portfolio witness) skip the 2^n DP entirely — the
        witness is already optimal for that block.
        """
        params = {} if vertex_limit is None else {"vertex_limit": vertex_limit}
        reduced, blocks, scheduler, stats = self._prepare(kind)
        bounds_list = self._bounds_pass(kind, blocks, stats)
        results: list = [None] * len(blocks)
        pending = list(range(len(blocks)))
        if bounds_list is not None:
            pending = []
            for i, b in enumerate(bounds_list):
                if b.decided:
                    results[i] = (b.upper, b.witness)
                    stats.bounds_blocks_decided += 1
                    stats.bounds_checks_avoided += 1
                else:
                    pending.append(i)
        if pending:
            solved = self._solve_each(
                solver, [blocks[i] for i in pending], scheduler, stats, params
            )
            for i, result in zip(pending, solved):
                results[i] = result
        width = max(cast(1), *(cast(k) for k, _w in results)) if results else cast(1)
        final = self._stitch(
            reduced,
            blocks,
            [w for _k, w in results],
            stats,
            kind,
            width=width + _EPS,
        )
        self._finish(stats, scheduler)
        return width, final

    def generalized_hypertree_width_exact(
        self, vertex_limit: int | None = None
    ) -> tuple[int, Decomposition]:
        """Exact ``ghw(H)``; the 2^n limit applies *per block*."""
        return self._exact_width("ghd", "ghw-exact", int, vertex_limit)

    def fractional_hypertree_width_exact(
        self, vertex_limit: int | None = None
    ) -> tuple[float, Decomposition]:
        """Exact ``fhw(H)``; the 2^n limit applies *per block*."""
        return self._exact_width("fhd", "fhw-exact", float, vertex_limit)

    # ------------------------------------------------------------------
    # Heuristic and approximation drivers
    # ------------------------------------------------------------------
    def heuristic_decomposition(
        self, cost: str = "fractional", ordering: str = "min-fill"
    ) -> tuple[float, Decomposition]:
        """Per-block heuristic elimination decomposition, stitched."""
        kind = "fhd" if cost == "fractional" else "ghd"
        reduced, blocks, scheduler, stats = self._prepare(kind)
        results = self._solve_each(
            "heuristic-decomposition",
            blocks,
            scheduler,
            stats,
            {"cost": cost, "ordering": ordering},
        )
        width = max(1.0, *(float(w) for w, _d in results)) if results else 1.0
        final = self._stitch(
            reduced,
            blocks,
            [d for _w, d in results],
            stats,
            kind,
            width=width + _EPS,
        )
        self._finish(stats, scheduler)
        return final.width(), final

    def width_bounds(
        self, cost: str = "fractional"
    ) -> tuple[float, float, Decomposition]:
        """``(lower, upper, witness)``: the heuristic sandwich, blockwise.

        The lower bound is the max of the block lower bounds (each block
        is width-preserving, so this stays sound); the stitched witness
        achieves the upper bound.
        """
        kind = "fhd" if cost == "fractional" else "ghd"
        reduced, blocks, scheduler, stats = self._prepare(kind)
        results = self._solve_each(
            "heuristic-bounds", blocks, scheduler, stats, {"cost": cost}
        )
        lower = max(1.0, *(low for low, _u, _d in results)) if results else 1.0
        upper = max(1.0, *(up for _l, up, _d in results)) if results else 1.0
        final = self._stitch(
            reduced,
            blocks,
            [d for _l, _u, d in results],
            stats,
            kind,
            width=upper + _EPS,
        )
        self._finish(stats, scheduler)
        return lower, final.width(), final

    def fhw_approximation(self, K: float, eps: float, find_fhd=None):
        """Algorithm 4 (the PTAAS of Theorem 6.20), run per block.

        Each block's binary search runs independently (in parallel with
        ``jobs``); the stitched FHD has width ``max(1, max block
        widths) < fhw(H) + ε`` whenever ``fhw(H) <= K``.  A custom
        ``find_fhd`` receives *block* hypergraphs.
        """
        from ..algorithms.approx import FHWApproximationResult

        reduced, blocks, scheduler, stats = self._prepare("fhd")
        params: dict = {"K": K, "eps": eps}
        if find_fhd is not None:
            params["find_fhd"] = find_fhd
        results = self._solve_each(
            "fhw-approximation", blocks, scheduler, stats, params
        )
        if any(r.failed for r in results):
            self._finish(stats, scheduler)
            worst_failed = max(
                (r for r in results if r.failed), key=lambda r: r.iterations
            )
            return FHWApproximationResult(
                None,
                None,
                iterations=worst_failed.iterations,
                trace=worst_failed.trace,
            )
        worst = max(results, key=lambda r: r.iterations)
        width = max(1.0, *(r.width for r in results))
        final = self._stitch(
            reduced,
            blocks,
            [r.decomposition for r in results],
            stats,
            "fhd",
            width=width + _EPS,
        )
        self._finish(stats, scheduler)
        return FHWApproximationResult(
            final, final.width(), iterations=worst.iterations, trace=worst.trace
        )


def solve_width(
    hypergraph: Hypergraph,
    kind: str = "ghw",
    preprocess: str = "full",
    jobs: int | None = None,
    executor: str = "thread",
    solver: str = "bb",
    bounds: str = "portfolio",
    **params,
):
    """One-call pipeline width query.

    ``kind`` is one of ``"hw"``, ``"ghw"``, ``"ghw-exact"``, ``"fhw"``
    (the exact oracle), or ``"bounds"`` (heuristic sandwich); extra
    keyword arguments go to the underlying solver method.  ``solver``
    selects the check engine (``"bb"``, ``"sat"`` or ``"portfolio"``)
    for the iterative kinds; ``bounds`` the pre-pass mode (one of
    :data:`repro.pipeline.bounds.BOUNDS_MODES`).
    """
    solver = WidthSolver(
        hypergraph,
        preprocess=preprocess,
        jobs=jobs,
        executor=executor,
        solver=solver,
        bounds=bounds,
    )
    dispatch = {
        "hw": solver.hypertree_width,
        "ghw": solver.generalized_hypertree_width,
        "ghw-exact": solver.generalized_hypertree_width_exact,
        "fhw": solver.fractional_hypertree_width_exact,
        "bounds": solver.width_bounds,
    }
    if kind not in dispatch:
        raise ValueError(f"kind must be one of {sorted(dispatch)}")
    return dispatch[kind](**params)
