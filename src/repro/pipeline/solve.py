"""Solve layer: run any width algorithm per block, optionally in parallel.

Blocks are independent, and Check(X, k) is monotone in k, so two axes of
parallelism are available and both are exploited by the flat scheduler
in :func:`iterative_width_search`:

* **cross-block** — different blocks' checks run concurrently;
* **cross-k** — while a block's verdict at k is pending, speculative
  checks at k+1, k+2, ... fill idle workers; monotonicity makes the
  smallest accepted k the true width once all smaller ks have failed.

Parallelism is opt-in (``jobs=N``): the default is the plain serial
loop, identical to the pre-pipeline behaviour.  ``executor="thread"``
(default) shares the in-process engine caches; ``executor="process"``
sidesteps the GIL for CPU-bound searches at the cost of per-task pickling
and cold per-process caches (hypergraphs and decompositions pickle via
their ``__getstate__``).

Task payloads are plain ``(kind, hypergraph, args)`` tuples dispatched
through the module-level :func:`run_block_task`, so they work on both
executor types.  Algorithm cores are imported lazily inside it to keep
the pipeline package import-cycle free.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from ..decomposition import Decomposition
from ..hypergraph import Hypergraph

__all__ = [
    "BlockScheduler",
    "BlockState",
    "run_block_task",
    "race_block_task",
    "iterative_width_search",
    "make_pool",
    "engines_for",
    "order_engines",
    "SOLVERS",
    "SOLVER_MODES",
    "EXECUTORS",
    "CAP_MESSAGES",
]

#: Valid worker-pool types for every scheduler in the pipeline.
#: ``"thread"`` shares the in-process engine caches, ``"process"``
#: sidesteps the GIL, and ``"remote"`` dispatches the same task
#: payloads to a TCP worker fleet (see :mod:`repro.dist`).
EXECUTORS = ("thread", "process", "remote")

#: Engine-selection modes for check-style solves: branch-and-bound
#: only, SAT only, or a per-task race between the two.
SOLVER_MODES = ("bb", "sat", "portfolio")

#: Cap-exhaustion error templates per width-search entry point, shared
#: by ``WidthSolver`` and the batch scheduler so the two report byte-
#: identical errors for the same query.
CAP_MESSAGES = {
    "hw": "no HD of width <= {cap} found (cap too small?)",
    "ghw": "no GHD of width <= {cap} found (cap too small?)",
}


def make_pool(executor: str, jobs: int):
    """A ``concurrent.futures`` pool for per-block tasks.

    Parameters
    ----------
    executor : str
        One of :data:`EXECUTORS`: ``"thread"`` (shares in-process
        engine caches), ``"process"`` (GIL-free, cold per-worker
        caches), or ``"remote"`` (the TCP worker fleet of
        :mod:`repro.dist`, falling back to a local thread pool while
        no worker is registered).
    jobs : int
        Worker count (coerced to at least 1).

    Returns
    -------
    concurrent.futures.Executor

    Raises
    ------
    ValueError
        If ``executor`` is not one of :data:`EXECUTORS`.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}; got {executor!r}"
        )
    jobs = max(1, int(jobs or 1))
    if executor == "remote":
        # Lazy: repro.dist imports this module, so the import must not
        # run at module load time.
        from ..dist import RemoteExecutor, get_registry

        return RemoteExecutor(get_registry(), jobs=jobs)
    cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    return cls(max_workers=jobs)


def _check_hd(hypergraph: Hypergraph, k: int, **params):
    from ..algorithms.hd import hypertree_decomposition

    return hypertree_decomposition(hypergraph, k, preprocess="none", **params)


def _check_ghd(hypergraph: Hypergraph, k: int, **params):
    from ..algorithms.ghd import generalized_hypertree_decomposition

    return generalized_hypertree_decomposition(
        hypergraph, k, preprocess="none", **params
    )


def _check_fhd_bounded_degree(hypergraph: Hypergraph, k: float, **params):
    from ..algorithms.fhd import (
        fractional_hypertree_decomposition_bounded_degree,
    )

    return fractional_hypertree_decomposition_bounded_degree(
        hypergraph, k, preprocess="none", **params
    )


def _ghw_exact(hypergraph: Hypergraph, **params):
    from ..algorithms.elimination import generalized_hypertree_width_exact

    return generalized_hypertree_width_exact(
        hypergraph, preprocess="none", **params
    )


def _fhw_exact(hypergraph: Hypergraph, **params):
    from ..algorithms.elimination import fractional_hypertree_width_exact

    return fractional_hypertree_width_exact(
        hypergraph, preprocess="none", **params
    )


def _heuristic_bounds(hypergraph: Hypergraph, **params):
    from ..algorithms.heuristics import width_bounds

    return width_bounds(hypergraph, preprocess="none", **params)


def _heuristic_decomposition(hypergraph: Hypergraph, **params):
    from ..algorithms.heuristics import heuristic_decomposition

    return heuristic_decomposition(hypergraph, preprocess="none", **params)


def _fhw_approximation(hypergraph: Hypergraph, **params):
    from ..algorithms.approx import fhw_approximation

    return fhw_approximation(hypergraph, preprocess="none", **params)


def _sat_check_hd(hypergraph: Hypergraph, k: int, abort=None, **_bb_only):
    from ..sat.checks import sat_hypertree_decomposition

    return sat_hypertree_decomposition(hypergraph, k, abort=abort)


def _sat_check_ghd(hypergraph: Hypergraph, k: int, abort=None, **_bb_only):
    from ..sat.checks import sat_generalized_hypertree_decomposition

    return sat_generalized_hypertree_decomposition(hypergraph, k, abort=abort)


def _sat_check_fhd(hypergraph: Hypergraph, k: float, abort=None, **_bb_only):
    from ..sat.checks import sat_fractional_hypertree_decomposition

    return sat_fractional_hypertree_decomposition(hypergraph, k, abort=abort)


#: Per-block solver registry: name -> callable(hypergraph, **params).
#: Check-style solvers additionally take ``k`` and return None on reject.
#: The ``sat-*`` twins answer the same Check(X, k) questions through the
#: CNF engine in :mod:`repro.sat`; they accept (and ignore) the
#: branch-and-bound tuning keywords so both twins of a portfolio race
#: can share one task-params dict.
SOLVERS = {
    "check-hd": _check_hd,
    "check-ghd": _check_ghd,
    "check-fhd-bd": _check_fhd_bounded_degree,
    "sat-check-hd": _sat_check_hd,
    "sat-check-ghd": _sat_check_ghd,
    "sat-check-fhd": _sat_check_fhd,
    "ghw-exact": _ghw_exact,
    "fhw-exact": _fhw_exact,
    "heuristic-bounds": _heuristic_bounds,
    "heuristic-decomposition": _heuristic_decomposition,
    "fhw-approximation": _fhw_approximation,
}

#: Check-style solvers with a SAT twin, keyed by branch-and-bound name.
_SAT_CHECKS = {
    "check-hd": "sat-check-hd",
    "check-ghd": "sat-check-ghd",
    "check-fhd-bd": "sat-check-fhd",
}

#: Engines that honour a cooperative ``abort`` event (thread pools only).
_ABORTABLE = frozenset(_SAT_CHECKS.values())


def engines_for(solver: str, mode: str = "bb") -> tuple[str, ...]:
    """The solver registry keys a mode runs for one check-style task.

    ``"bb"`` keeps the branch-and-bound solver alone, ``"sat"`` swaps in
    its CNF twin, and ``"portfolio"`` returns both so schedulers race
    them per ``(block, k)`` task.  Solvers without a SAT twin (the
    oracle and heuristic kinds) always run alone, whatever the mode.

    Raises
    ------
    ValueError
        If ``mode`` is not one of :data:`SOLVER_MODES`.
    """
    if mode not in SOLVER_MODES:
        raise ValueError(
            f"solver must be one of {SOLVER_MODES}, got {mode!r}"
        )
    twin = _SAT_CHECKS.get(solver)
    if mode == "bb" or twin is None:
        return (solver,)
    if mode == "sat":
        return (twin,)
    return (solver, twin)


def order_engines(
    engines: tuple[str, ...], hypergraph: Hypergraph
) -> tuple[str, ...]:
    """Submission order for a portfolio race: predicted winner first.

    Queued twins whose sibling finishes first are cancelled before they
    start, so starting the likely-faster engine first turns a race into
    a cheap hedge.  The SAT encoding shines on small blocks with more
    edges than vertices (branch-and-bound drowns in subedge
    combinations there) and drowns in its own O(n³) transitivity
    clauses on larger sparse ones — a density test captures both
    regimes.
    """
    if len(engines) < 2:
        return tuple(engines)
    n = hypergraph.num_vertices
    sat_first = n <= 10 and hypergraph.num_edges > n
    ordered = sorted(
        engines, key=lambda e: (e in _ABORTABLE) != sat_first
    )
    return tuple(ordered)


#: Sentinel a gated racing twin returns when its sibling already
#: answered before the twin started (see :func:`run_gated_block_task`).
#: Schedulers must skip it without recording.
RACE_SKIPPED = object()


def run_gated_block_task(
    gate: threading.Event, solver: str, hypergraph: Hypergraph, params: dict
):
    """Run one raced engine behind a shared first-answer gate.

    A thread-pool worker dequeues a queued racing twin the instant its
    sibling's payload returns — before the scheduler thread wakes up to
    cancel it.  The gate closes that window: the first engine to answer
    sets the event *synchronously in the worker*, so a twin dequeued
    afterwards returns :data:`RACE_SKIPPED` immediately instead of
    burning a full solve.  (SAT engines also honour a cooperative abort
    mid-run; for branch-and-bound this gate is the only cheap exit.)

    Thread pools only — the event is not picklable, so process-pool
    racing submits :func:`run_block_task` bare and relies on dequeue
    cancellation alone.
    """
    if gate.is_set():
        return RACE_SKIPPED
    result = run_block_task(solver, hypergraph, params)
    gate.set()
    return result


def race_block_task(
    engines: tuple[str, ...], hypergraph: Hypergraph, params: dict
):
    """Race one block task's engines on a single-slot pool.

    Used by the serial scheduler paths in ``solver="portfolio"`` mode
    (the parallel paths race on their own pools instead).  On one slot
    the race degenerates into its prediction: the engine
    :func:`order_engines` puts first runs to completion, and the gated
    twin is dequeued-and-skipped (or cancelled before starting).  True
    concurrent racing needs ``jobs > 1``.
    """
    engines = order_engines(tuple(engines), hypergraph)
    if len(engines) == 1:
        return run_block_task(engines[0], hypergraph, params)
    gate = threading.Event()
    pool = ThreadPoolExecutor(max_workers=1)
    try:
        futures = [
            pool.submit(run_gated_block_task, gate, engine, hypergraph, params)
            for engine in engines
        ]
        return futures[0].result()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_block_task(solver: str, hypergraph: Hypergraph, params: dict):
    """Execute one per-block solve (module-level, so it pickles).

    This is the single task-payload contract of the whole solve layer:
    a ``(solver, hypergraph, params)`` triple of plain picklable values,
    so the same payload runs on a thread pool, a process pool, or (the
    ROADMAP's distributed item) a remote worker.

    Parameters
    ----------
    solver : str
        A key of :data:`SOLVERS`.
    hypergraph : Hypergraph
        The block to solve.
    params : dict
        Keyword arguments for the solver; check-style solvers take
        ``k`` here and return None on reject.

    Returns
    -------
    object
        Whatever the registered solver returns (a Decomposition or
        None for checks, ``(width, decomposition)`` tuples for oracles,
        bound triples for heuristics).

    Raises
    ------
    KeyError
        If ``solver`` is not registered in :data:`SOLVERS`.
    """
    return SOLVERS[solver](hypergraph, **params)


@dataclass
class BlockScheduler:
    """Serial or pooled execution of per-block tasks, with counters.

    ``tasks_cancelled`` counts portfolio losers: exactly one per raced
    ``(block, k)`` task that produced an answer, however the loser was
    stopped (dequeued before starting, aborted cooperatively, or simply
    discarded).
    """

    jobs: int = 1
    executor: str = "thread"
    tasks_run: int = 0
    speculative_checks: int = 0
    tasks_cancelled: int = 0

    def __post_init__(self) -> None:
        self.jobs = max(1, int(self.jobs or 1))
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}; got {self.executor!r}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this scheduler runs tasks on a worker pool."""
        return self.jobs > 1

    def _pool(self):
        return make_pool(self.executor, self.jobs)

    def map(
        self,
        task_specs: list[tuple[str, Hypergraph, dict]],
        stop_on_none: bool = False,
        engines: tuple[str, ...] | None = None,
    ) -> list:
        """Run ``run_block_task`` over the specs; ordered results.

        With ``stop_on_none`` (check-style queries: one rejecting block
        decides the whole answer) remaining tasks are skipped/cancelled
        once any task returns None; their slots stay None.

        ``engines`` (from :func:`engines_for`) overrides each spec's
        solver; with more than one engine, every spec is raced and the
        first verdict per spec wins (``solver="portfolio"``).
        """
        if engines is not None and len(engines) > 1:
            return self._map_racing(task_specs, stop_on_none, tuple(engines))
        if engines:
            task_specs = [
                (engines[0], hypergraph, params)
                for (_solver, hypergraph, params) in task_specs
            ]
        if not self.parallel or len(task_specs) <= 1:
            results: list = []
            for spec in task_specs:
                self.tasks_run += 1
                result = run_block_task(*spec)
                results.append(result)
                if stop_on_none and result is None:
                    results.extend([None] * (len(task_specs) - len(results)))
                    break
            return results
        self.tasks_run += len(task_specs)
        with self._pool() as pool:
            futures = [pool.submit(run_block_task, *spec) for spec in task_specs]
            if not stop_on_none:
                return [f.result() for f in futures]
            pending = set(futures)
            rejected = False
            while pending and not rejected:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                rejected = any(f.result() is None for f in done)
            for f in pending:
                f.cancel()
            return [
                f.result() if f.done() and not f.cancelled() else None
                for f in futures
            ]

    def _map_racing(
        self,
        task_specs: list[tuple[str, Hypergraph, dict]],
        stop_on_none: bool,
        engines: tuple[str, ...],
    ) -> list:
        """Portfolio variant of :meth:`map`: race every spec's engines."""
        if not self.parallel or len(task_specs) <= 1:
            results: list = []
            for _solver, hypergraph, params in task_specs:
                self.tasks_run += len(engines)
                result = race_block_task(engines, hypergraph, params)
                self.tasks_cancelled += len(engines) - 1
                results.append(result)
                if stop_on_none and result is None:
                    results.extend([None] * (len(task_specs) - len(results)))
                    break
            return results
        self.tasks_run += len(task_specs) * len(engines)
        with self._pool() as pool:
            in_flight: dict = {}
            aborts: dict = {}
            gates: dict = {}
            threaded = self.executor == "thread"
            # Two passes: every spec's predicted winner enters the FIFO
            # queue before any twin, so workers spread across specs
            # instead of racing the same one; gates let late-dequeued
            # twins skip once their sibling answered.
            submissions = []
            for index, (_solver, hypergraph, params) in enumerate(task_specs):
                ordered = order_engines(engines, hypergraph)
                for rank, engine in enumerate(ordered):
                    submissions.append((rank, index, engine, hypergraph, params))
            submissions.sort(key=lambda s: s[0])
            for _rank, index, engine, hypergraph, params in submissions:
                task_params = params
                if engine in _ABORTABLE and threaded:
                    event = threading.Event()
                    task_params = {**params, "abort": event}
                if threaded:
                    gate = gates.setdefault(index, threading.Event())
                    future = pool.submit(
                        run_gated_block_task,
                        gate,
                        engine,
                        hypergraph,
                        task_params,
                    )
                else:
                    future = pool.submit(
                        run_block_task, engine, hypergraph, task_params
                    )
                in_flight[future] = index
                if engine in _ABORTABLE and threaded:
                    aborts[future] = event
            results = [None] * len(task_specs)
            settled = [False] * len(task_specs)
            rejected = False
            while in_flight and not all(settled) and not rejected:
                done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    index = in_flight.pop(future)
                    if settled[index]:
                        continue  # the raced twin already answered
                    value = future.result()
                    if value is RACE_SKIPPED:
                        continue  # gated twin; the sibling's answer is coming
                    results[index] = value
                    settled[index] = True
                    self.tasks_cancelled += len(engines) - 1
                    for twin in [
                        f for f, i in in_flight.items() if i == index
                    ]:
                        del in_flight[twin]
                        twin.cancel()
                        event = aborts.pop(twin, None)
                        if event is not None:
                            event.set()
                    if stop_on_none and results[index] is None:
                        rejected = True
            for future in in_flight:
                future.cancel()
                event = aborts.get(future)
                if event is not None:
                    event.set()
            return results


@dataclass
class BlockState:
    """Width-search progress of one block (or one batched query unit).

    Tracks the Check(X, k) verdicts seen so far for a single block and
    settles on the true width once monotonicity allows: the smallest
    accepted k is the width as soon as every smaller k has been
    rejected.  Shared by :func:`iterative_width_search` (one instance)
    and the batch scheduler in :mod:`repro.pipeline.batch` (many).

    Attributes
    ----------
    next_k : int
        The next candidate k to submit speculatively.
    results : dict
        Map ``k -> Decomposition | None`` of finished checks.
    width : int or None
        The settled width, once known.
    witness : Decomposition or None
        The witness decomposition at ``width``, once settled.
    """

    next_k: int = 1
    results: dict = field(default_factory=dict)  # k -> Decomposition | None
    width: int | None = None
    witness: Decomposition | None = None

    def settle(self) -> None:
        """Confirm the width once every smaller k has failed."""
        k = self.next_k_unconfirmed()
        while k in self.results:
            if self.results[k] is not None:
                self.width = k
                self.witness = self.results[k]
                return
            k += 1

    def next_k_unconfirmed(self) -> int:
        """The smallest k whose verdict is still unknown or accepted."""
        k = 1
        while self.results.get(k, "missing") is None:
            k += 1
        return k

    def best_accepted(self) -> int | None:
        """The smallest accepted k so far, or None.

        By monotonicity no check above this k is ever useful, so
        schedulers cap their speculation at ``best_accepted() - 1``
        (see :meth:`ceiling`).
        """
        accepted = [k for k, v in self.results.items() if v is not None]
        return min(accepted) if accepted else None

    def ceiling(self, cap: int) -> int:
        """The largest k still worth checking under ``cap``.

        ``cap`` when nothing is accepted yet; one below the smallest
        accepted k otherwise — both schedulers bound their speculative
        submissions with this.
        """
        accepted = self.best_accepted()
        return cap if accepted is None else min(cap, accepted - 1)


#: Backwards-compatible private alias (pre-batch name).
_BlockState = BlockState


def iterative_width_search(
    solver: str,
    hypergraphs: list[Hypergraph],
    caps: list[int],
    scheduler: BlockScheduler,
    params: dict | None = None,
    cap_message: str = "no decomposition of width <= {cap} found (cap too small?)",
    engines: tuple[str, ...] | None = None,
    states: list[BlockState] | None = None,
) -> list[tuple[int, Decomposition]]:
    """Smallest accepted k per block, via a check-style solver.

    Serial when the scheduler is (the classic k = 1, 2, ... loop per
    block); otherwise a single flat pool interleaves cross-block and
    speculative cross-k checks.  Both paths honour pre-seeded
    ``states`` identically: the k-loop starts at the first unconfirmed
    k, never runs a k the seed already settled, and skips the exact
    engine entirely for states the seed decided.

    Parameters
    ----------
    solver : str
        A check-style key of :data:`SOLVERS` (returns None on reject).
    hypergraphs : list of Hypergraph
        One entry per block.
    caps : list of int
        Largest k to try per block (``|E(block)|`` always suffices).
    scheduler : BlockScheduler
        Supplies the worker pool and accumulates task counters.
    params : dict, optional
        Extra keyword arguments passed to every check.
    cap_message : str, optional
        ``ValueError`` text when a block exhausts its cap; ``{cap}``
        is substituted.
    engines : tuple of str, optional
        Override from :func:`engines_for`; more than one engine races
        every ``(block, k)`` task and counts one cancelled loser per
        settled task (``solver="portfolio"``).
    states : list of BlockState, optional
        Pre-seeded per-block search states (one per block, from
        :func:`repro.pipeline.bounds.seeded_block_state`); fresh states
        when omitted.  Seeded rejections below a lower bound are never
        re-checked, a seeded witness caps speculation via
        ``BlockState.ceiling``, and already-settled states run zero
        exact checks.

    Returns
    -------
    list of (int, Decomposition)
        Per block, the smallest accepted k and its witness, in input
        order.

    Raises
    ------
    ValueError
        When some block rejects every k up to its cap.
    """
    params = dict(params or {})
    if engines is None:
        engines = (solver,)
    engines = tuple(engines)
    racing = len(engines) > 1
    if not racing:
        solver = engines[0]
    if states is None:
        states = [BlockState() for _ in hypergraphs]

    if not scheduler.parallel:
        for state, hypergraph, cap in zip(states, hypergraphs, caps):
            state.settle()
            while state.width is None:
                k = state.next_k_unconfirmed()
                if k > state.ceiling(cap):
                    raise ValueError(cap_message.format(cap=cap))
                scheduler.tasks_run += len(engines)
                if racing:
                    witness = race_block_task(
                        engines, hypergraph, {"k": k, **params}
                    )
                    scheduler.tasks_cancelled += len(engines) - 1
                else:
                    witness = run_block_task(
                        solver, hypergraph, {"k": k, **params}
                    )
                state.results[k] = witness
                state.settle()
        return [(state.width, state.witness) for state in states]

    with scheduler._pool() as pool:
        in_flight: dict = {}  # future -> (block, k, engine)
        aborts: dict = {}

        def submittable():
            """(block, k) pairs worth starting, nearest-k first."""
            pairs = []
            for i, state in enumerate(states):
                if state.width is not None:
                    continue
                base = state.next_k_unconfirmed()
                ceiling = state.ceiling(caps[i])
                k = state.next_k
                while k <= ceiling and len(pairs) < scheduler.jobs:
                    if k not in state.results and not any(
                        key[:2] == (i, k) for key in in_flight.values()
                    ):
                        pairs.append((k - base, i, k))
                    k += 1
            pairs.sort()
            return [(i, k) for (_d, i, k) in pairs]

        def cancel_twins(i: int, k: int) -> None:
            for twin in [
                f for f, key in in_flight.items() if key[:2] == (i, k)
            ]:
                del in_flight[twin]
                twin.cancel()
                event = aborts.pop(twin, None)
                if event is not None:
                    event.set()

        gates: dict = {}  # (block, k) -> first-answer gate
        threaded = scheduler.executor == "thread"
        while any(state.width is None for state in states):
            # Collect the round's submissions, then enqueue predicted
            # winners before any twin so workers spread across tasks.
            round_subs = []
            for i, k in submittable():
                if len(in_flight) >= scheduler.jobs * len(engines):
                    break
                for rank, engine in enumerate(
                    order_engines(engines, hypergraphs[i])
                ):
                    round_subs.append((rank, i, k, engine))
                states[i].next_k = max(states[i].next_k, k + 1)
                scheduler.tasks_run += len(engines)
                if k > states[i].next_k_unconfirmed():
                    scheduler.speculative_checks += 1
            round_subs.sort(key=lambda s: s[0])
            for _rank, i, k, engine in round_subs:
                task_params = {"k": k, **params}
                if racing and engine in _ABORTABLE and threaded:
                    event = threading.Event()
                    task_params["abort"] = event
                if racing and threaded:
                    gate = gates.setdefault((i, k), threading.Event())
                    future = pool.submit(
                        run_gated_block_task,
                        gate,
                        engine,
                        hypergraphs[i],
                        task_params,
                    )
                else:
                    future = pool.submit(
                        run_block_task, engine, hypergraphs[i], task_params
                    )
                in_flight[future] = (i, k, engine)
                if "abort" in task_params:
                    aborts[future] = task_params["abort"]
            if not in_flight:
                # Everything submittable is exhausted but some block is
                # unsettled: its cap ran out with rejections everywhere.
                failed = [
                    caps[i]
                    for i, state in enumerate(states)
                    if state.width is None
                ]
                raise ValueError(cap_message.format(cap=min(failed)))
            done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                if future not in in_flight:
                    continue  # twin of a task settled earlier this batch
                i, k, _engine = in_flight.pop(future)
                if k in states[i].results:
                    continue
                value = future.result()
                if value is RACE_SKIPPED:
                    continue  # gated twin; the sibling's answer is coming
                states[i].results[k] = value
                if racing:
                    scheduler.tasks_cancelled += len(engines) - 1
                    cancel_twins(i, k)
                states[i].settle()
        for future in in_flight:
            future.cancel()
            event = aborts.get(future)
            if event is not None:
                event.set()
    return [(state.width, state.witness) for state in states]
