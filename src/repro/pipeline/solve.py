"""Solve layer: run any width algorithm per block, optionally in parallel.

Blocks are independent, and Check(X, k) is monotone in k, so two axes of
parallelism are available and both are exploited by the flat scheduler
in :func:`iterative_width_search`:

* **cross-block** — different blocks' checks run concurrently;
* **cross-k** — while a block's verdict at k is pending, speculative
  checks at k+1, k+2, ... fill idle workers; monotonicity makes the
  smallest accepted k the true width once all smaller ks have failed.

Parallelism is opt-in (``jobs=N``): the default is the plain serial
loop, identical to the pre-pipeline behaviour.  ``executor="thread"``
(default) shares the in-process engine caches; ``executor="process"``
sidesteps the GIL for CPU-bound searches at the cost of per-task pickling
and cold per-process caches (hypergraphs and decompositions pickle via
their ``__getstate__``).

Task payloads are plain ``(kind, hypergraph, args)`` tuples dispatched
through the module-level :func:`run_block_task`, so they work on both
executor types.  Algorithm cores are imported lazily inside it to keep
the pipeline package import-cycle free.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from ..decomposition import Decomposition
from ..hypergraph import Hypergraph

__all__ = [
    "BlockScheduler",
    "BlockState",
    "run_block_task",
    "iterative_width_search",
    "make_pool",
    "SOLVERS",
    "EXECUTORS",
    "CAP_MESSAGES",
]

#: Valid worker-pool types for every scheduler in the pipeline.
EXECUTORS = ("thread", "process")

#: Cap-exhaustion error templates per width-search entry point, shared
#: by ``WidthSolver`` and the batch scheduler so the two report byte-
#: identical errors for the same query.
CAP_MESSAGES = {
    "hw": "no HD of width <= {cap} found (cap too small?)",
    "ghw": "no GHD of width <= {cap} found (cap too small?)",
}


def make_pool(executor: str, jobs: int):
    """A ``concurrent.futures`` pool for per-block tasks.

    Parameters
    ----------
    executor : str
        One of :data:`EXECUTORS`: ``"thread"`` (shares in-process
        engine caches) or ``"process"`` (GIL-free, cold per-worker
        caches).
    jobs : int
        Worker count (coerced to at least 1).

    Returns
    -------
    concurrent.futures.Executor

    Raises
    ------
    ValueError
        If ``executor`` is not one of :data:`EXECUTORS`.
    """
    if executor not in EXECUTORS:
        raise ValueError("executor must be 'thread' or 'process'")
    cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    return cls(max_workers=max(1, int(jobs or 1)))


def _check_hd(hypergraph: Hypergraph, k: int, **params):
    from ..algorithms.hd import hypertree_decomposition

    return hypertree_decomposition(hypergraph, k, preprocess="none", **params)


def _check_ghd(hypergraph: Hypergraph, k: int, **params):
    from ..algorithms.ghd import generalized_hypertree_decomposition

    return generalized_hypertree_decomposition(
        hypergraph, k, preprocess="none", **params
    )


def _check_fhd_bounded_degree(hypergraph: Hypergraph, k: float, **params):
    from ..algorithms.fhd import (
        fractional_hypertree_decomposition_bounded_degree,
    )

    return fractional_hypertree_decomposition_bounded_degree(
        hypergraph, k, preprocess="none", **params
    )


def _ghw_exact(hypergraph: Hypergraph, **params):
    from ..algorithms.elimination import generalized_hypertree_width_exact

    return generalized_hypertree_width_exact(
        hypergraph, preprocess="none", **params
    )


def _fhw_exact(hypergraph: Hypergraph, **params):
    from ..algorithms.elimination import fractional_hypertree_width_exact

    return fractional_hypertree_width_exact(
        hypergraph, preprocess="none", **params
    )


def _heuristic_bounds(hypergraph: Hypergraph, **params):
    from ..algorithms.heuristics import width_bounds

    return width_bounds(hypergraph, preprocess="none", **params)


def _heuristic_decomposition(hypergraph: Hypergraph, **params):
    from ..algorithms.heuristics import heuristic_decomposition

    return heuristic_decomposition(hypergraph, preprocess="none", **params)


def _fhw_approximation(hypergraph: Hypergraph, **params):
    from ..algorithms.approx import fhw_approximation

    return fhw_approximation(hypergraph, preprocess="none", **params)


#: Per-block solver registry: name -> callable(hypergraph, **params).
#: Check-style solvers additionally take ``k`` and return None on reject.
SOLVERS = {
    "check-hd": _check_hd,
    "check-ghd": _check_ghd,
    "check-fhd-bd": _check_fhd_bounded_degree,
    "ghw-exact": _ghw_exact,
    "fhw-exact": _fhw_exact,
    "heuristic-bounds": _heuristic_bounds,
    "heuristic-decomposition": _heuristic_decomposition,
    "fhw-approximation": _fhw_approximation,
}


def run_block_task(solver: str, hypergraph: Hypergraph, params: dict):
    """Execute one per-block solve (module-level, so it pickles).

    This is the single task-payload contract of the whole solve layer:
    a ``(solver, hypergraph, params)`` triple of plain picklable values,
    so the same payload runs on a thread pool, a process pool, or (the
    ROADMAP's distributed item) a remote worker.

    Parameters
    ----------
    solver : str
        A key of :data:`SOLVERS`.
    hypergraph : Hypergraph
        The block to solve.
    params : dict
        Keyword arguments for the solver; check-style solvers take
        ``k`` here and return None on reject.

    Returns
    -------
    object
        Whatever the registered solver returns (a Decomposition or
        None for checks, ``(width, decomposition)`` tuples for oracles,
        bound triples for heuristics).

    Raises
    ------
    KeyError
        If ``solver`` is not registered in :data:`SOLVERS`.
    """
    return SOLVERS[solver](hypergraph, **params)


@dataclass
class BlockScheduler:
    """Serial or pooled execution of per-block tasks, with counters."""

    jobs: int = 1
    executor: str = "thread"
    tasks_run: int = 0
    speculative_checks: int = 0

    def __post_init__(self) -> None:
        self.jobs = max(1, int(self.jobs or 1))
        if self.executor not in EXECUTORS:
            raise ValueError("executor must be 'thread' or 'process'")

    @property
    def parallel(self) -> bool:
        """Whether this scheduler runs tasks on a worker pool."""
        return self.jobs > 1

    def _pool(self):
        return make_pool(self.executor, self.jobs)

    def map(
        self,
        task_specs: list[tuple[str, Hypergraph, dict]],
        stop_on_none: bool = False,
    ) -> list:
        """Run ``run_block_task`` over the specs; ordered results.

        With ``stop_on_none`` (check-style queries: one rejecting block
        decides the whole answer) remaining tasks are skipped/cancelled
        once any task returns None; their slots stay None.
        """
        if not self.parallel or len(task_specs) <= 1:
            results: list = []
            for spec in task_specs:
                self.tasks_run += 1
                result = run_block_task(*spec)
                results.append(result)
                if stop_on_none and result is None:
                    results.extend([None] * (len(task_specs) - len(results)))
                    break
            return results
        self.tasks_run += len(task_specs)
        with self._pool() as pool:
            futures = [pool.submit(run_block_task, *spec) for spec in task_specs]
            if not stop_on_none:
                return [f.result() for f in futures]
            pending = set(futures)
            rejected = False
            while pending and not rejected:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                rejected = any(f.result() is None for f in done)
            for f in pending:
                f.cancel()
            return [
                f.result() if f.done() and not f.cancelled() else None
                for f in futures
            ]


@dataclass
class BlockState:
    """Width-search progress of one block (or one batched query unit).

    Tracks the Check(X, k) verdicts seen so far for a single block and
    settles on the true width once monotonicity allows: the smallest
    accepted k is the width as soon as every smaller k has been
    rejected.  Shared by :func:`iterative_width_search` (one instance)
    and the batch scheduler in :mod:`repro.pipeline.batch` (many).

    Attributes
    ----------
    next_k : int
        The next candidate k to submit speculatively.
    results : dict
        Map ``k -> Decomposition | None`` of finished checks.
    width : int or None
        The settled width, once known.
    witness : Decomposition or None
        The witness decomposition at ``width``, once settled.
    """

    next_k: int = 1
    results: dict = field(default_factory=dict)  # k -> Decomposition | None
    width: int | None = None
    witness: Decomposition | None = None

    def settle(self) -> None:
        """Confirm the width once every smaller k has failed."""
        k = self.next_k_unconfirmed()
        while k in self.results:
            if self.results[k] is not None:
                self.width = k
                self.witness = self.results[k]
                return
            k += 1

    def next_k_unconfirmed(self) -> int:
        """The smallest k whose verdict is still unknown or accepted."""
        k = 1
        while self.results.get(k, "missing") is None:
            k += 1
        return k

    def best_accepted(self) -> int | None:
        """The smallest accepted k so far, or None.

        By monotonicity no check above this k is ever useful, so
        schedulers cap their speculation at ``best_accepted() - 1``
        (see :meth:`ceiling`).
        """
        accepted = [k for k, v in self.results.items() if v is not None]
        return min(accepted) if accepted else None

    def ceiling(self, cap: int) -> int:
        """The largest k still worth checking under ``cap``.

        ``cap`` when nothing is accepted yet; one below the smallest
        accepted k otherwise — both schedulers bound their speculative
        submissions with this.
        """
        accepted = self.best_accepted()
        return cap if accepted is None else min(cap, accepted - 1)


#: Backwards-compatible private alias (pre-batch name).
_BlockState = BlockState


def iterative_width_search(
    solver: str,
    hypergraphs: list[Hypergraph],
    caps: list[int],
    scheduler: BlockScheduler,
    params: dict | None = None,
    cap_message: str = "no decomposition of width <= {cap} found (cap too small?)",
) -> list[tuple[int, Decomposition]]:
    """Smallest accepted k per block, via a check-style solver.

    Serial when the scheduler is (the classic k = 1, 2, ... loop per
    block); otherwise a single flat pool interleaves cross-block and
    speculative cross-k checks.

    Parameters
    ----------
    solver : str
        A check-style key of :data:`SOLVERS` (returns None on reject).
    hypergraphs : list of Hypergraph
        One entry per block.
    caps : list of int
        Largest k to try per block (``|E(block)|`` always suffices).
    scheduler : BlockScheduler
        Supplies the worker pool and accumulates task counters.
    params : dict, optional
        Extra keyword arguments passed to every check.
    cap_message : str, optional
        ``ValueError`` text when a block exhausts its cap; ``{cap}``
        is substituted.

    Returns
    -------
    list of (int, Decomposition)
        Per block, the smallest accepted k and its witness, in input
        order.

    Raises
    ------
    ValueError
        When some block rejects every k up to its cap.
    """
    params = dict(params or {})

    if not scheduler.parallel:
        out = []
        for hypergraph, cap in zip(hypergraphs, caps):
            found = None
            for k in range(1, cap + 1):
                scheduler.tasks_run += 1
                witness = run_block_task(
                    solver, hypergraph, {"k": k, **params}
                )
                if witness is not None:
                    found = (k, witness)
                    break
            if found is None:
                raise ValueError(cap_message.format(cap=cap))
            out.append(found)
        return out

    states = [BlockState() for _ in hypergraphs]
    with scheduler._pool() as pool:
        in_flight: dict = {}

        def submittable():
            """(block, k) pairs worth starting, nearest-k first."""
            pairs = []
            for i, state in enumerate(states):
                if state.width is not None:
                    continue
                base = state.next_k_unconfirmed()
                ceiling = state.ceiling(caps[i])
                k = state.next_k
                while k <= ceiling and len(pairs) < scheduler.jobs:
                    if k not in state.results and not any(
                        key == (i, k) for key in in_flight.values()
                    ):
                        pairs.append((k - base, i, k))
                    k += 1
            pairs.sort()
            return [(i, k) for (_d, i, k) in pairs]

        while any(state.width is None for state in states):
            for i, k in submittable():
                if len(in_flight) >= scheduler.jobs:
                    break
                future = pool.submit(
                    run_block_task,
                    solver,
                    hypergraphs[i],
                    {"k": k, **params},
                )
                in_flight[future] = (i, k)
                states[i].next_k = max(states[i].next_k, k + 1)
                scheduler.tasks_run += 1
                if k > states[i].next_k_unconfirmed():
                    scheduler.speculative_checks += 1
            if not in_flight:
                # Everything submittable is exhausted but some block is
                # unsettled: its cap ran out with rejections everywhere.
                failed = [
                    caps[i]
                    for i, state in enumerate(states)
                    if state.width is None
                ]
                raise ValueError(cap_message.format(cap=min(failed)))
            done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                i, k = in_flight.pop(future)
                states[i].results[k] = future.result()
                states[i].settle()
        for future in in_flight:
            future.cancel()
    return [(state.width, state.witness) for state in states]
