"""Preprocessing & parallel block-solve pipeline (reduce → split → solve → stitch).

Every width query in the library runs through this package by default:

* :mod:`repro.pipeline.reduce` — composable, inverse-recording
  simplification rules (subsumed/duplicate edges, isolated and degree-1
  vertices, twin-vertex contraction);
* :mod:`repro.pipeline.split` — articulation points and biconnected
  blocks of the cached primal graph;
* :mod:`repro.pipeline.bounds` — the bounds pre-pass: per-block
  ordering-portfolio upper bounds + clique lower bounds
  (:data:`BOUNDS_MODES`) that seed every exact k-search and provide an
  anytime answer before the first exact check;
* :mod:`repro.pipeline.solve` — per-block solver registry (both the
  branch-and-bound engines and their SAT twins from :mod:`repro.sat`,
  selected per :data:`SOLVER_MODES` and raced in ``"portfolio"`` mode)
  plus the opt-in ``concurrent.futures`` scheduler (cross-block and
  cross-k parallelism, ``jobs=N``);
* :mod:`repro.pipeline.solver` — the :class:`WidthSolver` facade tying
  the stages together, with per-stage :class:`PipelineStats`;
* :mod:`repro.pipeline.batch` — batched multi-instance serving:
  :func:`solve_many` / :class:`BatchScheduler` interleave per-block
  tasks of a whole request workload on one shared pool with one warm
  engine-cache domain, with per-request :class:`BatchResult` handles
  and aggregate :class:`BatchStats`.

The stitch stage lives in :mod:`repro.decomposition.stitch`, next to the
other decomposition transformations.
"""

from .bounds import (
    BOUNDS_MODES,
    BlockBounds,
    compute_block_bounds,
    seeded_block_state,
)
from .batch import (
    BATCH_KINDS,
    BatchRequest,
    BatchResult,
    BatchScheduler,
    BatchStats,
    last_batch_stats,
    solve_many,
)
from .reduce import (
    RULES,
    DroppedEdges,
    DroppedIsolated,
    FusedTwins,
    ReducedInstance,
    RemovedDegreeOne,
    reduce_instance,
    rules_for,
)
from .solve import (
    EXECUTORS,
    SOLVER_MODES,
    SOLVERS,
    BlockScheduler,
    BlockState,
    engines_for,
    iterative_width_search,
    run_block_task,
)
from .solver import (
    PREPROCESS_MODES,
    PipelineStats,
    WidthSolver,
    last_pipeline_stats,
    prepare_instance,
    solve_width,
    split_mode_for,
    stitch_instance,
)
from .split import SPLIT_MODES, Block, articulation_points, split_instance

__all__ = [
    "WidthSolver",
    "PipelineStats",
    "solve_width",
    "last_pipeline_stats",
    "prepare_instance",
    "stitch_instance",
    "split_mode_for",
    "PREPROCESS_MODES",
    "solve_many",
    "BatchRequest",
    "BatchResult",
    "BatchScheduler",
    "BatchStats",
    "last_batch_stats",
    "BATCH_KINDS",
    "reduce_instance",
    "ReducedInstance",
    "rules_for",
    "RULES",
    "DroppedEdges",
    "DroppedIsolated",
    "FusedTwins",
    "RemovedDegreeOne",
    "split_instance",
    "articulation_points",
    "Block",
    "SPLIT_MODES",
    "BlockScheduler",
    "BlockState",
    "iterative_width_search",
    "run_block_task",
    "SOLVERS",
    "SOLVER_MODES",
    "EXECUTORS",
    "engines_for",
    "BOUNDS_MODES",
    "BlockBounds",
    "compute_block_bounds",
    "seeded_block_state",
]
