"""Splitting layer: articulation points and biconnected block partition.

Every hyperedge is a clique of the primal graph, so it lies inside
exactly one biconnected block; the hypergraph therefore partitions into
block subhypergraphs that meet only in articulation vertices.  ghw and
fhw decompose exactly over this partition:

* ``width(H) = max over blocks of width(block)`` — each block is the
  paper's vertex-induced subhypergraph (Lemma 2.7 gives <=) with the
  foreign one-vertex fragments dropped as subsumed edges (width-neutral
  for ghw/fhw), and stitching the per-block witnesses along the
  block-cut tree achieves the max (see
  :func:`repro.decomposition.stitch.stitch_blocks`).

hw is *not* safe under biconnected splitting (re-rooting a block's HD at
its articulation vertex can break the special condition), so HD queries
use ``mode="components"`` — plain connected components, whose trees join
without re-rooting.

The block forest records, for every non-root block, the parent block and
the shared articulation vertex; the stitch layer consumes it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypergraph import Hypergraph, Vertex

__all__ = ["Block", "split_instance", "articulation_points", "SPLIT_MODES"]

SPLIT_MODES = ("biconnected", "components", "none")


@dataclass(frozen=True)
class Block:
    """One independently solvable piece of the instance.

    ``parent`` is the index of the parent block in the block forest
    (None for roots) and ``cut_vertex`` the articulation vertex shared
    with it — exactly one, since two biconnected blocks meet in at most
    one vertex.
    """

    index: int
    hypergraph: Hypergraph
    parent: int | None = None
    cut_vertex: Vertex | None = None


def _biconnected_vertex_sets(
    adjacency: dict[Vertex, frozenset],
) -> tuple[list[frozenset], frozenset]:
    """Blocks (as vertex sets) and articulation points of a graph.

    Iterative Hopcroft–Tarjan with an explicit edge stack; vertices with
    no neighbours become singleton blocks so every vertex is covered.
    """
    order = sorted(adjacency, key=str)
    disc: dict[Vertex, int] = {}
    low: dict[Vertex, int] = {}
    blocks: list[frozenset] = []
    cut: set = set()
    counter = 0

    for root in order:
        if root in disc:
            continue
        if not adjacency[root]:
            disc[root] = counter
            counter += 1
            blocks.append(frozenset({root}))
            continue
        edge_stack: list[tuple[Vertex, Vertex]] = []
        root_children = 0
        # stack entries: (vertex, parent, iterator over neighbours)
        stack = [(root, None, iter(sorted(adjacency[root], key=str)))]
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            v, parent, nbrs = stack[-1]
            advanced = False
            for w in nbrs:
                if w not in disc:
                    edge_stack.append((v, w))
                    disc[w] = low[w] = counter
                    counter += 1
                    stack.append((w, v, iter(sorted(adjacency[w], key=str))))
                    if v == root:
                        root_children += 1
                    advanced = True
                    break
                if w != parent and disc[w] < disc[v]:
                    edge_stack.append((v, w))
                    low[v] = min(low[v], disc[w])
            if advanced:
                continue
            stack.pop()
            if stack:
                u = stack[-1][0]
                low[u] = min(low[u], low[v])
                if low[v] >= disc[u]:
                    # u separates v's subtree: pop one block.
                    members: set = set()
                    while edge_stack:
                        a, b = edge_stack[-1]
                        if disc[a] < disc[v] and a != u:
                            break
                        edge_stack.pop()
                        members.update((a, b))
                        if (a, b) == (u, v):
                            break
                    if members:
                        blocks.append(frozenset(members))
                    if u != root or root_children > 1:
                        cut.add(u)
    return blocks, frozenset(cut)


def articulation_points(hypergraph: Hypergraph) -> frozenset:
    """Articulation vertices of the primal graph."""
    _blocks, cut = _biconnected_vertex_sets(hypergraph.primal_graph())
    return cut


def _block_forest(
    vertex_sets: list[frozenset], cut: frozenset
) -> list[tuple[int | None, Vertex | None]]:
    """(parent, cut_vertex) per block, BFS over the block-cut structure."""
    by_cut: dict[Vertex, list[int]] = {}
    for i, vs in enumerate(vertex_sets):
        for a in vs & cut:
            by_cut.setdefault(a, []).append(i)
    links: list[tuple[int | None, Vertex | None]] = [
        (None, None) for _ in vertex_sets
    ]
    seen: set[int] = set()
    for start in range(len(vertex_sets)):
        if start in seen:
            continue
        seen.add(start)
        queue = [start]
        while queue:
            i = queue.pop(0)
            for a in sorted(vertex_sets[i] & cut, key=str):
                for j in by_cut[a]:
                    if j not in seen:
                        seen.add(j)
                        links[j] = (i, a)
                        queue.append(j)
    return links


def split_instance(
    hypergraph: Hypergraph, mode: str = "biconnected"
) -> list[Block]:
    """Partition the instance into independently solvable blocks.

    Parameters
    ----------
    hypergraph : Hypergraph
        The (already reduced) instance to split.
    mode : str, optional
        ``"biconnected"`` (default) splits along articulation points of
        the primal graph (safe for ghw/fhw); ``"components"`` splits
        into connected components only (safe for every measure,
        including hw); ``"none"`` returns the whole instance as a
        single block.

    Returns
    -------
    list of Block
        The blocks, with the block forest recorded as per-block
        ``(parent, cut_vertex)`` links.  Edges keep their names and
        full contents — every edge lies in exactly one block (singleton
        edges go to any block containing their vertex).  Declared
        isolated vertices are not assigned to any block; drop them
        first (the ``isolated`` reduction rule).

    Raises
    ------
    ValueError
        If ``mode`` is not one of :data:`SPLIT_MODES`.
    """
    if mode not in SPLIT_MODES:
        raise ValueError(f"mode must be one of {SPLIT_MODES}")
    if mode == "none" or hypergraph.num_edges <= 1:
        return [Block(0, hypergraph)]

    if mode == "components":
        from ..hypergraph import connected_components

        vertex_sets = connected_components(hypergraph)
        links = [(None, None)] * len(vertex_sets)
        cut: frozenset = frozenset()
    else:
        vertex_sets, cut = _biconnected_vertex_sets(hypergraph.primal_graph())
        links = _block_forest(vertex_sets, cut)

    if len(vertex_sets) <= 1:
        return [Block(0, hypergraph)]

    membership: dict[Vertex, list[int]] = {}
    for i, vs in enumerate(vertex_sets):
        for v in vs:
            membership.setdefault(v, []).append(i)

    assigned: dict[int, dict[str, frozenset]] = {i: {} for i in range(len(vertex_sets))}
    for name, content in hypergraph.edges.items():
        it = iter(content)
        first = next(it)
        candidates = set(membership[first])
        for v in it:
            candidates &= set(membership[v])
            if len(candidates) == 1:
                break
        # A clique lies in exactly one block; singleton edges may sit on
        # an articulation vertex shared by several — any of them works.
        assigned[min(candidates)][name] = content

    # Blocks with no edges only arise from declared isolated vertices
    # (singleton primal blocks); they are never linked to other blocks,
    # so skipping them and remapping parent indices is safe.
    kept = [i for i in range(len(vertex_sets)) if assigned[i]]
    remap = {old: new for new, old in enumerate(kept)}
    blocks = []
    for old in kept:
        parent, cut_vertex = links[old]
        blocks.append(
            Block(
                index=remap[old],
                hypergraph=Hypergraph(
                    assigned[old],
                    name=(
                        f"{hypergraph.name}/b{remap[old]}"
                        if hypergraph.name
                        else None
                    ),
                ),
                parent=remap[parent] if parent is not None else None,
                cut_vertex=cut_vertex,
            )
        )
    if len(blocks) == 1:
        return [Block(0, hypergraph)]
    return blocks
