"""Batched multi-instance serving: one scheduler, many width queries.

A served deployment does not answer one hypergraph at a time — it
answers *workloads* (the paper's evaluation itself runs width checks
over whole HyperBench corpora).  Calling :class:`~.solver.WidthSolver`
per instance builds a fresh scheduler and starts from cold engine
caches on every call.  This module amortizes both:

* :func:`solve_many` / :class:`BatchScheduler` run the reduce and split
  stages for **every** instance up front, then interleave the resulting
  ``(instance, block, k)`` tasks from *different* instances on one
  shared worker pool;
* with the default thread executor, all tasks share one warm
  :class:`~repro.engine.context.SearchContext` /
  :class:`~repro.engine.oracle.CoverOracle` cache domain, so repeated
  query shapes across the batch hit instead of recompute (the dominant
  effect measured by ``benchmarks/bench_e19_batch_serving.py``);
* every request gets its own :class:`BatchResult` handle, resolved as
  the batch progresses — a failing request records its error there and
  never poisons its siblings;
* stitching is deterministic per instance (driver thread, block order),
  so batched answers are exactly the single-instance
  :class:`~.solver.WidthSolver` answers.

Task payloads are the same plain picklable ``(solver, hypergraph,
params)`` triples as :func:`~.solve.run_block_task`, so the batch runs
unchanged on thread pools, process pools, and — the ROADMAP's next
step — remote workers.

Quickstart::

    from repro import Hypergraph, solve_many

    results = solve_many(
        [(h1, "ghw"), (h2, "fhw"), (h3, "hw")], jobs=4
    )
    width, decomposition = results[0].value
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field

from ..hypergraph import Hypergraph
from ..store import ResultStore, checked_witness
from .bounds import BOUNDS_MODES, compute_block_bounds, seeded_block_state
from .solve import (
    _ABORTABLE,
    CAP_MESSAGES,
    EXECUTORS,
    RACE_SKIPPED,
    SOLVER_MODES,
    BlockState,
    engines_for,
    make_pool,
    order_engines,
    run_block_task,
    run_gated_block_task,
)
from .solver import (
    _EPS,
    PREPROCESS_MODES,
    prepare_instance,
    stitch_instance,
)

__all__ = [
    "BatchRequest",
    "BatchResult",
    "BatchStats",
    "BatchScheduler",
    "solve_many",
    "last_batch_stats",
    "BATCH_KINDS",
]

#: kind -> (decomposition kind, per-block solver, scheduling mode).
#: ``"iterative"`` kinds search k = 1, 2, ... per block (speculatively
#: above the frontier when workers are idle); ``"oneshot"`` kinds run
#: exactly one task per block; ``"check"`` kinds run one fixed-k check
#: per block and cancel the instance's remaining tasks on the first
#: rejecting block.
_KIND_TABLE = {
    "hw": ("hd", "check-hd", "iterative"),
    "ghw": ("ghd", "check-ghd", "iterative"),
    "ghw-exact": ("ghd", "ghw-exact", "oneshot"),
    "fhw": ("fhd", "fhw-exact", "oneshot"),
    "bounds": ("fhd", "heuristic-bounds", "oneshot"),
    "check-hd": ("hd", "check-hd", "check"),
    "check-ghd": ("ghd", "check-ghd", "check"),
    "check-fhd-bd": ("fhd", "check-fhd-bd", "check"),
}

#: The request kinds :func:`solve_many` accepts.  The width kinds
#: (``"hw"``, ``"ghw"``, ``"ghw-exact"``, ``"fhw"``, ``"bounds"``)
#: mirror :func:`~.solver.solve_width`; the ``"check-*"`` kinds answer
#: Check(X, k) for the ``k`` given in ``params``.
BATCH_KINDS = tuple(_KIND_TABLE)

#: Sentinel for a block slot whose task has not finished (None is a
#: legitimate check verdict, so it cannot mark pending slots).
_PENDING = object()

_LAST_BATCH_STATS = None


def last_batch_stats():
    """The :class:`BatchStats` of the most recent batch run, or None.

    Returns
    -------
    BatchStats or None
        Statistics of the last :meth:`BatchScheduler.run` completed in
        this process (the CLI ``repro batch --pipeline-stats`` reads
        this), or None when no batch has run yet.
    """
    return _LAST_BATCH_STATS


@dataclass
class BatchRequest:
    """One width query of a batch.

    Parameters
    ----------
    hypergraph : Hypergraph
        The instance to solve.
    kind : str, optional
        One of :data:`BATCH_KINDS` (default ``"ghw"``).
    params : dict, optional
        Extra keyword arguments for the underlying solver (e.g.
        ``{"kmax": 3}`` for width searches, ``{"k": 2}`` — required —
        for check kinds, ``{"vertex_limit": 12}`` for the exact
        oracles, ``{"cost": "integral"}`` for bounds).
    label : str, optional
        Display name for results and the CLI (defaults to the
        hypergraph's own name).
    solver : str, optional
        Per-request solver mode override — one of
        :data:`~repro.pipeline.solve.SOLVER_MODES` (``"bb"``, ``"sat"``,
        ``"portfolio"``).  ``None`` (default) inherits the batch-wide
        mode of :class:`BatchScheduler` / :func:`solve_many`.
    """

    hypergraph: Hypergraph
    kind: str = "ghw"
    params: dict = field(default_factory=dict)
    label: str | None = None
    solver: str | None = None

    @classmethod
    def of(cls, spec) -> "BatchRequest":
        """Normalize a request spec into a :class:`BatchRequest`.

        Parameters
        ----------
        spec : BatchRequest or Hypergraph or tuple or Mapping
            Accepted shapes: a ready request; a bare hypergraph
            (solved as ``"ghw"``); ``(hypergraph, kind)`` or
            ``(hypergraph, kind, params)`` tuples; or a mapping with
            the constructor's keys.

        Returns
        -------
        BatchRequest

        Raises
        ------
        TypeError
            If the spec matches none of the accepted shapes.
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, Hypergraph):
            return cls(spec)
        if isinstance(spec, Mapping):
            return cls(**spec)
        if isinstance(spec, (tuple, list)) and spec and len(spec) <= 3:
            return cls(*spec)
        raise TypeError(
            "a batch request is a BatchRequest, a Hypergraph, a "
            "(hypergraph, kind[, params]) tuple, or a mapping of "
            f"BatchRequest fields; got {spec!r}"
        )

    @property
    def name(self) -> str:
        """The request's display name (label, hypergraph name, or kind)."""
        if self.label:
            return self.label
        if isinstance(self.hypergraph, Hypergraph) and self.hypergraph.name:
            return self.hypergraph.name
        return self.kind


@dataclass
class BatchResult:
    """Per-request result handle, resolved by the batch run.

    Handed out by :meth:`BatchScheduler.submit` immediately; the batch
    fills in ``value`` or ``error`` as the run progresses, so a failing
    request never disturbs its siblings' handles.

    Attributes
    ----------
    index : int
        Position of the request in the batch (results keep input order).
    request : BatchRequest
        The normalized request.
    value : object
        The same value the corresponding :class:`~.solver.WidthSolver`
        method returns: ``(width, decomposition)`` for ``hw`` / ``ghw``
        / ``ghw-exact`` / ``fhw``, ``(lower, upper, decomposition)``
        for ``bounds``, and ``Decomposition | None`` for check kinds.
    error : Exception or None
        The failure of this request, if any.
    """

    index: int
    request: BatchRequest
    value: object = None
    error: Exception | None = None
    _resolved: bool = False

    @property
    def done(self) -> bool:
        """Whether the batch has resolved this request yet."""
        return self._resolved

    @property
    def ok(self) -> bool:
        """Whether the request finished without an error."""
        return self._resolved and self.error is None

    def unwrap(self):
        """The value, re-raising the request's error if it failed.

        Returns
        -------
        object
            ``value`` when the request succeeded.

        Raises
        ------
        RuntimeError
            If the batch has not been run yet.
        Exception
            The request's own error, when it failed.
        """
        if not self._resolved:
            raise RuntimeError(
                "request not resolved yet; call BatchScheduler.run() first"
            )
        if self.error is not None:
            raise self.error
        return self.value

    def _resolve(self, value=None, error=None) -> None:
        self.value = value
        self.error = error
        self._resolved = True


@dataclass
class BatchStats:
    """Aggregate statistics of one batch run.

    Attributes
    ----------
    requests : int
        Number of requests in the batch.
    kinds : dict
        Request count per kind.
    failures : int
        Requests that resolved with an error.
    blocks : int
        Total blocks produced by the up-front split stage.
    tasks_run : int
        Per-block tasks actually executed.
    speculative_checks : int
        Tasks submitted above a block's confirmed-k frontier.
    tasks_cancelled : int
        Tasks avoided by early rejection or settling: pool futures
        cancelled before starting plus check-mode blocks never
        submitted once a sibling block rejected.
    tasks_remote : int
        Tasks dispatched to remote workers (``executor="remote"``
        only; includes re-dispatches of requeued tasks).
    tasks_local_fallback : int
        Remote-executor tasks that ran on the driver's local fallback
        pool because no worker was registered.
    requeued_tasks : int
        Tasks requeued onto surviving workers because the worker
        running them died mid-flight.
    remote_workers : int
        Distinct remote workers that executed at least one task.
    bounds : str
        The batch-wide bounds pre-pass mode.
    bounds_seconds : float
        Wall-clock of the pre-pass over every instance (part of
        ``prepare_seconds``).
    bounds_ks_pruned : int
        Candidate k values the pre-pass settled without an exact check.
    bounds_checks_avoided : int
        Exact block solves the pre-pass made unnecessary.
    bounds_blocks_decided : int
        Blocks whose clique lower bound met a validated portfolio
        witness (the exact engine never ran for them).
    anytime_answers : int
        Requests for which the pre-pass held a full witness set — a
        valid (if possibly non-optimal) answer — before any exact
        check ran.
    store_instance_hits : int
        Requests answered entirely from the persistent result store
        (the instance fast path: no prepare, no bounds, no tasks).
    store_blocks_seeded : int
        Blocks whose verdict was seeded from the store, skipping both
        the bounds pre-pass and the exact engine for them.
    store_records_appended : int
        Records the batch wrote back to the store during this run.
    prepare_seconds, solve_seconds, stitch_seconds, total_seconds : float
        Wall-clock per stage; ``solve_seconds`` is the drive loop
        (stitching happens inside it on the driver thread and is also
        tracked separately), ``total_seconds`` covers the whole run.
    lp_solves, set_cover_solves, cache_hits, cache_misses : int
        Engine activity during the batch (delta of
        :func:`repro.engine.stats`; near zero for workers of a process
        pool, which keep their own cache domains).
    """

    requests: int = 0
    jobs: int = 1
    executor: str = "thread"
    preprocess: str = "full"
    kinds: dict = field(default_factory=dict)
    failures: int = 0
    blocks: int = 0
    tasks_run: int = 0
    speculative_checks: int = 0
    tasks_cancelled: int = 0
    tasks_remote: int = 0
    tasks_local_fallback: int = 0
    requeued_tasks: int = 0
    remote_workers: int = 0
    bounds: str = "none"
    bounds_seconds: float = 0.0
    bounds_ks_pruned: int = 0
    bounds_checks_avoided: int = 0
    bounds_blocks_decided: int = 0
    anytime_answers: int = 0
    store_instance_hits: int = 0
    store_blocks_seeded: int = 0
    store_records_appended: int = 0
    prepare_seconds: float = 0.0
    solve_seconds: float = 0.0
    stitch_seconds: float = 0.0
    total_seconds: float = 0.0
    lp_solves: int = 0
    set_cover_solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Cover-cache hit rate over the batch (0.0 when no lookups)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def requests_per_second(self) -> float:
        """Throughput over the whole run (0.0 for an instant batch)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.requests / self.total_seconds

    def as_dict(self) -> dict:
        """The statistics as a JSON-ready dictionary."""
        return {
            "requests": self.requests,
            "jobs": self.jobs,
            "executor": self.executor,
            "preprocess": self.preprocess,
            "kinds": dict(self.kinds),
            "failures": self.failures,
            "blocks": self.blocks,
            "tasks_run": self.tasks_run,
            "speculative_checks": self.speculative_checks,
            "tasks_cancelled": self.tasks_cancelled,
            "tasks_remote": self.tasks_remote,
            "tasks_local_fallback": self.tasks_local_fallback,
            "requeued_tasks": self.requeued_tasks,
            "remote_workers": self.remote_workers,
            "bounds": self.bounds,
            "bounds_seconds": self.bounds_seconds,
            "bounds_ks_pruned": self.bounds_ks_pruned,
            "bounds_checks_avoided": self.bounds_checks_avoided,
            "bounds_blocks_decided": self.bounds_blocks_decided,
            "anytime_answers": self.anytime_answers,
            "store_instance_hits": self.store_instance_hits,
            "store_blocks_seeded": self.store_blocks_seeded,
            "store_records_appended": self.store_records_appended,
            "prepare_seconds": self.prepare_seconds,
            "solve_seconds": self.solve_seconds,
            "stitch_seconds": self.stitch_seconds,
            "total_seconds": self.total_seconds,
            "requests_per_second": round(self.requests_per_second, 4),
            "lp_solves": self.lp_solves,
            "set_cover_solves": self.set_cover_solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Instance:
    """Internal per-request state machine of a batch run."""

    __slots__ = (
        "index",
        "request",
        "result",
        "dkind",
        "solver",
        "solver_mode",
        "engines",
        "mode",
        "params",
        "k",
        "kmax",
        "reduced",
        "blocks",
        "caps",
        "states",
        "block_results",
        "submitted",
        "in_flight",
        "rejected",
        "finalized",
        "bounds_seconds",
        "bounds_ks_pruned",
        "bounds_checks_avoided",
        "bounds_blocks_decided",
        "anytime",
        "store",
        "store_hit",
        "store_seeded",
    )

    def __init__(self, index: int, request: BatchRequest) -> None:
        self.index = index
        self.request = request
        self.result = BatchResult(index, request)
        self.blocks = None
        self.in_flight = set()
        self.rejected = False
        self.finalized = False
        self.bounds_seconds = 0.0
        self.bounds_ks_pruned = 0
        self.bounds_checks_avoided = 0
        self.bounds_blocks_decided = 0
        self.anytime = False
        self.store = None
        self.store_hit = False
        self.store_seeded = set()

    # -- lifecycle -----------------------------------------------------
    @property
    def failed(self) -> bool:
        return self.result._resolved and self.result.error is not None

    @property
    def active(self) -> bool:
        return not self.finalized and not self.failed

    def fail(self, error: Exception) -> None:
        """Resolve this request with an error; siblings are untouched."""
        if not self.result._resolved:
            self.result._resolve(error=error)
        self.finalized = True

    def prepare(
        self,
        preprocess: str,
        solver_mode: str = "bb",
        bounds: str = "portfolio",
        store: ResultStore | None = None,
    ) -> None:
        """Validate the request and run its reduce + split + bounds stages.

        With a ``store``, a persisted full answer short-circuits the
        whole pipeline (the instance fast path: no reduce, no bounds,
        no tasks), and persisted per-block verdicts seed the scheduler
        state so only genuinely new blocks reach the bounds pass and
        the exact engines.
        """
        self.store = store
        request = self.request
        if request.kind not in _KIND_TABLE:
            raise ValueError(
                f"kind must be one of {BATCH_KINDS}; got {request.kind!r}"
            )
        if not isinstance(request.hypergraph, Hypergraph):
            raise TypeError(
                f"request {self.index} has no hypergraph: "
                f"{request.hypergraph!r}"
            )
        mode = request.solver if request.solver is not None else solver_mode
        if mode not in SOLVER_MODES:
            raise ValueError(
                f"solver must be one of {SOLVER_MODES}; got {mode!r}"
            )
        self.dkind, self.solver, self.mode = _KIND_TABLE[request.kind]
        self.solver_mode = mode
        self.engines = engines_for(self.solver, mode)
        params = dict(request.params or {})
        if request.kind == "bounds":
            cost = params.get("cost", "fractional")
            self.dkind = "fhd" if cost == "fractional" else "ghd"
        self.kmax = params.pop("kmax", None)
        self.k = None
        if self.mode == "check":
            if "k" not in params:
                raise ValueError(
                    f"{request.kind!r} requests need params={{'k': ...}}"
                )
            self.k = params.pop("k")
            if self.k < 1:
                raise ValueError("width bound k must be >= 1")
        self.params = params
        if self._load_from_store():
            return
        self.reduced, self.blocks = prepare_instance(
            request.hypergraph, self.dkind, preprocess
        )
        n = len(self.blocks)
        if self.mode == "iterative":
            self.caps = [
                b.hypergraph.num_edges if self.kmax is None else self.kmax
                for b in self.blocks
            ]
            self.states = [BlockState() for _ in range(n)]
        else:
            self.block_results = [_PENDING] * n
            self.submitted = [False] * n
        self._seed_from_store()
        self._seed_from_bounds(bounds)

    def _load_from_store(self) -> bool:
        """Serve the whole request from a persisted instance record.

        The stored answer only counts when its witness re-validates
        against this request's hypergraph, kind and width — a corrupt
        or mismatched record is a miss, and the instance proceeds to
        solve normally.  A hit resolves the result before any reduce,
        bounds or engine work happens (and therefore with zero LP
        solves and zero check tasks — the property benchmark E23
        asserts for a restarted ``repro serve``).
        """
        store = self.store
        if store is None:
            return False
        request = self.request
        value = store.get_instance(
            request.hypergraph, request.kind, self.solver_mode, request.params
        )
        if not isinstance(value, dict):
            return False
        h = request.hypergraph
        answer = None
        if self.mode == "check":
            if not value.get("accepted"):
                # Rejections have no witness to re-validate; they are
                # served as trusted *self-authored* data: CRC-protected
                # against corruption and keyed by the collision-resistant
                # canonical hash, but a deliberately tampered log could
                # forge one (delete the store to recompute from scratch).
                answer = (None,)
            else:
                witness = checked_witness(
                    h, value.get("witness"), self.dkind,
                    width=float(self.k) + _EPS,
                )
                if witness is not None:
                    answer = (witness,)
        elif request.kind == "bounds":
            lower, width = value.get("lower"), value.get("width")
            if isinstance(lower, (int, float)) and isinstance(
                width, (int, float)
            ):
                witness = checked_witness(
                    h, value.get("witness"), self.dkind,
                    width=float(width) + _EPS,
                )
                if witness is not None:
                    # The witness is re-validated but the stored lower
                    # bound cannot be; clamp it to the witness width so a
                    # bad record can never yield lower > upper.
                    lower = min(float(lower), witness.width())
                    answer = ((lower, witness.width(), witness),)
        else:
            width = value.get("width")
            if isinstance(width, (int, float)) and width >= 1 - _EPS:
                witness = checked_witness(
                    h, value.get("witness"), self.dkind,
                    width=float(width) + _EPS,
                )
                if witness is not None:
                    if request.kind in ("hw", "ghw", "ghw-exact"):
                        width = int(width)
                    answer = ((width, witness),)
        if answer is None:
            return False
        self.result._resolve(answer[0])
        self.finalized = True
        self.store_hit = True
        return True

    def _seed_from_store(self) -> None:
        """Seed per-block state from persisted verdicts and oracle entries.

        Store-decided blocks are excluded from the bounds pre-pass
        (which runs LP solves) and from task generation; persisted
        cover-oracle exports warm each block's oracle cache before any
        engine runs.  ``"bounds"`` requests only use instance records —
        their 3-tuple block results have no store encoding.
        """
        store = self.store
        if store is None or self.request.kind == "bounds":
            return
        for block in self.blocks:
            entries = store.get_oracle_entries(block.hypergraph)
            if entries:
                from ..engine.oracle import oracle_for  # lazy: no cycles

                oracle_for(block.hypergraph).import_entries(entries)
        if self.mode == "iterative":
            for b, block in enumerate(self.blocks):
                hit = store.get_block(
                    block.hypergraph, self.dkind, self.solver_mode,
                    self.params,
                )
                if hit is None:
                    continue
                width, witness = hit
                cap = self.caps[b]
                state = BlockState()
                # One record seeds the whole k-search: every k below
                # the stored width is a rejection by monotonicity.
                for k in range(1, min(width, cap + 1)):
                    state.results[k] = None
                if width <= cap:
                    state.results[width] = witness
                state.settle()
                self.states[b] = state
                self.store_seeded.add(b)
        elif self.mode == "oneshot":
            for b, block in enumerate(self.blocks):
                hit = store.get_block_exact(
                    block.hypergraph, self.dkind, self.solver_mode,
                    self.params,
                )
                if hit is not None:
                    self.block_results[b] = hit
                    self.submitted[b] = True
                    self.store_seeded.add(b)
        else:  # check
            for b, block in enumerate(self.blocks):
                hit = store.get_check(
                    block.hypergraph, self.dkind, self.k,
                    self.solver_mode, self.params,
                )
                if hit is None:
                    continue
                accepted, witness = hit
                self.store_seeded.add(b)
                if not accepted:
                    self.rejected = True
                    break
                self.block_results[b] = witness
                self.submitted[b] = True

    def _seed_from_bounds(self, bounds: str) -> None:
        """Run the bounds pre-pass and fold its verdicts into the state.

        Mirrors :class:`~.solver.WidthSolver` exactly: iterative kinds
        get pre-seeded :class:`~.solve.BlockState` (lower-bound start,
        witness-capped speculation, instant settling when decided);
        oneshot exact oracles pre-fill decided blocks; check kinds
        reject outright when a block's lower bound exceeds k and accept
        blocks whose validated witness already fits (complete hd/ghd
        checks without enumeration caps only).  ``"bounds"`` requests
        skip the pass — they *are* the heuristic.  Blocks already
        decided by the store are excluded: their verdicts stand, and
        bounding them again would spend LP solves for nothing.
        """
        if bounds == "none" or self.request.kind == "bounds":
            return
        if self.rejected:
            return  # store-seeded check rejection: nothing left to bound
        t0 = time.perf_counter()
        bounds_map = {
            b: compute_block_bounds(
                block.hypergraph, self.dkind, mode=bounds
            )
            for b, block in enumerate(self.blocks)
            if b not in self.store_seeded
        }
        self.bounds_seconds = time.perf_counter() - t0
        if self.blocks and all(
            bounds_map[b].witness is not None
            if b in bounds_map
            else self._seeded_witness(b)
            for b in range(len(self.blocks))
        ):
            self.anytime = True
        if self.mode == "iterative":
            for b, bound in bounds_map.items():
                cap = self.caps[b]
                state = seeded_block_state(bound, cap)
                self.states[b] = state
                below = min(bound.lower_k - 1, cap)
                self.bounds_ks_pruned += max(0, below)
                self.bounds_checks_avoided += max(0, below)
                if bound.upper_k is not None and bound.upper_k <= cap:
                    self.bounds_ks_pruned += cap - bound.upper_k + 1
                if state.width is not None:
                    self.bounds_blocks_decided += 1
                    self.bounds_checks_avoided += 1
                    self._persist_block(b)
        elif self.mode == "oneshot":
            for i, bound in bounds_map.items():
                if bound.decided:
                    self.block_results[i] = (bound.upper, bound.witness)
                    self.submitted[i] = True
                    self.bounds_blocks_decided += 1
                    self.bounds_checks_avoided += 1
                    self._persist_block(i)
        else:  # check
            if any(b.lower > self.k + _EPS for b in bounds_map.values()):
                self.rejected = True
                self.bounds_checks_avoided += len(self.blocks)
                return
            if self.dkind in ("hd", "ghd") and set(self.params) <= {"method"}:
                for i, bound in bounds_map.items():
                    if bound.witness is not None and (
                        bound.upper <= self.k + _EPS
                    ):
                        self.block_results[i] = bound.witness
                        self.submitted[i] = True
                        self.bounds_checks_avoided += 1
                        self._persist_block(i)

    def _seeded_witness(self, b: int) -> bool:
        """Whether store-seeded block ``b`` carries a usable witness."""
        if self.mode == "iterative":
            return self.states[b].witness is not None
        value = self.block_results[b]
        if value is _PENDING or value is None:
            return False
        return True

    def _persist_block(self, b: int) -> None:
        """Write one decided block's verdict back to the store.

        Idempotent (the store skips existing keys) and best-effort: a
        full disk must not fail the request that just solved.
        """
        store = self.store
        if store is None or self.request.kind == "bounds":
            return
        block_h = self.blocks[b].hypergraph
        try:
            if self.mode == "iterative":
                state = self.states[b]
                if state.width is not None and state.witness is not None:
                    store.put_block(
                        block_h, self.dkind, self.solver_mode, self.params,
                        state.width, state.witness,
                    )
            elif self.mode == "oneshot":
                value = self.block_results[b]
                if value is not _PENDING:
                    width, witness = value
                    store.put_block_exact(
                        block_h, self.dkind, self.solver_mode, self.params,
                        float(width), witness,
                    )
            else:
                value = self.block_results[b]
                if value is not _PENDING:
                    store.put_check(
                        block_h, self.dkind, self.k, self.solver_mode,
                        self.params, value,
                    )
        except OSError:  # pragma: no cover - disk trouble is best-effort
            pass

    def _persist_instance(self, value) -> None:
        """Write the stitched full answer (and oracle exports) back."""
        store = self.store
        if store is None:
            return
        request = self.request
        try:
            if self.mode == "check":
                payload = {
                    "accepted": value is not None,
                    "witness": None if value is None else value.as_dict(),
                }
            elif request.kind == "bounds":
                lower, width, witness = value
                payload = {
                    "lower": float(lower),
                    "width": float(width),
                    "witness": witness.as_dict(),
                }
            else:
                width, witness = value
                payload = {"width": width, "witness": witness.as_dict()}
            store.put_instance(
                request.hypergraph, request.kind, self.solver_mode,
                request.params, payload,
            )
            from ..engine.oracle import oracle_for  # lazy: no cycles

            for block in self.blocks or ():
                entries = oracle_for(block.hypergraph).export_entries(
                    limit=512
                )
                if entries:
                    store.put_oracle_entries(block.hypergraph, entries)
        except OSError:  # pragma: no cover - disk trouble is best-effort
            pass

    # -- task generation ----------------------------------------------
    def task_params(self, k: int | None) -> dict:
        if self.mode == "check":
            return {"k": self.k, **self.params}
        if self.mode == "iterative":
            return {"k": k, **self.params}
        return dict(self.params)

    def next_tasks(self, budget: int) -> list[tuple[int, int, int | None]]:
        """Up to ``budget`` useful (priority, block, k) task keys.

        Priority 0 tasks are required; higher priorities are
        speculative cross-k checks (distance above the block's
        confirmed frontier).
        """
        if not self.active or self.blocks is None or budget <= 0:
            return []
        out: list[tuple[int, int, int | None]] = []
        if self.mode in ("oneshot", "check"):
            if self.rejected:
                return []
            for b in range(len(self.blocks)):
                if not self.submitted[b] and (b, None) not in self.in_flight:
                    out.append((0, b, None))
                    if len(out) >= budget:
                        break
            return out
        for b, state in enumerate(self.states):
            if state.width is not None:
                continue
            base = state.next_k_unconfirmed()
            ceiling = state.ceiling(self.caps[b])
            k = base
            while k <= ceiling and len(out) < budget:
                if k not in state.results and (b, k) not in self.in_flight:
                    out.append((k - base, b, k))
                k += 1
        out.sort()
        return out[:budget]

    # -- completion ----------------------------------------------------
    def record(self, b: int, k: int | None, value) -> None:
        """Fold one finished task back into the instance state.

        Settled verdicts are spilled to the result store (when one is
        attached) right here, on the settle *transition* — a crash
        later in the batch still keeps every verdict paid for so far.
        """
        if self.mode == "iterative":
            state = self.states[b]
            state.results[k] = value
            state.settle()
            if state.width is not None:
                self._persist_block(b)
        else:
            self.block_results[b] = value
            if self.mode == "check" and value is None:
                self.rejected = True
            self._persist_block(b)

    def has_result(self, b: int, k: int | None) -> bool:
        """Whether task ``(b, k)`` already recorded an answer.

        Raced twins check this before folding their result in: only the
        first engine home per task records; later twins are discarded.
        """
        if self.blocks is None:
            return False
        if self.mode == "iterative":
            return k in self.states[b].results
        return self.block_results[b] is not _PENDING

    def unsubmitted_blocks(self) -> int:
        """Blocks never handed to the pool (check-mode early rejection)."""
        if self.mode == "iterative":
            return 0
        return sum(
            1
            for b, done in enumerate(self.submitted)
            if not done and (b, None) not in self.in_flight
        )

    @property
    def solved(self) -> bool:
        """Whether every block task this instance needs has finished."""
        if self.blocks is None:
            return False
        if self.mode == "iterative":
            return all(state.width is not None for state in self.states)
        if self.mode == "check" and self.rejected:
            return True
        return all(r is not _PENDING for r in self.block_results)

    @property
    def exhausted(self) -> bool:
        """An iterative block ran out of cap with rejections everywhere."""
        if self.blocks is None or self.mode != "iterative":
            return False
        return any(
            state.width is None
            and state.next_k_unconfirmed() > self.caps[b]
            for b, state in enumerate(self.states)
        )

    def cap_error(self) -> ValueError:
        message = CAP_MESSAGES.get(
            self.request.kind,
            "no decomposition of width <= {cap} found (cap too small?)",
        )
        failed = min(
            self.caps[b]
            for b, state in enumerate(self.states)
            if state.width is None
        )
        return ValueError(message.format(cap=failed))

    # -- stitching -----------------------------------------------------
    def finalize(self) -> None:
        """Stitch the block witnesses deterministically and resolve."""
        try:
            value = self._assemble()
        except Exception as exc:  # validation failures stay per-request
            self.result._resolve(error=exc)
            self.finalized = True
            return
        self.result._resolve(value)
        self.finalized = True
        self._persist_instance(value)

    def _stitch(self, witnesses, width):
        return stitch_instance(
            self.request.hypergraph,
            self.reduced,
            self.blocks,
            witnesses,
            self.dkind,
            width,
        )

    def _assemble(self):
        kind = self.request.kind
        if self.mode == "check":
            if self.rejected:
                return None
            return self._stitch(self.block_results, self.k + _EPS)
        if self.mode == "iterative":
            width = max(1, *(s.width for s in self.states))
            final = self._stitch(
                [s.witness for s in self.states], width + _EPS
            )
            return width, final
        results = self.block_results
        if kind == "bounds":
            lower = max(1.0, *(low for low, _u, _d in results))
            upper = max(1.0, *(up for _l, up, _d in results))
            final = self._stitch(
                [d for _l, _u, d in results], upper + _EPS
            )
            return lower, final.width(), final
        if kind == "ghw-exact":
            width = max(1, *(int(k) for k, _w in results))
        else:  # fhw
            width = max(1.0, *(float(k) for k, _w in results))
        final = self._stitch([w for _k, w in results], width + _EPS)
        return width, final


class BatchScheduler:
    """Shared-pool scheduler for a batch of width queries.

    Collects requests via :meth:`submit`, then :meth:`run` drives them
    to completion: all reduce/split work happens up front, after which
    one worker pool interleaves per-block tasks from every instance —
    cross-instance, cross-block, and (for width searches) speculative
    cross-k.  Results land in the :class:`BatchResult` handles returned
    by :meth:`submit`; a failing request resolves with its error and
    never cancels sibling requests.

    Parameters
    ----------
    jobs : int, optional
        Worker count of the shared pool (default 1: one worker, still
        one shared warm cache domain across the whole batch).
    preprocess : str, optional
        Pipeline preprocess mode applied to every instance (default
        ``"full"``).
    executor : str, optional
        ``"thread"`` (default; all workers share the warm
        SearchContext/CoverOracle caches), ``"process"`` (GIL-free,
        one cache domain per worker process, warmed over the batch's
        lifetime), or ``"remote"`` (dispatch the same task payloads
        to the :mod:`repro.dist` worker fleet; degrades to a local
        thread pool while no worker is registered).
    solver : str, optional
        Batch-wide solver mode for check-style tasks — one of
        :data:`~repro.pipeline.solve.SOLVER_MODES`.  ``"bb"`` (default)
        runs branch-and-bound, ``"sat"`` the CNF engine, and
        ``"portfolio"`` races both per ``(block, k)`` task: the first
        engine home records the answer and its twin is cancelled
        (dequeued, or aborted cooperatively for SAT engines on the
        thread executor) — exactly one cancellation is counted per
        raced task that produced an answer.  Requests can override the
        mode individually via :attr:`BatchRequest.solver`.
    bounds : str, optional
        Batch-wide bounds pre-pass mode — one of
        :data:`~repro.pipeline.bounds.BOUNDS_MODES` (default
        ``"portfolio"``).  Every instance's blocks are bounded during
        the prepare stage; the seeds start each k-search at the block
        lower bound, cap speculation at the portfolio witness, and skip
        the exact engine outright for decided blocks.  Answers are
        identical in every mode.
    store : ResultStore or str, optional
        Persistent result store to seed from and write back to.  A
        path opens a :class:`~repro.store.ResultStore` at that
        directory for the scheduler's lifetime.  Persisted answers
        short-circuit whole requests (the instance fast path) or
        single blocks (skipping their bounds pre-pass and exact
        engine); every settled verdict is appended back, so a
        restarted process answers repeats without solving anything.
    """

    def __init__(
        self,
        jobs: int | None = None,
        preprocess: str = "full",
        executor: str = "thread",
        solver: str = "bb",
        bounds: str = "portfolio",
        store: ResultStore | str | None = None,
    ) -> None:
        if preprocess not in PREPROCESS_MODES:
            raise ValueError(
                f"preprocess must be one of {PREPROCESS_MODES}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}; got {executor!r}"
            )
        if solver not in SOLVER_MODES:
            raise ValueError(f"solver must be one of {SOLVER_MODES}")
        if bounds not in BOUNDS_MODES:
            raise ValueError(f"bounds must be one of {BOUNDS_MODES}")
        self.jobs = max(1, int(jobs or 1))
        self.preprocess = preprocess
        self.executor = executor
        self.solver = solver
        self.bounds = bounds
        if store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.instances: list[_Instance] = []
        self.last_stats: BatchStats | None = None

    def submit(self, request) -> BatchResult:
        """Add one request to the batch.

        Parameters
        ----------
        request : BatchRequest or Hypergraph or tuple or Mapping
            Anything :meth:`BatchRequest.of` accepts.

        Returns
        -------
        BatchResult
            The request's result handle, resolved during :meth:`run`.
            A malformed spec resolves the handle with its error
            immediately instead of raising, so one bad request cannot
            poison the rest of the batch.
        """
        index = len(self.instances)
        try:
            normalized = BatchRequest.of(request)
        except Exception as exc:
            instance = _Instance(index, BatchRequest(None, "ghw"))
            instance.fail(exc)
        else:
            instance = _Instance(index, normalized)
        self.instances.append(instance)
        return instance.result

    # ------------------------------------------------------------------
    def _pool(self):
        return make_pool(self.executor, self.jobs)

    def _cancel_instance(self, instance, in_flight, stats, aborts) -> None:
        """Cancel an instance's pending pool work; count what it saved."""
        stats.tasks_cancelled += instance.unsubmitted_blocks()
        for future, (i, b, k, _e) in list(in_flight.items()):
            if i != instance.index:
                continue
            if future.cancel():
                stats.tasks_cancelled += 1
            elif future in aborts:
                # Running SAT engine: tell it to stop and stop tracking
                # it — its SolveAborted outcome is not a result.
                del in_flight[future]
                instance.in_flight.discard((b, k))
                aborts.pop(future).set()
                stats.tasks_cancelled += 1

    def _cancel_block(self, instance, block, in_flight, stats, aborts) -> None:
        """Cancel a settled block's speculative higher-k checks."""
        for future, (i, b, k, _e) in list(in_flight.items()):
            if i != instance.index or b != block:
                continue
            if future.cancel():
                stats.tasks_cancelled += 1
            elif future in aborts:
                del in_flight[future]
                instance.in_flight.discard((b, k))
                aborts.pop(future).set()
                stats.tasks_cancelled += 1

    def _cancel_twins(self, index, block, k, in_flight, aborts) -> None:
        """Drop the raced losers of a task whose winner just recorded.

        The caller counts the cancellation (exactly ``len(engines) - 1``
        per settled raced task); this only stops and untracks the twin
        futures, whether queued (dequeued before starting), running SAT
        (aborted cooperatively) or running branch-and-bound (result
        discarded).
        """
        for future, key in list(in_flight.items()):
            if key[:3] == (index, block, k):
                del in_flight[future]
                future.cancel()
                event = aborts.pop(future, None)
                if event is not None:
                    event.set()

    def _finalize_ready(self, stats) -> None:
        for instance in self.instances:
            if instance.active and instance.solved and not instance.in_flight:
                t0 = time.perf_counter()
                instance.finalize()
                stats.stitch_seconds += time.perf_counter() - t0

    def _drive(self, stats: BatchStats) -> None:
        with self._pool() as pool:
            in_flight: dict = {}  # future -> (instance, block, k, engine)
            aborts: dict = {}
            gates: dict = {}  # (instance, block, k) -> first-answer gate
            threaded = self.executor == "thread"
            while any(inst.active for inst in self.instances):
                # Budget in *tasks*: a raced task holds one slot however
                # many engine futures it fans out to, so with jobs=J the
                # workers run the J predicted winners while their twins
                # queue behind them (cancelled before starting when the
                # prediction holds).
                tasks_in_flight = len({key[:3] for key in in_flight.values()})
                free = self.jobs - tasks_in_flight
                if free > 0:
                    candidates = []
                    for inst in self.instances:
                        if not inst.active or inst.solved:
                            continue
                        for prio, b, k in inst.next_tasks(free):
                            candidates.append((prio, inst.index, b, k))
                    candidates.sort()
                    submissions = []
                    for prio, i, b, k in candidates[:free]:
                        inst = self.instances[i]
                        engines = order_engines(
                            inst.engines, inst.blocks[b].hypergraph
                        )
                        for rank, engine in enumerate(engines):
                            submissions.append((rank, prio, i, b, k, engine))
                        inst.in_flight.add((b, k))
                        if inst.mode in ("oneshot", "check"):
                            inst.submitted[b] = True
                        if prio > 0:
                            stats.speculative_checks += 1
                    # All predicted winners enter the pool queue before
                    # any twin, so the twins only start on spare workers.
                    submissions.sort(key=lambda s: s[0])
                    for _rank, _prio, i, b, k, engine in submissions:
                        inst = self.instances[i]
                        task_params = inst.task_params(k)
                        raced = len(inst.engines) > 1
                        event = None
                        if raced and engine in _ABORTABLE and threaded:
                            event = threading.Event()
                            task_params["abort"] = event
                        if raced and threaded:
                            # The gate lets a twin dequeued right after
                            # its sibling answered skip instead of
                            # burning a full (unabortable) solve.
                            gate = gates.setdefault(
                                (i, b, k), threading.Event()
                            )
                            future = pool.submit(
                                run_gated_block_task,
                                gate,
                                engine,
                                inst.blocks[b].hypergraph,
                                task_params,
                            )
                        else:
                            future = pool.submit(
                                run_block_task,
                                engine,
                                inst.blocks[b].hypergraph,
                                task_params,
                            )
                        in_flight[future] = (i, b, k, engine)
                        if event is not None:
                            aborts[future] = event
                if not in_flight:
                    # Nothing running and nothing submittable: settle
                    # exhausted caps and stitch whatever completed.
                    for inst in self.instances:
                        if inst.active and not inst.solved:
                            if inst.exhausted:
                                inst.fail(inst.cap_error())
                            else:  # pragma: no cover - defensive
                                inst.fail(
                                    RuntimeError(
                                        "batch scheduler stalled (bug)"
                                    )
                                )
                    self._finalize_ready(stats)
                    continue
                done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    if future not in in_flight:
                        continue  # raced twin untracked when its winner won
                    i, b, k, _engine = in_flight.pop(future)
                    aborts.pop(future, None)
                    inst = self.instances[i]
                    racing = len(inst.engines) > 1
                    if future.cancelled():
                        inst.in_flight.discard((b, k))
                        continue
                    if racing and inst.has_result(b, k):
                        continue  # raced loser finishing after its winner
                    try:
                        value = future.result()
                    except Exception as exc:
                        inst.in_flight.discard((b, k))
                        stats.tasks_run += len(inst.engines) if racing else 1
                        if inst.active:
                            inst.fail(exc)
                            self._cancel_instance(
                                inst, in_flight, stats, aborts
                            )
                        continue
                    if value is RACE_SKIPPED:
                        continue  # gated twin; the sibling's answer is coming
                    inst.in_flight.discard((b, k))
                    # A raced task accounts for all of its engine runs at
                    # once; its losers are counted below, so the totals
                    # stay deterministic however the race resolves.
                    stats.tasks_run += len(inst.engines) if racing else 1
                    if not inst.active:
                        continue
                    # Cancel only on the *transition* to rejected/settled,
                    # so each avoided task is counted exactly once.
                    was_rejected = inst.rejected
                    was_settled = (
                        inst.mode == "iterative"
                        and inst.states[b].width is not None
                    )
                    inst.record(b, k, value)
                    if racing:
                        stats.tasks_cancelled += len(inst.engines) - 1
                        self._cancel_twins(i, b, k, in_flight, aborts)
                    if inst.mode == "check" and inst.rejected:
                        if not was_rejected:
                            self._cancel_instance(
                                inst, in_flight, stats, aborts
                            )
                    elif (
                        inst.mode == "iterative"
                        and inst.states[b].width is not None
                        and not was_settled
                    ):
                        self._cancel_block(inst, b, in_flight, stats, aborts)
                self._finalize_ready(stats)
            collect = getattr(pool, "remote_stats", None)
            if collect is not None:  # executor="remote": fold in fleet counters
                remote = collect()
                stats.tasks_remote = remote["tasks_remote"]
                stats.tasks_local_fallback = remote["tasks_local"]
                stats.requeued_tasks = remote["requeued_tasks"]
                stats.remote_workers = remote["workers_used"]

    def run(self) -> BatchStats:
        """Drive every submitted request to completion.

        Returns
        -------
        BatchStats
            Aggregate per-stage timings, task counters and engine-cache
            activity; also stored in ``last_stats`` and readable via
            :func:`last_batch_stats`.  Per-request outcomes are in the
            :class:`BatchResult` handles from :meth:`submit`.
        """
        from .. import engine  # lazy: keeps the pipeline package cycle-free

        global _LAST_BATCH_STATS
        stats = BatchStats(
            requests=len(self.instances),
            jobs=self.jobs,
            executor=self.executor,
            preprocess=self.preprocess,
            bounds=self.bounds,
        )
        baseline = engine.stats()
        store_baseline = (
            self.store.stats.records_appended
            if self.store is not None
            else 0
        )
        t_start = time.perf_counter()
        for instance in self.instances:
            if not instance.active:
                continue
            kind = instance.request.kind
            stats.kinds[kind] = stats.kinds.get(kind, 0) + 1
            try:
                instance.prepare(
                    self.preprocess, self.solver, self.bounds, self.store
                )
            except Exception as exc:
                instance.fail(exc)
        stats.blocks = sum(
            len(inst.blocks)
            for inst in self.instances
            if inst.blocks is not None
        )
        for inst in self.instances:
            stats.bounds_seconds += inst.bounds_seconds
            stats.bounds_ks_pruned += inst.bounds_ks_pruned
            stats.bounds_checks_avoided += inst.bounds_checks_avoided
            stats.bounds_blocks_decided += inst.bounds_blocks_decided
            stats.anytime_answers += 1 if inst.anytime else 0
            stats.store_instance_hits += 1 if inst.store_hit else 0
            stats.store_blocks_seeded += len(inst.store_seeded)
        stats.prepare_seconds = time.perf_counter() - t_start
        t_solve = time.perf_counter()
        self._drive(stats)
        stats.solve_seconds = time.perf_counter() - t_solve
        stats.total_seconds = time.perf_counter() - t_start
        stats.failures = sum(1 for inst in self.instances if inst.failed)
        if self.store is not None:
            stats.store_records_appended = (
                self.store.stats.records_appended - store_baseline
            )
        current = engine.stats()
        for key, attr in (
            ("lp_solves", "lp_solves"),
            ("set_cover_solves", "set_cover_solves"),
            ("cache_hits", "cache_hits"),
            ("cache_misses", "cache_misses"),
        ):
            setattr(stats, attr, current[key] - baseline.get(key, 0))
        self.last_stats = stats
        _LAST_BATCH_STATS = stats
        return stats


def solve_many(
    requests,
    *,
    jobs: int | None = None,
    preprocess: str = "full",
    executor: str = "thread",
    backend: str | None = None,
    solver: str = "bb",
    bounds: str = "portfolio",
    store: ResultStore | str | None = None,
) -> list[BatchResult]:
    """Solve a batch of width queries on one shared scheduler.

    The batched answers are exactly the per-instance
    :class:`~.solver.WidthSolver` answers; what changes is the serving
    cost: reduce/split runs up front for every instance, per-block
    tasks from different instances interleave on one worker pool, and
    (with the default thread executor) the whole batch shares one warm
    engine-cache domain.

    Parameters
    ----------
    requests : iterable
        Request specs — anything :meth:`BatchRequest.of` accepts:
        ``BatchRequest`` objects, bare hypergraphs, ``(hypergraph,
        kind[, params])`` tuples, or mappings.
    jobs : int, optional
        Worker count of the shared pool (default 1).
    preprocess : str, optional
        Pipeline preprocess mode for every instance (default
        ``"full"``).
    executor : str, optional
        ``"thread"`` (default), ``"process"``, or ``"remote"`` (the
        :mod:`repro.dist` worker fleet; see
        :data:`~repro.pipeline.solve.EXECUTORS`).
    backend : str, optional
        LP backend for the batch (``"auto"``, ``"scipy"``,
        ``"purepython"``); the process-global engine configuration is
        restored afterwards.
    solver : str, optional
        Batch-wide solver mode for check-style tasks — ``"bb"``
        (default), ``"sat"`` or ``"portfolio"`` (race both engines per
        ``(block, k)`` task, first answer wins).  Individual requests
        override it via :attr:`BatchRequest.solver`; answers are the
        same whatever the mode, both engines being exact.
    bounds : str, optional
        Bounds pre-pass mode for every instance — ``"portfolio"``
        (default), ``"clique"`` or ``"none"``; see
        :data:`~repro.pipeline.bounds.BOUNDS_MODES`.  Only affects
        which exact checks run, never the answers.
    store : ResultStore or str, optional
        Persistent result store (or its directory path).  Persisted
        answers are served without solving; settled verdicts are
        written back.  A path passed here is opened for the call and
        closed afterwards; pass an open
        :class:`~repro.store.ResultStore` to keep it across calls.

    Returns
    -------
    list of BatchResult
        One resolved handle per request, in input order.  Failures are
        per-request (``result.error``); an empty request list returns
        an empty list.

    Raises
    ------
    ValueError
        If ``preprocess``, ``executor``, ``backend``, ``solver`` or
        ``bounds`` is invalid — batch-level configuration errors raise;
        per-request problems (including an unknown per-request solver
        override) do not.
    """
    from .. import engine  # lazy: keeps the pipeline package cycle-free

    owned_store = store is not None and not isinstance(store, ResultStore)
    scheduler = BatchScheduler(
        jobs=jobs,
        preprocess=preprocess,
        executor=executor,
        solver=solver,
        bounds=bounds,
        store=store,
    )
    results = [scheduler.submit(request) for request in requests]
    try:
        if backend is not None:
            config = engine.engine_config()
            previous = config.backend
            engine.configure(backend=backend)
            try:
                scheduler.run()
            finally:
                config.backend = previous
        else:
            scheduler.run()
    finally:
        if owned_store:
            scheduler.store.close()
    return results
