"""One-call width reports: every width, bound and property of a hypergraph.

``width_report(H)`` routes to the right engine per measure and instance
size: exact oracles inside the 2^n range, heuristic sandwiches beyond it,
the GYO fast path for acyclicity — and returns a plain dataclass that the
CLI, the experiments and downstream users can render or serialize.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..hypergraph import (
    Hypergraph,
    degree,
    intersection_width,
    is_alpha_acyclic,
    multi_intersection_width,
    rank,
    vc_dimension,
)
from .elimination import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
)
from .hd import hypertree_width
from .heuristics import clique_lower_bound, width_bounds
from .separators import ghw_balance_lower_bound

__all__ = ["WidthReport", "width_report"]

#: Above this many vertices, exact 2^n oracles give way to bounds.
EXACT_LIMIT = 14


@dataclass(frozen=True)
class WidthReport:
    """Structural profile plus widths (exact or bracketed).

    ``ghw`` / ``fhw`` carry exact values when ``exact`` is True, else the
    midpoint of the (lower, upper) brackets, which are always populated.
    ``hw`` is exact whenever it was computed (None beyond the cap).
    """

    name: str | None
    vertices: int
    edges: int
    rank: int
    degree: int
    iwidth: int
    miwidth3: int
    vc: int | None
    acyclic: bool
    exact: bool
    hw: int | None
    ghw_lower: float
    ghw_upper: float
    fhw_lower: float
    fhw_upper: float

    @property
    def ghw(self) -> float:
        return (self.ghw_lower + self.ghw_upper) / 2

    @property
    def fhw(self) -> float:
        return (self.fhw_lower + self.fhw_upper) / 2

    def as_dict(self) -> dict:
        return asdict(self)


def width_report(
    hypergraph: Hypergraph,
    exact_limit: int = EXACT_LIMIT,
    hw_cap: int = 4,
    compute_vc: bool = True,
) -> WidthReport:
    """The full profile of a hypergraph, sized to the instance.

    * ``|V| <= exact_limit``: ghw and fhw from the exact oracles
      (brackets collapse), hw from ``k-decomp`` up to ``hw_cap``.
    * larger instances: clique + balance lower bounds and heuristic upper
      bounds; hw is skipped (None) unless the instance is acyclic.
    """
    acyclic = is_alpha_acyclic(hypergraph)
    vc = (
        vc_dimension(hypergraph)
        if compute_vc and hypergraph.num_vertices <= 24
        else None
    )
    common = dict(
        name=hypergraph.name,
        vertices=hypergraph.num_vertices,
        edges=hypergraph.num_edges,
        rank=rank(hypergraph),
        degree=degree(hypergraph),
        iwidth=intersection_width(hypergraph),
        miwidth3=multi_intersection_width(hypergraph, 3),
        vc=vc,
        acyclic=acyclic,
    )

    if acyclic:
        return WidthReport(
            **common, exact=True, hw=1,
            ghw_lower=1.0, ghw_upper=1.0, fhw_lower=1.0, fhw_upper=1.0,
        )

    if hypergraph.num_vertices <= exact_limit:
        ghw, _g = generalized_hypertree_width_exact(hypergraph)
        fhw, _f = fractional_hypertree_width_exact(hypergraph)
        try:
            hw, _h = hypertree_width(hypergraph, kmax=hw_cap)
        except ValueError:
            hw = None
        return WidthReport(
            **common, exact=True, hw=hw,
            ghw_lower=float(ghw), ghw_upper=float(ghw),
            fhw_lower=fhw, fhw_upper=fhw,
        )

    fhw_lower = clique_lower_bound(hypergraph, cost="fractional")
    _low, fhw_upper, _w = width_bounds(hypergraph, cost="fractional")
    ghw_lower = float(
        max(
            ghw_balance_lower_bound(hypergraph, kmax=3),
            clique_lower_bound(hypergraph, cost="integral"),
        )
    )
    _low2, ghw_upper, _w2 = width_bounds(hypergraph, cost="integral")
    return WidthReport(
        **common, exact=False, hw=None,
        ghw_lower=ghw_lower, ghw_upper=float(ghw_upper),
        fhw_lower=fhw_lower, fhw_upper=fhw_upper,
    )
