"""FHW approximation algorithms (Section 6).

* :func:`frac_decomp` — Algorithm 3, ``(k, ε, c)-frac-decomp``: a
  deterministic version of the alternating algorithm that searches for an
  FHD of width <= k+ε with c-bounded fractional part and the weak special
  condition.  Under the BIP, Lemmas 6.4/6.5 guarantee such an FHD exists
  whenever fhw(H) <= k, with ``c = 2ik² + 4k³i/ε``.
* :func:`fhw_approximation` — Algorithm 4, the PTAAS for
  K-Bounded-FHW-Optimization (Theorem 6.20): binary search over widths
  with gap < ε, using frac-decomp (or any Check oracle) as ``find-fhd``.
* :func:`integralize` / :func:`oklogk_decomposition` — Theorem 6.23 /
  Corollary 6.25: replace each γ_u by a greedy integral cover; bounded VC
  dimension (hence the BMIP, Lemma 6.24) bounds the loss to O(log k).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

from ..covers import EPS, FractionalCover
from ..decomposition import Decomposition, validate
from ..engine import get_context, oracle_for
from ..hypergraph import Hypergraph, intersection_width
from ._pipeline import via_pipeline

__all__ = [
    "fractional_part_bound",
    "frac_decomp",
    "FHWApproximationResult",
    "fhw_approximation",
    "integralize",
    "oklogk_decomposition",
]


def fractional_part_bound(k: float, i: int, eps: float) -> int:
    """The c of Lemma 6.4: ``c = 2ik² + 4k³i/ε``.

    Any width-k FHD of an iwidth-i hypergraph can be rewritten to width
    k+ε with at most this many fractionally-covered vertices per node.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    return int(math.ceil(2 * i * k * k + 4 * (k**3) * i / eps))


class _FracDecompSearch:
    """Deterministic state-space search for Algorithm 3.

    State = (C_r, W_r, R); guesses are pairs (S, W_s) with |S| <= ⌊k+ε⌋
    and |W_s| <= c.  Checks 2.a-2.c are exactly the paper's.  W_s must
    contain the uncovered frontier (forced by check 2.b), and optional
    extra vertices are drawn from the frontier region — a practical
    restriction documented in DESIGN.md; results are re-validated.
    """

    def __init__(
        self, hypergraph: Hypergraph, k: float, eps: float, c: int
    ) -> None:
        self.hg = hypergraph
        self.ctx = get_context(hypergraph)
        self.oracle = oracle_for(self.ctx)
        self.k = float(k)
        self.eps = float(eps)
        self.c = int(c)
        self.budget = self.k + self.eps
        self.max_integral = int(math.floor(self.budget + EPS))
        self._memo: dict = {}
        self._edge_names = sorted(hypergraph.edge_names)
        # Per-search memo (see StrictFHDSearch): one capped-cover LP per
        # distinct W_s regardless of the shared oracle's configuration.
        self._gamma_cache: dict[frozenset, FractionalCover | None] = {}

    def run(self) -> Decomposition | None:
        if not self._solve(self.hg.vertices, frozenset(), frozenset()):
            return None
        return self._rebuild()

    # -- helpers -------------------------------------------------------
    def _fractional_for(self, wanted: frozenset, budget: float):
        """Check 2.a: γ with wanted ⊆ B(γ) and weight <= budget, or None.

        The purely fractional γ (per-edge weights capped strictly below 1,
        so the weak special condition of the witness tree stays intact)
        comes from the shared oracle's capped-cover service — see
        :meth:`repro.engine.oracle.CoverOracle.fractional_cover_capped` —
        which also shares the LP across the probes of a width search.
        """
        if wanted not in self._gamma_cache:
            self._gamma_cache[wanted] = self.oracle.fractional_cover_capped(
                wanted, budget
            )
        gamma = self._gamma_cache[wanted]
        if gamma is not None and gamma.weight > budget + EPS:
            # The memoized γ may be an imported upper-bound hint that is
            # feasible but not optimal; re-ask under this tighter budget
            # so the oracle falls back to the exact capped LP before the
            # guess is rejected.
            gamma = self.oracle.fractional_cover_capped(wanted, budget)
            self._gamma_cache[wanted] = gamma
        if gamma is None or gamma.weight > budget + EPS:
            return None
        return gamma

    def _frontier(self, component, w_r, parent_cover) -> frozenset:
        ctx = self.ctx
        region = ctx.vertices_of(parent_cover) | w_r
        return region & ctx.vertices_of(ctx.incident_edges(component))

    def _guesses(self, component, w_r, parent_cover):
        frontier = self._frontier(component, w_r, parent_cover)
        target = component | frontier
        candidates = sorted(
            (
                e
                for e in self._edge_names
                if self.hg.edge(e) & target
            ),
            key=lambda e: (-len(self.hg.edge(e) & target), e),
        )
        pool = sorted(frontier | component, key=str)
        # Larger integral parts first: the paper's S carries the integral
        # bulk of the cover and W_s only the fractional fringe.  Trying
        # S-heavy guesses first yields witness trees whose fractional
        # parts are genuinely small (c-bounded) and keeps the weak
        # special condition trivially intact at integral-only nodes.
        for size in range(self.max_integral, -1, -1):
            for combo in combinations(candidates, size):
                cover = self.ctx.intern(frozenset(combo))
                covered = self.ctx.vertices_of(cover)
                required = frontier - covered
                if len(required) > self.c:
                    continue
                room = self.c - len(required)
                extras_pool = [v for v in pool if v not in required and v not in covered]
                for extra_size in range(0, min(room, len(extras_pool)) + 1):
                    for extra in combinations(extras_pool, extra_size):
                        w_s = required | frozenset(extra)
                        if not w_s and size == 0:
                            continue
                        # 2.c: (V(S) ∪ W_s) ∩ C_r != ∅
                        if not (covered | w_s) & component:
                            continue
                        gamma = self._fractional_for(
                            w_s, self.budget - size
                        ) if w_s else FractionalCover({})
                        if gamma is None:
                            continue
                        yield cover, w_s, gamma

    def _solve(self, component, w_r, parent_cover) -> bool:
        key = (component, w_r, parent_cover)
        if key in self._memo:
            return self._memo[key] is not None
        self._memo[key] = None
        for cover, w_s, _gamma in self._guesses(component, w_r, parent_cover):
            separator = self.ctx.vertices_of(cover) | w_s
            child_components = self.ctx.components_within(
                self.ctx.intern(component - separator)
            )
            if all(
                self._solve(child, w_s, cover) for child in child_components
            ):
                self._memo[key] = (cover, w_s, child_components)
                return True
        return False

    def _rebuild(self) -> Decomposition:
        nodes = []
        parent: dict[str, str] = {}
        counter = 0

        def build(component, w_r, parent_cover, parent_id, parent_bag):
            nonlocal counter
            entry = self._memo[(component, w_r, parent_cover)]
            assert entry is not None
            cover, w_s, child_components = entry
            gamma_extra = (
                self._fractional_for(w_s, self.budget - len(cover))
                if w_s
                else FractionalCover({})
            )
            assert gamma_extra is not None
            weights = dict(gamma_extra.weights)
            for e in cover:
                weights[e] = 1.0
            gamma = FractionalCover(weights)
            region = self.ctx.vertices_of(cover) | w_s
            bag = region if parent_id is None else region & (
                parent_bag | component
            )
            node_id = f"n{counter}"
            counter += 1
            nodes.append((node_id, bag, gamma))
            if parent_id is not None:
                parent[node_id] = parent_id
            for child in child_components:
                build(child, w_s, cover, node_id, bag)

        build(self.hg.vertices, frozenset(), frozenset(), None, frozenset())
        return Decomposition(nodes, parent=parent, root="n0")


def frac_decomp(
    hypergraph: Hypergraph,
    k: float,
    eps: float = 0.5,
    c: int | None = None,
) -> Decomposition | None:
    """Algorithm 3: an FHD of width <= k+ε with c-bounded fractional part.

    ``c`` defaults to a small practical bound (min of the Lemma 6.4 value
    and 3) — the theoretical value is astronomically large and any
    returned decomposition is re-validated, so a larger c only widens the
    search.  Returns None when the search fails within these bounds.
    """
    if c is None:
        i = intersection_width(hypergraph)
        c = min(fractional_part_bound(k, max(i, 1), eps), 3)
    result = _FracDecompSearch(hypergraph, k, eps, c).run()
    if result is not None:
        validate(hypergraph, result, kind="fhd", width=k + eps + EPS)
    return result


@dataclass
class FHWApproximationResult:
    """Outcome of Algorithm 4 with its full binary-search trace."""

    decomposition: Decomposition | None
    width: float | None
    iterations: int = 0
    trace: list[tuple[float, float, bool]] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.decomposition is None


def _fhw_approximation_direct(
    hypergraph: Hypergraph,
    K: float,
    eps: float,
    find_fhd=None,
) -> FHWApproximationResult:
    """Algorithm 4 on the raw hypergraph (no preprocessing pipeline)."""
    if find_fhd is None:
        find_fhd = lambda h, k, e: frac_decomp(h, k, e)

    result = FHWApproximationResult(None, None)
    best = find_fhd(hypergraph, K, eps)
    if best is None:
        return result  # fhw(H) > K
    low, high = 1.0, K + eps
    eps3 = eps / 3.0
    decomposition = best
    while high - low >= eps:
        mid = low + (high - low) / 2.0
        probe = find_fhd(hypergraph, mid, eps3)
        result.iterations += 1
        result.trace.append((low, high, probe is not None))
        if probe is not None:
            high = mid + eps3
            decomposition = probe
        else:
            low = mid
    result.decomposition = decomposition
    result.width = decomposition.width()
    return result


def fhw_approximation(
    hypergraph: Hypergraph,
    K: float,
    eps: float,
    find_fhd=None,
    preprocess: str = "full",
    jobs: int | None = None,
) -> FHWApproximationResult:
    """Algorithm 4 (FHW-Approximation): the PTAAS of Theorem 6.20.

    Returns an FHD of width < fhw(H) + ε if fhw(H) <= K, else a failed
    result.  ``find_fhd(H, k, eps)`` may be supplied (defaults to
    :func:`frac_decomp`); it must return an FHD of width <= k+eps or
    None.  Under the pipeline (default) the binary search runs per
    biconnected block of the reduced instance — ``find_fhd`` then
    receives block hypergraphs — and the stitched FHD keeps the ε
    guarantee because fhw decomposes as the max over blocks.  ``jobs=N``
    runs blocks in parallel; ``preprocess="none"`` restores the
    single-instance search.

    The trace records each probe ``(L, U, success)``; under the
    pipeline it is the trace of the block with the most iterations
    (among the failed blocks, when the result is a failure).  Theorem
    6.20 bounds the iteration count by ``⌈log((K+ε−1)/(ε/3))⌉``-ish,
    which experiment E12 verifies.
    """
    return via_pipeline(
        hypergraph,
        "fhw_approximation",
        _fhw_approximation_direct,
        preprocess,
        jobs,
        K,
        eps,
        find_fhd,
    )


def integralize(
    hypergraph: Hypergraph, decomposition: Decomposition
) -> Decomposition:
    """Replace each γ_u by a greedy integral edge cover of B_u (Thm 6.23).

    The result is a GHD whose width exceeds the FHD's by at most the
    cover integrality gap of the bag hypergraphs — O(log k) under bounded
    VC dimension, hence under the BMIP (Lemma 6.24, Corollary 6.25).
    """
    oracle = oracle_for(hypergraph)
    nodes = []
    for nid in decomposition.node_ids:
        bag = decomposition.bag(nid)
        lam = oracle.greedy_cover(bag)
        assert lam is not None, "bag vertices must be coverable"
        nodes.append((nid, bag, lam))
    ghd = Decomposition(
        nodes,
        parent={
            nid: decomposition.parent(nid)
            for nid in decomposition.node_ids
            if decomposition.parent(nid) is not None
        },
        root=decomposition.root,
    )
    validate(hypergraph, ghd, kind="ghd")
    return ghd


def oklogk_decomposition(
    hypergraph: Hypergraph, fhd: Decomposition
) -> tuple[Decomposition, float]:
    """Corollary 6.25 pipeline: FHD → integralized GHD, with the ratio.

    Returns ``(ghd, width_ratio)`` where ratio = ghd width / fhd width;
    bounded VC dimension keeps it O(log fhw).
    """
    ghd = integralize(hypergraph, fhd)
    return ghd, ghd.width() / max(fhd.width(), EPS)
