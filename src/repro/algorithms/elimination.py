"""Exact ghw / fhw via elimination orderings (the route of [42]).

Both ``ghw`` and ``fhw`` are *monotone* width measures of tree
decompositions of the primal graph: the cost of a bag B is ``ρ_H(B)``
(resp. ``ρ*_H(B)``), which never decreases when B grows.  For any monotone
bag-cost f, an optimal tree decomposition can be taken to be the clique
tree of a chordal completion, and chordal completions correspond to vertex
elimination orderings.  Hence

    f-width(H) = min over orderings π of  max_v  f(bag_π(v)),

where ``bag_π(v)`` is v plus its neighbours among later vertices in the
fill-in graph.  The minimum is computed by the Bodlaender-style dynamic
program over vertex subsets — exponential in |V(H)|, as any exact method
must be by the paper's Theorem 3.2, but exact.  These oracles
cross-validate every polynomial special-case algorithm in this library.

Condition (1) of Definition 2.4 holds automatically: each hyperedge is a
clique of the primal graph, so by the Helly property of subtrees some bag
contains it (Lemma 2.8).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from ..covers import EPS, FractionalCover
from ..decomposition import Decomposition, validate
from ..engine import oracle_for
from ..hypergraph import Hypergraph, Vertex
from ._pipeline import via_pipeline

__all__ = [
    "width_by_elimination",
    "decomposition_from_ordering",
    "generalized_hypertree_width_exact",
    "fractional_hypertree_width_exact",
    "treewidth_exact",
]

#: Safety cap: 2^18 subsets is the largest DP we allow by default.
DEFAULT_VERTEX_LIMIT = 18


def _reachable_bag(
    adjacency: dict[Vertex, frozenset],
    eliminated: frozenset,
    vertex: Vertex,
) -> frozenset:
    """``{v} ∪ {u ∉ eliminated : path v→u with interior ⊆ eliminated}``.

    This is the bag created when ``vertex`` is eliminated after the set
    ``eliminated`` (its neighbourhood in the fill-in graph).
    """
    bag = {vertex}
    seen = {vertex}
    queue = deque([vertex])
    while queue:
        cur = queue.popleft()
        for nbr in adjacency[cur]:
            if nbr in seen:
                continue
            seen.add(nbr)
            if nbr in eliminated:
                queue.append(nbr)
            else:
                bag.add(nbr)
    return frozenset(bag)


def width_by_elimination(
    hypergraph: Hypergraph,
    bag_cost: Callable[[frozenset], float],
    vertex_limit: int = DEFAULT_VERTEX_LIMIT,
) -> tuple[float, list[Vertex]]:
    """Minimum over orderings of the max bag cost, plus a witness ordering.

    ``bag_cost`` maps a bag (frozenset of vertices) to its cost; it must
    be monotone under set inclusion for the result to be the true width.
    Raises for hypergraphs above ``vertex_limit`` vertices (2^n DP).
    """
    n = hypergraph.num_vertices
    if n == 0:
        raise ValueError("hypergraph has no vertices")
    if n > vertex_limit:
        raise ValueError(
            f"{n} vertices exceeds the exact-DP limit {vertex_limit}; "
            "raise vertex_limit explicitly if you really want to wait"
        )
    vertices = sorted(hypergraph.vertices, key=str)
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = hypergraph.primal_graph()

    # Per-run memo: the DP revisits the same bag across many masks, and
    # bag_cost may be arbitrarily expensive (an LP or set-cover solve).
    # Oracle-backed callers additionally share results across runs and
    # algorithms, but correctness of this guarantee must not depend on
    # the engine cache being enabled.
    cost_cache: dict[frozenset, float] = {}

    def cached_cost(bag: frozenset) -> float:
        if bag not in cost_cache:
            cost_cache[bag] = bag_cost(bag)
        return cost_cache[bag]

    # best[mask] = minimal possible max-bag-cost of eliminating exactly the
    # vertex set `mask` first (as a prefix of the ordering).
    best: dict[int, float] = {0: 0.0}
    choice: dict[int, int] = {}
    full = (1 << n) - 1

    # Iterate masks in increasing popcount order so predecessors exist.
    masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        masks_by_size[mask.bit_count()].append(mask)

    for size in range(1, n + 1):
        for mask in masks_by_size[size]:
            best_cost = float("inf")
            best_vertex = -1
            for vi in range(n):
                bit = 1 << vi
                if not mask & bit:
                    continue
                prev = mask & ~bit
                prev_cost = best.get(prev, float("inf"))
                if prev_cost >= best_cost:
                    continue
                eliminated = frozenset(
                    vertices[j] for j in range(n) if prev & (1 << j)
                )
                bag = _reachable_bag(adjacency, eliminated, vertices[vi])
                total = max(prev_cost, cached_cost(bag))
                if total < best_cost - EPS:
                    best_cost = total
                    best_vertex = vi
            best[mask] = best_cost
            choice[mask] = best_vertex

    ordering: list[Vertex] = []
    mask = full
    while mask:
        vi = choice[mask]
        ordering.append(vertices[vi])
        mask &= ~(1 << vi)
    ordering.reverse()
    return best[full], ordering


def decomposition_from_ordering(
    hypergraph: Hypergraph,
    ordering: list[Vertex],
    cover_for_bag: Callable[[frozenset], FractionalCover],
) -> Decomposition:
    """Build the clique-tree decomposition induced by an elimination order.

    Node i's bag is ``bag_π(v_i)``; its parent is the node of the earliest
    later-eliminated vertex in its bag (the standard clique-tree link).
    ``cover_for_bag`` supplies λ/γ for each bag (integral or fractional).
    """
    if set(ordering) != set(hypergraph.vertices):
        raise ValueError("ordering must enumerate exactly V(H)")
    adjacency = hypergraph.primal_graph()
    position = {v: i for i, v in enumerate(ordering)}
    bags: list[frozenset] = []
    for i, v in enumerate(ordering):
        eliminated = frozenset(ordering[:i])
        bags.append(_reachable_bag(adjacency, eliminated, v))

    nodes = []
    parent: dict[str, str] = {}
    for i, bag in enumerate(bags):
        nodes.append((f"n{i}", bag, cover_for_bag(bag)))
        later = [position[u] for u in bag if position[u] > i]
        if later:
            parent[f"n{i}"] = f"n{min(later)}"
        elif i != len(bags) - 1:
            # Disconnected hypergraph: attach component roots to the last
            # node so the structure stays a tree (bags are disjoint, so
            # connectedness is unaffected).
            parent[f"n{i}"] = f"n{len(bags) - 1}"
    return Decomposition(nodes, parent=parent, root=f"n{len(bags) - 1}")


def _generalized_hypertree_width_exact_direct(
    hypergraph: Hypergraph, vertex_limit: int = DEFAULT_VERTEX_LIMIT
) -> tuple[int, Decomposition]:
    """Exact ghw on the raw hypergraph (no preprocessing pipeline)."""
    oracle = oracle_for(hypergraph)

    def cost(bag: frozenset) -> float:
        cover = oracle.integral_cover(bag)
        assert cover is not None  # bags consist of non-isolated vertices
        return cover.weight

    width, ordering = width_by_elimination(hypergraph, cost, vertex_limit)

    def cover_for_bag(bag: frozenset) -> FractionalCover:
        cover = oracle.integral_cover(bag)
        assert cover is not None
        return cover

    decomposition = decomposition_from_ordering(
        hypergraph, ordering, cover_for_bag
    )
    validate(hypergraph, decomposition, kind="ghd", width=width)
    return int(round(width)), decomposition


def generalized_hypertree_width_exact(
    hypergraph: Hypergraph,
    vertex_limit: int = DEFAULT_VERTEX_LIMIT,
    preprocess: str = "full",
    jobs: int | None = None,
    bounds: str | None = None,
) -> tuple[int, Decomposition]:
    """Exact ``ghw(H)`` with a witness GHD (exponential-time oracle).

    Under the pipeline (default) the reduction rules shrink the instance
    and the 2^n elimination DP runs per biconnected block, so
    ``vertex_limit`` bounds the largest *block*, not the whole
    hypergraph.  ``preprocess="none"`` restores the raw DP.
    """
    return via_pipeline(
        hypergraph,
        "generalized_hypertree_width_exact",
        _generalized_hypertree_width_exact_direct,
        preprocess,
        jobs,
        vertex_limit,
        bounds=bounds,
    )


def _fractional_hypertree_width_exact_direct(
    hypergraph: Hypergraph, vertex_limit: int = DEFAULT_VERTEX_LIMIT
) -> tuple[float, Decomposition]:
    """Exact fhw on the raw hypergraph (no preprocessing pipeline)."""
    oracle = oracle_for(hypergraph)

    def cost(bag: frozenset) -> float:
        cover = oracle.fractional_cover(bag)
        assert cover is not None
        return cover.weight

    width, ordering = width_by_elimination(hypergraph, cost, vertex_limit)

    def cover_for_bag(bag: frozenset) -> FractionalCover:
        cover = oracle.fractional_cover(bag)
        assert cover is not None
        return cover

    decomposition = decomposition_from_ordering(
        hypergraph, ordering, cover_for_bag
    )
    validate(hypergraph, decomposition, kind="fhd", width=width + EPS)
    return width, decomposition


def fractional_hypertree_width_exact(
    hypergraph: Hypergraph,
    vertex_limit: int = DEFAULT_VERTEX_LIMIT,
    preprocess: str = "full",
    jobs: int | None = None,
    bounds: str | None = None,
) -> tuple[float, Decomposition]:
    """Exact ``fhw(H)`` with a witness FHD (exponential-time oracle).

    Under the pipeline (default) the reduction rules shrink the instance
    and the 2^n elimination DP runs per biconnected block, so
    ``vertex_limit`` bounds the largest *block*, not the whole
    hypergraph.  ``preprocess="none"`` restores the raw DP.
    """
    return via_pipeline(
        hypergraph,
        "fractional_hypertree_width_exact",
        _fractional_hypertree_width_exact_direct,
        preprocess,
        jobs,
        vertex_limit,
        bounds=bounds,
    )


def treewidth_exact(
    hypergraph: Hypergraph, vertex_limit: int = DEFAULT_VERTEX_LIMIT
) -> int:
    """Exact treewidth of the primal graph (|bag| - 1 cost), for context.

    The paper contrasts hypergraph widths with treewidth in Section 1;
    this oracle lets experiments report all of them side by side.
    """
    width, _ordering = width_by_elimination(
        hypergraph, lambda bag: float(len(bag)), vertex_limit
    )
    return int(round(width)) - 1
