"""Heuristic width bounds for hypergraphs beyond the exact-DP range.

The exact elimination DP of :mod:`repro.algorithms.elimination` is
limited to ~18 vertices ([42]-style exactness costs 2^n).  Real CQ/CSP
workloads are larger, so practical systems (detkdecomp, BalancedGo, the
paper's own experiments in [23]) pair exact methods with elimination
*heuristics*.  This module provides:

* :func:`min_degree_ordering` / :func:`min_fill_ordering` — the two
  classic elimination heuristics on the primal graph (``min_degree``
  optionally with a seeded random tiebreak, the cheap restart knob the
  bounds pre-pass portfolio in :mod:`repro.pipeline.bounds` turns);
* :func:`portfolio_orderings` — the ordering portfolio: both classics
  plus deterministic randomized-tiebreak restarts;
* :func:`evaluate_ordering` — one ordering turned into a decomposition
  with measure-specific covers through a shared
  :class:`~repro.engine.oracle.CoverOracle`;
* :func:`heuristic_decomposition` — a valid GHD/FHD built from a
  heuristic ordering (an *upper* bound on ghw/fhw, always re-validated);
* :func:`clique_lower_bound` — Lemma 2.8 turned into a *lower* bound:
  every clique of the primal graph must fit in one bag, so
  ``fhw(H) >= max_C ρ*_H(C)`` over cliques C (greedily grown cliques
  give a cheap, sound bound);
* :func:`width_bounds` — the sandwich (lower, upper) a practical system
  reports when exactness is out of reach.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator

from ..covers import FractionalCover
from ..decomposition import Decomposition, validate
from ..engine import CoverOracle, oracle_for
from ..hypergraph import Hypergraph, Vertex
from ._pipeline import via_pipeline
from .elimination import decomposition_from_ordering

__all__ = [
    "min_degree_ordering",
    "min_fill_ordering",
    "portfolio_orderings",
    "evaluate_ordering",
    "heuristic_decomposition",
    "clique_lower_bound",
    "width_bounds",
    "DEFAULT_RESTARTS",
]

#: Randomized-tiebreak restarts the ordering portfolio runs on top of
#: the two deterministic classics (seeds are fixed, so the portfolio
#: stays reproducible).
DEFAULT_RESTARTS = 2


def _eliminate(adjacency: dict[Vertex, set], vertex: Vertex) -> None:
    """Remove ``vertex``, connecting its neighbours into a clique."""
    neighbours = adjacency.pop(vertex)
    for u in neighbours:
        adjacency[u].discard(vertex)
    for u in neighbours:
        for w in neighbours:
            if u != w:
                adjacency[u].add(w)


def min_degree_ordering(
    hypergraph: Hypergraph, rng: random.Random | None = None
) -> list[Vertex]:
    """Eliminate a minimum-degree vertex of the fill graph at each step.

    With ``rng`` the tie between equal-degree vertices is broken
    randomly instead of lexicographically — the restart knob of the
    ordering portfolio (a seeded ``random.Random`` keeps the ordering
    reproducible).
    """
    adjacency = {
        v: set(nbrs) for v, nbrs in hypergraph.primal_graph().items()
    }
    order: list[Vertex] = []
    if rng is None:
        tiebreak = lambda u: (len(adjacency[u]), str(u))  # noqa: E731
    else:
        tiebreak = lambda u: (len(adjacency[u]), rng.random(), str(u))  # noqa: E731
    while adjacency:
        v = min(adjacency, key=tiebreak)
        order.append(v)
        _eliminate(adjacency, v)
    return order


def min_fill_ordering(hypergraph: Hypergraph) -> list[Vertex]:
    """Eliminate the vertex adding the fewest fill edges at each step."""
    adjacency = {
        v: set(nbrs) for v, nbrs in hypergraph.primal_graph().items()
    }

    def fill_cost(v: Vertex) -> int:
        nbrs = sorted(adjacency[v], key=str)
        return sum(
            1
            for i, u in enumerate(nbrs)
            for w in nbrs[i + 1:]
            if w not in adjacency[u]
        )

    order: list[Vertex] = []
    while adjacency:
        v = min(adjacency, key=lambda u: (fill_cost(u), str(u)))
        order.append(v)
        _eliminate(adjacency, v)
    return order


_ORDERINGS: dict[str, Callable[[Hypergraph], list[Vertex]]] = {
    "min-degree": min_degree_ordering,
    "min-fill": min_fill_ordering,
}


def portfolio_orderings(
    hypergraph: Hypergraph,
    restarts: int = DEFAULT_RESTARTS,
    seed: int = 0,
) -> Iterator[tuple[str, list[Vertex]]]:
    """The ordering portfolio: classics first, then seeded restarts.

    Yields ``(name, ordering)`` pairs — ``min-degree`` and ``min-fill``
    followed by ``restarts`` randomized-tiebreak min-degree orderings.
    The restarts draw from ``random.Random`` seeded deterministically
    from ``seed``, so the portfolio (and everything built on it, like
    the bounds pre-pass) is reproducible run to run.
    """
    yield "min-degree", min_degree_ordering(hypergraph)
    yield "min-fill", min_fill_ordering(hypergraph)
    for restart in range(max(0, int(restarts))):
        rng = random.Random(f"{seed}:{restart}")
        yield f"min-degree-r{restart}", min_degree_ordering(hypergraph, rng)


def evaluate_ordering(
    hypergraph: Hypergraph,
    order: list[Vertex],
    cost: str = "fractional",
    oracle: CoverOracle | None = None,
) -> tuple[float, Decomposition]:
    """Finish one elimination ordering with measure-specific covers.

    Builds the clique-tree decomposition induced by ``order`` and
    covers every bag through ``oracle`` (the hypergraph's shared
    :class:`~repro.engine.oracle.CoverOracle` when not given, so
    repeated bags — across orderings, across the exact search that
    follows — hit one cache domain instead of re-deriving covers).
    ``cost`` selects the measure: ``"fractional"`` (fhw) or
    ``"integral"`` (ghw/hw).  The result is *not* validated here;
    callers pick the validation kind.
    """
    if cost not in ("fractional", "integral"):
        raise ValueError("cost must be 'fractional' or 'integral'")
    if oracle is None:
        oracle = oracle_for(hypergraph)

    def cover_for_bag(bag: frozenset) -> FractionalCover:
        if cost == "fractional":
            cover = oracle.fractional_cover(bag)
        else:
            cover = oracle.integral_cover(bag)
        assert cover is not None  # bags contain no isolated vertices
        return cover

    decomposition = decomposition_from_ordering(
        hypergraph, order, cover_for_bag
    )
    return decomposition.width(), decomposition


def _heuristic_decomposition_direct(
    hypergraph: Hypergraph,
    cost: str = "fractional",
    ordering: str = "min-fill",
    oracle: CoverOracle | None = None,
) -> tuple[float, Decomposition]:
    """Heuristic decomposition on the raw hypergraph (no pipeline)."""
    if ordering not in _ORDERINGS:
        raise ValueError(f"ordering must be one of {sorted(_ORDERINGS)}")
    if cost not in ("fractional", "integral"):
        raise ValueError("cost must be 'fractional' or 'integral'")
    order = _ORDERINGS[ordering](hypergraph)
    width, decomposition = evaluate_ordering(
        hypergraph, order, cost=cost, oracle=oracle
    )
    kind = "fhd" if cost == "fractional" else "ghd"
    validate(hypergraph, decomposition, kind=kind, width=width + 1e-9)
    return width, decomposition


def heuristic_decomposition(
    hypergraph: Hypergraph,
    cost: str = "fractional",
    ordering: str = "min-fill",
    preprocess: str = "full",
    jobs: int | None = None,
) -> tuple[float, Decomposition]:
    """A valid decomposition from a heuristic elimination ordering.

    ``cost`` selects the bag covers: ``"fractional"`` (FHD; width is an
    upper bound on fhw) or ``"integral"`` (GHD; upper bound on ghw).
    The pipeline (default) reduces the instance and runs the ordering
    per biconnected block — smaller fill graphs, tighter bags —
    and the stitched result is re-validated against the original
    hypergraph, so the width really is achieved.
    """
    if ordering not in _ORDERINGS:
        raise ValueError(f"ordering must be one of {sorted(_ORDERINGS)}")
    if cost not in ("fractional", "integral"):
        raise ValueError("cost must be 'fractional' or 'integral'")
    return via_pipeline(
        hypergraph,
        "heuristic_decomposition",
        _heuristic_decomposition_direct,
        preprocess,
        jobs,
        cost,
        ordering,
    )


def clique_lower_bound(
    hypergraph: Hypergraph,
    cost: str = "fractional",
    attempts: int = 8,
    oracle: CoverOracle | None = None,
) -> float:
    """A sound lower bound on fhw (or ghw) from primal-graph cliques.

    By Lemma 2.8 every clique lies inside some bag, and bag covers cost
    at least the clique's (fractional) edge cover number.  Cliques are
    grown greedily from several seed vertices; the best value is
    returned.  Always <= the true width; equals it on cliques and the
    hardness gadgets (where forced cliques drive the construction).
    Cover queries go through ``oracle`` (the hypergraph's shared oracle
    when not given).
    """
    if cost not in ("fractional", "integral"):
        raise ValueError("cost must be 'fractional' or 'integral'")
    adjacency = hypergraph.primal_graph()
    if oracle is None:
        oracle = oracle_for(hypergraph)
    seeds = sorted(
        hypergraph.vertices, key=lambda v: (-len(adjacency[v]), str(v))
    )[:attempts]
    best = 1.0
    for seed in seeds:
        clique = {seed}
        candidates = set(adjacency[seed])
        while candidates:
            v = max(
                candidates,
                key=lambda u: (len(adjacency[u] & candidates), str(u)),
            )
            clique.add(v)
            candidates &= adjacency[v]
        if cost == "fractional":
            cover = oracle.fractional_cover(clique)
        else:
            cover = oracle.integral_cover(clique)
        if cover is not None:
            best = max(best, cover.weight)
    return best


def _width_bounds_direct(
    hypergraph: Hypergraph, cost: str = "fractional"
) -> tuple[float, float, Decomposition]:
    """Heuristic sandwich on the raw hypergraph (no pipeline).

    One shared oracle answers every cover query of the sandwich — the
    clique lower bound and both ordering finishes — so bags the two
    orderings agree on (and bags a later exact search re-asks) are
    derived once per cache domain.
    """
    oracle = oracle_for(hypergraph)
    lower = clique_lower_bound(hypergraph, cost=cost, oracle=oracle)
    best_width = float("inf")
    best_decomposition: Decomposition | None = None
    for ordering in _ORDERINGS:
        width, decomposition = _heuristic_decomposition_direct(
            hypergraph, cost=cost, ordering=ordering, oracle=oracle
        )
        if width < best_width:
            best_width, best_decomposition = width, decomposition
    assert best_decomposition is not None
    return lower, best_width, best_decomposition


def width_bounds(
    hypergraph: Hypergraph,
    cost: str = "fractional",
    preprocess: str = "full",
    jobs: int | None = None,
) -> tuple[float, float, Decomposition]:
    """``(lower, upper, witness)`` for fhw or ghw on large instances.

    Lower bound from cliques, upper from the better of the two
    elimination heuristics; the witness achieves the upper bound.  The
    pipeline (default) computes both per biconnected block — each block
    is width-preserving, so the max of the block lower bounds stays a
    sound lower bound and the stitched witness achieves the upper one.
    """
    if cost not in ("fractional", "integral"):
        raise ValueError("cost must be 'fractional' or 'integral'")
    return via_pipeline(
        hypergraph, "width_bounds", _width_bounds_direct, preprocess, jobs, cost
    )
