"""Check(FHD, k) for bounded-degree hypergraphs (Section 5, Theorem 5.2).

Theorem 5.22 reduces Check(FHD,k) on a degree-d hypergraph H to a search
for a *strict* HD of ``H' = H ∪ h_{d,k}(H)`` of width <= k·d whose cover
hypergraphs ``H_{λ_u}`` all satisfy ``ρ*(H_{λ_u}) <= k``:

* Lemma 5.6 (via Füredi / Corollary 5.5) bounds optimal cover supports by
  k·d, so covers can be guessed as plain edge sets;
* Lemma 5.17's subedge function ``h_{d,k}`` makes strict FHDs (bags equal
  to ``⋃ supp(γ_u)``) exist whenever any width-k FHD does;
* the modified ``k-decomp`` of the Theorem 5.2 proof adds two per-guess
  checks: strictness ``⋃S ⊆ B(λ_r) ∪ treecomp(u)`` and ``ρ*(H_λ) <= k``.

On success the strict HD is converted back to an FHD of H: each node's γ
is the optimal fractional cover of ``⋃S`` by the edges of S, with subedge
weights moved to originator edges of H.
"""

from __future__ import annotations

import math

from ..covers import EPS
from ..decomposition import Decomposition, project_to_original, validate
from ..engine import oracle_for
from ..hypergraph import Hypergraph, degree as degree_of
from ._pipeline import via_pipeline
from .elimination import fractional_hypertree_width_exact
from .hd import HDSearch
from .subedges import fhd_subedges

__all__ = [
    "StrictFHDSearch",
    "fractional_hypertree_decomposition_bounded_degree",
    "check_fhd",
    "fractional_hypertree_width",
]


class StrictFHDSearch(HDSearch):
    """The modified ``k-decomp`` of the Theorem 5.2 proof.

    Runs on the augmented hypergraph H' with cover-size bound ``k·d`` and
    two extra admissibility checks per guessed S:

    * strictness — ``⋃S ⊆ V(R) ∪ C_r`` (so bags equal ``⋃S``);
    * ``ρ*`` check — the vertex set ``⋃S`` has a fractional cover of
      weight <= k using only the edges of S (answered by the shared
      :class:`~repro.engine.oracle.CoverOracle`, so repeated guesses
      never re-solve the LP).

    States are memoized on ``(C_r, R)`` because strictness genuinely
    depends on the parent's cover, not just the frontier.
    """

    def __init__(
        self, augmented: Hypergraph, k: float, max_support: int
    ) -> None:
        super().__init__(augmented, max(1, int(math.floor(max_support))))
        self.k_fractional = float(k)
        # Per-search memo: one ρ* check per distinct cover set is part of
        # the polynomial-time guarantee and must hold even when the shared
        # oracle cache is disabled or evicting.  With the cache enabled
        # the oracle additionally shares verdict LPs across searches.
        self._rho_cache: dict[frozenset, bool] = {}

    def state_key(self, component, parent_cover, frontier):
        return (component, parent_cover)

    def admissible(self, cover_edges, component, frontier, parent_cover):
        ctx = self.context
        union = ctx.vertices_of(cover_edges)
        allowed_region = ctx.vertices_of(parent_cover) | component
        if not union <= allowed_region:
            return False  # strictness would fail: B_u must be ⋃S
        if cover_edges not in self._rho_cache:
            self._rho_cache[cover_edges] = self.oracle.cover_feasible_within(
                union, self.k_fractional, allowed_edges=cover_edges
            )
        return self._rho_cache[cover_edges]


def _fractional_hypertree_decomposition_bounded_degree_direct(
    hypergraph: Hypergraph,
    k: float,
    d: int | None = None,
    **caps,
) -> Decomposition | None:
    """Check(FHD,k) on the raw hypergraph (no preprocessing pipeline)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if d is None:
        d = degree_of(hypergraph)
    augmented = hypergraph.with_edges(
        fhd_subedges(hypergraph, int(math.ceil(k)), d=d, **caps)
    )
    search = StrictFHDSearch(augmented, k, max_support=k * d)
    strict_hd = search.run()
    if strict_hd is None:
        return None

    # Replace each λ_u by the optimal fractional cover of ⋃S_u using S_u,
    # then push subedge weights to originators of H (Theorem 5.22, 2 ⇒ 1).
    oracle = oracle_for(augmented)
    nodes = []
    for nid in strict_hd.node_ids:
        support = strict_hd.cover(nid).support
        bag = strict_hd.bag(nid)
        gamma = oracle.fractional_cover(bag, allowed_edges=support)
        assert gamma is not None and gamma.weight <= k + EPS
        nodes.append((nid, bag, gamma))
    fractional = Decomposition(
        nodes,
        parent={
            nid: strict_hd.parent(nid)
            for nid in strict_hd.node_ids
            if strict_hd.parent(nid) is not None
        },
        root=strict_hd.root,
    )
    fhd = project_to_original(hypergraph, augmented, fractional)
    validate(hypergraph, fhd, kind="fhd", width=k + EPS)
    return fhd


def fractional_hypertree_decomposition_bounded_degree(
    hypergraph: Hypergraph,
    k: float,
    d: int | None = None,
    preprocess: str = "full",
    jobs: int | None = None,
    bounds: str | None = None,
    **caps,
) -> Decomposition | None:
    """Solve Check(FHD,k) under the BDP (Theorem 5.2): an FHD of width
    <= k, or None.

    ``d`` defaults to ``degree(H)`` (per block under the pipeline, which
    never exceeds the input's degree).  A non-None answer is
    re-validated as an FHD of the original H of width <= k.  The subedge
    generator ``h_{d,k}`` is parameterized by caps (see
    :func:`repro.algorithms.subedges.fhd_subedges`); within those caps
    the search is complete per Lemmas 5.6/5.17/5.21.
    ``preprocess="none"`` restores the raw strict-HD search.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return via_pipeline(
        hypergraph,
        "fractional_hypertree_decomposition_bounded_degree",
        _fractional_hypertree_decomposition_bounded_degree_direct,
        preprocess,
        jobs,
        k,
        bounds=bounds,
        d=d,
        **caps,
    )


def check_fhd(hypergraph: Hypergraph, k: float, **options) -> bool:
    """Decision version of Check(FHD,k) under bounded degree."""
    return (
        fractional_hypertree_decomposition_bounded_degree(
            hypergraph, k, **options
        )
        is not None
    )


def fractional_hypertree_width(
    hypergraph: Hypergraph, vertex_limit: int = 18, **options
) -> tuple[float, Decomposition]:
    """``fhw(H)`` with a witness FHD.

    Delegates to the exact elimination oracle — the general problem is
    NP-hard even for fixed k = 2 (Theorem 3.2, Main Result 1), so exact
    computation is exponential by necessity (though the pipeline applies
    the 2^n limit per biconnected block).  Use
    :func:`fractional_hypertree_decomposition_bounded_degree` for the
    polynomial bounded-degree special case.
    """
    return fractional_hypertree_width_exact(hypergraph, vertex_limit, **options)
