"""Shared dispatch from the public width entry points into the pipeline.

Every public driver (``hypertree_width``, the GHD/FHD checks, the exact
oracles, the heuristic sandwich, the PTAAS) gates on the same rule:
``preprocess="none"`` — or an edgeless hypergraph, whose historical
error behaviour must be preserved — runs the raw algorithm; everything
else goes through a :class:`repro.pipeline.WidthSolver` method of the
same name.  This helper states the rule once.
"""

from __future__ import annotations

from ..hypergraph import Hypergraph


def via_pipeline(
    hypergraph: Hypergraph,
    method: str,
    direct,
    preprocess: str,
    jobs: int | None,
    /,  # positional-only: kwargs like method= belong to the solver call
    *args,
    solver: str | None = None,
    bounds: str | None = None,
    **kwargs,
):
    """Run ``WidthSolver(...).<method>(*args, **kwargs)`` or ``direct``.

    A non-default ``solver`` mode (``"sat"`` / ``"portfolio"``) or an
    explicit non-``"none"`` ``bounds`` mode always routes through the
    pipeline, even for ``preprocess="none"`` — the engine choice and
    the bounds pre-pass live in the per-block scheduler, and the
    pipeline's ``"none"`` mode runs the instance as one unreduced
    block.  ``preprocess="none"`` without those overrides runs the raw
    algorithm (no pre-pass), bit-for-bit the historical behaviour.
    Edgeless hypergraphs keep the raw path so their historical error
    behaviour is preserved.
    """
    direct_solver = solver in (None, "bb")
    direct_bounds = bounds in (None, "none")
    if hypergraph.num_edges == 0 or (
        preprocess == "none" and direct_solver and direct_bounds
    ):
        return direct(hypergraph, *args, **kwargs)
    from ..pipeline import WidthSolver

    solver = WidthSolver(
        hypergraph,
        preprocess=preprocess,
        jobs=jobs,
        solver=solver if solver is not None else "bb",
        bounds=bounds if bounds is not None else "portfolio",
    )
    return getattr(solver, method)(*args, **kwargs)
