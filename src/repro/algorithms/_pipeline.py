"""Shared dispatch from the public width entry points into the pipeline.

Every public driver (``hypertree_width``, the GHD/FHD checks, the exact
oracles, the heuristic sandwich, the PTAAS) gates on the same rule:
``preprocess="none"`` — or an edgeless hypergraph, whose historical
error behaviour must be preserved — runs the raw algorithm; everything
else goes through a :class:`repro.pipeline.WidthSolver` method of the
same name.  This helper states the rule once.
"""

from __future__ import annotations

from ..hypergraph import Hypergraph


def via_pipeline(
    hypergraph: Hypergraph,
    method: str,
    direct,
    preprocess: str,
    jobs: int | None,
    /,  # positional-only: kwargs like method= belong to the solver call
    *args,
    **kwargs,
):
    """Run ``WidthSolver(...).<method>(*args, **kwargs)`` or ``direct``."""
    if preprocess == "none" or hypergraph.num_edges == 0:
        return direct(hypergraph, *args, **kwargs)
    from ..pipeline import WidthSolver

    solver = WidthSolver(hypergraph, preprocess=preprocess, jobs=jobs)
    return getattr(solver, method)(*args, **kwargs)
