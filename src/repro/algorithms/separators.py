"""Balanced separators: fast "no" certificates for width checks.

A classical fact about tree decompositions (and hence all of HD/GHD/FHD):
every decomposition of H has a node u whose bag is a *balanced
separator* — each ``[B_u]``-component contains at most half of any vertex
weighting.  Contrapositively, if **no** cover of weight <= k yields a
balanced separator, then the corresponding width exceeds k.  Systems like
BalancedGo build their search around exactly this observation; here it
provides cheap sound lower bounds that complement the clique bound of
:mod:`repro.algorithms.heuristics`.

For GHDs the separator is ``B(λ)`` with ``|λ| <= k``; the search below
enumerates edge subsets (like ``k-decomp``'s guesses, but with a balance
test instead of recursion, so it is a single-level check).
"""

from __future__ import annotations

from itertools import combinations

from ..covers import FractionalCover
from ..hypergraph import Hypergraph, components

__all__ = [
    "is_balanced_separator",
    "balanced_separator",
    "ghw_balance_lower_bound",
]


def is_balanced_separator(
    hypergraph: Hypergraph,
    separator: frozenset,
    balance: float = 0.5,
) -> bool:
    """True iff every [separator]-component has <= balance·|V| vertices.

    Deliberately uncached: separator probes enumerate thousands of
    candidate unions exactly once each, so memoizing their component
    partitions in the shared SearchContext would be pure memory cost.
    """
    limit = balance * hypergraph.num_vertices
    return all(
        len(comp) <= limit
        for comp in components(hypergraph, separator)
    )


def balanced_separator(
    hypergraph: Hypergraph, k: int, balance: float = 0.5
) -> FractionalCover | None:
    """A set λ of <= k edges whose union is a balanced separator, or None.

    If ghw(H) <= k, such a λ exists (take the standard centroid node of
    any width-k GHD), so a ``None`` answer certifies ghw(H) > k.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    names = sorted(hypergraph.edge_names)
    # Larger edges first: they separate more.
    names.sort(key=lambda n: (-len(hypergraph.edge(n)), n))
    for size in range(1, k + 1):
        for combo in combinations(names, size):
            union = hypergraph.vertices_of(combo)
            if is_balanced_separator(hypergraph, union, balance):
                return FractionalCover({name: 1.0 for name in combo})
    return None


def ghw_balance_lower_bound(
    hypergraph: Hypergraph, kmax: int | None = None
) -> int:
    """The smallest k admitting a balanced λ-separator: a sound lower
    bound on ghw(H) (and on hw(H)).

    Complements :func:`repro.algorithms.heuristics.clique_lower_bound`;
    on cliques this bound is ~n/4 while the clique bound is n/2, but on
    expander-like instances the balance bound can dominate.

    One enumeration suffices: :func:`balanced_separator` tries sizes in
    ascending order, so the support of the first hit is the smallest k —
    iterating ``balanced_separator(1), balanced_separator(2), ...`` would
    re-test every smaller size at each step.
    """
    cap = hypergraph.num_edges if kmax is None else kmax
    separator = balanced_separator(hypergraph, cap)
    if separator is None:
        return cap
    return max(1, len(separator.support))
