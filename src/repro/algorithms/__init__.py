"""Decomposition algorithms: Check(HD/GHD/FHD, k), exact oracles, and the
Section 6 approximation schemes."""

from .approx import (
    FHWApproximationResult,
    fhw_approximation,
    frac_decomp,
    fractional_part_bound,
    integralize,
    oklogk_decomposition,
)
from .elimination import (
    decomposition_from_ordering,
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    treewidth_exact,
    width_by_elimination,
)
from .fhd import (
    StrictFHDSearch,
    check_fhd,
    fractional_hypertree_decomposition_bounded_degree,
    fractional_hypertree_width,
)
from .ghd import (
    augmented_hypergraph,
    check_ghd,
    generalized_hypertree_decomposition,
    generalized_hypertree_width,
)
from .hd import HDSearch, check_hd, hypertree_decomposition, hypertree_width
from .heuristics import (
    clique_lower_bound,
    heuristic_decomposition,
    min_degree_ordering,
    min_fill_ordering,
    width_bounds,
)
from .report import WidthReport, width_report
from .separators import (
    balanced_separator,
    ghw_balance_lower_bound,
    is_balanced_separator,
)
from .subedges import (
    IntersectionForestNode,
    UnionIntersectionNode,
    bip_subedges,
    bmip_subedges,
    critical_path,
    fhd_subedges,
    forest_fringe,
    ghd_subedges,
    intersection_forest,
    limit_subedges,
    subedge_name,
    union_intersection_tree,
)

__all__ = [
    "hypertree_decomposition",
    "min_degree_ordering",
    "min_fill_ordering",
    "heuristic_decomposition",
    "clique_lower_bound",
    "width_bounds",
    "balanced_separator",
    "is_balanced_separator",
    "ghw_balance_lower_bound",
    "WidthReport",
    "width_report",
    "check_hd",
    "hypertree_width",
    "HDSearch",
    "generalized_hypertree_decomposition",
    "check_ghd",
    "generalized_hypertree_width",
    "augmented_hypergraph",
    "fractional_hypertree_decomposition_bounded_degree",
    "check_fhd",
    "fractional_hypertree_width",
    "StrictFHDSearch",
    "width_by_elimination",
    "decomposition_from_ordering",
    "generalized_hypertree_width_exact",
    "fractional_hypertree_width_exact",
    "treewidth_exact",
    "frac_decomp",
    "fractional_part_bound",
    "fhw_approximation",
    "FHWApproximationResult",
    "integralize",
    "oklogk_decomposition",
    "subedge_name",
    "ghd_subedges",
    "fhd_subedges",
    "bip_subedges",
    "bmip_subedges",
    "limit_subedges",
    "union_intersection_tree",
    "UnionIntersectionNode",
    "critical_path",
    "intersection_forest",
    "IntersectionForestNode",
    "forest_fringe",
]
