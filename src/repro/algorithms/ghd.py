"""Check(GHD, k) via subedge augmentation (Section 4).

The tractable cases of Theorem 4.11 / Corollary 4.14 / Theorem 4.15 all
follow one recipe:

1. compute a subedge set ``f(H,k)`` that contains ``e ∩ B_u`` for every
   cover edge e and bag ``B_u`` of every bag-maximal width-k GHD of H;
2. run Check(HD,k) on ``H' = (V, E ∪ f(H,k))``;
3. map the HD's cover edges back to originator edges of H — bags are
   untouched, so the result is a GHD of H of the same width.

Soundness of a returned decomposition is certified by re-validation;
completeness holds whenever the subedge generator is complete, which the
fixpoint generator is under BIP/BMIP-style boundedness (see
:mod:`repro.algorithms.subedges`).
"""

from __future__ import annotations

from ..decomposition import Decomposition, project_to_original, validate
from ..hypergraph import Hypergraph
from ._pipeline import via_pipeline
from .hd import _hypertree_decomposition_direct
from .subedges import bip_subedges, bmip_subedges, ghd_subedges, limit_subedges

__all__ = [
    "generalized_hypertree_decomposition",
    "check_ghd",
    "generalized_hypertree_width",
    "augmented_hypergraph",
]

_METHODS = ("fixpoint", "bip", "bmip", "limit")


def augmented_hypergraph(
    hypergraph: Hypergraph, k: int, method: str = "fixpoint", **caps
) -> Hypergraph:
    """``H' = (V(H), E(H) ∪ f(H,k))`` for the chosen subedge generator.

    Methods: ``"fixpoint"`` (exact under bounded multi-intersections,
    default), ``"bip"`` (the closed form of Theorem 4.15), ``"bmip"``
    (the depth-truncated Theorem 4.11 construction; pass ``c``),
    ``"limit"`` (f⁺ of [3, 28]; exact for any H but exponential in edge
    sizes).
    """
    if method == "fixpoint":
        subedges = ghd_subedges(hypergraph, k, **caps)
    elif method == "bip":
        subedges = bip_subedges(hypergraph, k, **caps)
    elif method == "bmip":
        subedges = bmip_subedges(hypergraph, k, **caps)
    elif method == "limit":
        subedges = limit_subedges(hypergraph, **caps)
    else:
        raise ValueError(f"method must be one of {_METHODS}")
    return hypergraph.with_edges(subedges)


def _generalized_hypertree_decomposition_direct(
    hypergraph: Hypergraph, k: int, method: str = "fixpoint", **caps
) -> Decomposition | None:
    """Check(GHD,k) on the raw hypergraph (no preprocessing pipeline)."""
    if k == 1:
        # ghw = 1 iff H is α-acyclic: the GYO fast path answers directly.
        from ..hypergraph.acyclicity import join_tree

        tree = join_tree(hypergraph)
        if tree is not None:
            validate(hypergraph, tree, kind="ghd", width=1)
        return tree
    augmented = augmented_hypergraph(hypergraph, k, method=method, **caps)
    hd = _hypertree_decomposition_direct(augmented, k)
    if hd is None:
        return None
    ghd = project_to_original(hypergraph, augmented, hd)
    validate(hypergraph, ghd, kind="ghd", width=k)
    return ghd


def generalized_hypertree_decomposition(
    hypergraph: Hypergraph,
    k: int,
    method: str = "fixpoint",
    preprocess: str = "full",
    jobs: int | None = None,
    solver: str | None = None,
    bounds: str | None = None,
    **caps,
) -> Decomposition | None:
    """Solve Check(GHD,k): a GHD of H of width <= k, or None.

    Runs the reduce → split → solve → stitch pipeline by default
    (``preprocess="none"`` restores the raw subedge search; ``jobs=N``
    solves biconnected blocks in parallel; ``solver`` picks the
    per-block engine mode — ``"bb"``, ``"sat"`` or ``"portfolio"`` —
    and non-bb modes always run through the pipeline).  A non-None
    result is re-validated against Definition 2.4 on the original
    hypergraph, so "yes" answers are certified unconditionally.  "No"
    answers are correct whenever the chosen subedge generator is
    complete for H (always for ``"limit"``; for ``"fixpoint"`` whenever
    it terminates within its cap, which the BIP/BMIP guarantees).
    """
    if k == 1:
        # Keep the GYO fast path on the whole hypergraph: the join tree
        # itself (one node per edge) is the canonical witness.
        return _generalized_hypertree_decomposition_direct(
            hypergraph, k, method=method, **caps
        )
    return via_pipeline(
        hypergraph,
        "generalized_hypertree_decomposition",
        _generalized_hypertree_decomposition_direct,
        preprocess,
        jobs,
        k,
        solver=solver,
        bounds=bounds,
        method=method,
        **caps,
    )


def check_ghd(
    hypergraph: Hypergraph, k: int, method: str = "fixpoint", **options
) -> bool:
    """Decision version of Check(GHD,k)."""
    return (
        generalized_hypertree_decomposition(hypergraph, k, method, **options)
        is not None
    )


def generalized_hypertree_width(
    hypergraph: Hypergraph,
    kmax: int | None = None,
    method: str = "fixpoint",
    preprocess: str = "full",
    jobs: int | None = None,
    solver: str | None = None,
    bounds: str | None = None,
    **caps,
) -> tuple[int, Decomposition]:
    """``ghw(H)`` with a witness, iterating Check(GHD,k) for k = 1, 2, ...

    For k = 1 this is hypergraph acyclicity (ghw(H) = 1 iff H is acyclic),
    handled by the same machinery since hw = ghw = 1 coincide.  The
    pipeline reduces the instance and iterates k per biconnected block
    (``jobs=N`` adds cross-block and cross-k parallelism;
    ``preprocess="none"`` restores the raw loop; ``solver`` picks the
    per-block engine mode — ``"bb"``, ``"sat"`` or ``"portfolio"``).
    """
    return via_pipeline(
        hypergraph,
        "generalized_hypertree_width",
        _generalized_hypertree_width_direct,
        preprocess,
        jobs,
        kmax,
        solver=solver,
        bounds=bounds,
        method=method,
        **caps,
    )


def _generalized_hypertree_width_direct(
    hypergraph: Hypergraph,
    kmax: int | None = None,
    method: str = "fixpoint",
    **caps,
) -> tuple[int, Decomposition]:
    """The raw k = 1, 2, ... loop on the whole hypergraph."""
    cap = hypergraph.num_edges if kmax is None else kmax
    for k in range(1, cap + 1):
        decomposition = _generalized_hypertree_decomposition_direct(
            hypergraph, k, method=method, **caps
        )
        if decomposition is not None:
            return k, decomposition
    raise ValueError(f"no GHD of width <= {cap} found (cap too small?)")
