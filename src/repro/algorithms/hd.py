"""Check(HD, k): the ``k-decomp`` algorithm of Gottlob, Leone & Scarcello.

The paper's positive results (Theorems 4.11, 4.15, 5.2, 6.1) all reduce the
problem at hand to hypertree decomposition search, which is polynomial for
fixed k [27].  This module implements a deterministic, memoized version of
the alternating ``k-decomp`` algorithm:

* a search state is a pair ``(C_r, R)`` of an open component and the
  parent's cover edges;
* at each state a set ``S`` of at most k edges is guessed such that
  (a) every edge e of the component satisfies ``e ∩ V(R) ⊆ V(S)``
  (equivalently the *frontier* ``V(R) ∩ ⋃ edges(C_r)`` is inside ``V(S)``)
  and (b) ``V(S)`` meets the component;
* the ``[V(S)]``-components inside ``C_r`` are solved recursively.

For plain HDs the acceptance of a state depends on ``R`` only through the
frontier, so states are memoized on ``(C_r, frontier)``; subclasses that
need the full parent cover (the strict search of Theorem 5.22) override
:meth:`HDSearch.state_key`.

On acceptance the witness tree is rebuilt top-down with bags
``B_u = V(S_u) ∩ (B_r ∪ C_u)`` — this makes the special condition hold by
construction — and re-validated by :mod:`repro.decomposition.validation`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

from ..covers import FractionalCover
from ..decomposition import Decomposition, validate
from ..hypergraph import Hypergraph, components

__all__ = [
    "hypertree_decomposition",
    "check_hd",
    "hypertree_width",
    "HDSearch",
]


class HDSearch:
    """Reusable Check(HD,k) search with optional extra per-guess checks.

    Subclassing hooks (used by the GHD/FHD reductions of Sections 4-5):

    * :meth:`admissible` — veto a guessed edge set ``S`` (e.g. Theorem 5.22
      additionally requires ``ρ*(H_λ) <= k`` and strictness);
    * :meth:`max_cover_size` — the cardinality bound on ``S``;
    * :meth:`state_key` — the memoization key for a search state.
    """

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        if k < 1:
            raise ValueError("width bound k must be >= 1")
        self.hypergraph = hypergraph
        self.k = k
        self._memo: dict[Hashable, tuple | None] = {}
        self._edge_names = sorted(hypergraph.edge_names)
        self.states_explored = 0

    # -- hooks ---------------------------------------------------------
    def max_cover_size(self) -> int:
        return self.k

    def admissible(
        self,
        cover_edges: frozenset,
        component: frozenset,
        frontier: frozenset,
        parent_cover: frozenset,
    ) -> bool:
        """Extra acceptance test for a guessed cover (default: none)."""
        return True

    def state_key(
        self, component: frozenset, parent_cover: frozenset, frontier: frozenset
    ) -> Hashable:
        """Memo key; for plain HDs the frontier summarizes the parent."""
        return (component, frontier)

    # -- search --------------------------------------------------------
    def run(self) -> Decomposition | None:
        """Search for an HD of width <= k; None when none exists."""
        hg = self.hypergraph
        if hg.num_vertices == 0:
            raise ValueError("hypergraph has no vertices")
        if not self._solve(hg.vertices, frozenset()):
            return None
        return self._rebuild()

    def _frontier(self, component: frozenset, parent_cover: frozenset) -> frozenset:
        """``V(R) ∩ ⋃ edges(C_r)``: the parent-cover part seen by C_r."""
        hg = self.hypergraph
        covered = hg.vertices_of(parent_cover)
        return covered & hg.vertices_of(hg.incident_edges(component))

    def _candidate_edges(
        self, component: frozenset, frontier: frozenset
    ) -> list[str]:
        """Edges that can usefully appear in S: those meeting C_r ∪ frontier.

        Normal-form HDs never need cover edges disjoint from the bag, and
        bags live inside ``B_r ∪ C_r`` — see module docs.
        """
        hg = self.hypergraph
        relevant = component | frontier
        return [e for e in self._edge_names if hg.edge(e) & relevant]

    def _guesses(
        self, component: frozenset, frontier: frozenset, parent_cover: frozenset
    ):
        """All admissible covers S for this state, best-first.

        Single edges are ordered by how much of the component ∪ frontier
        they cover, which lets the search commit to large separators early.
        """
        hg = self.hypergraph
        target = component | frontier
        candidates = sorted(
            self._candidate_edges(component, frontier),
            key=lambda e: (-len(hg.edge(e) & target), e),
        )
        for size in range(1, self.max_cover_size() + 1):
            for combo in combinations(candidates, size):
                cover = frozenset(combo)
                covered = hg.vertices_of(cover)
                if not frontier <= covered:
                    continue
                if not covered & component:
                    continue
                if not self.admissible(cover, component, frontier, parent_cover):
                    continue
                yield cover, covered

    def _solve(self, component: frozenset, parent_cover: frozenset) -> bool:
        frontier = self._frontier(component, parent_cover)
        key = self.state_key(component, parent_cover, frontier)
        if key in self._memo:
            return self._memo[key] is not None
        self._memo[key] = None
        self.states_explored += 1
        hg = self.hypergraph
        for cover, covered in self._guesses(component, frontier, parent_cover):
            child_components = components(hg.induced(component - covered), ())
            if all(self._solve(child, cover) for child in child_components):
                self._memo[key] = (cover, tuple(child_components))
                return True
        return False

    def _rebuild(self) -> Decomposition:
        hg = self.hypergraph
        nodes: list[tuple[str, frozenset, FractionalCover]] = []
        parent: dict[str, str] = {}
        counter = 0

        def build(
            component: frozenset,
            parent_cover: frozenset,
            parent_id: str | None,
            parent_bag: frozenset,
        ) -> None:
            nonlocal counter
            frontier = self._frontier(component, parent_cover)
            entry = self._memo[self.state_key(component, parent_cover, frontier)]
            assert entry is not None
            cover, child_components = entry
            node_id = f"n{counter}"
            counter += 1
            covered = hg.vertices_of(cover)
            bag = covered & (parent_bag | component)
            nodes.append(
                (node_id, bag, FractionalCover({e: 1.0 for e in cover}))
            )
            if parent_id is not None:
                parent[node_id] = parent_id
            for child in child_components:
                build(child, cover, node_id, bag)

        build(hg.vertices, frozenset(), None, frozenset())
        return Decomposition(nodes, parent=parent, root="n0")


def hypertree_decomposition(
    hypergraph: Hypergraph, k: int
) -> Decomposition | None:
    """Solve Check(HD,k): an HD of width <= k, or None.

    The returned decomposition is re-validated against Definition 2.5
    (including the special condition), so a non-None result is a
    certified "yes" instance.
    """
    result = HDSearch(hypergraph, k).run()
    if result is not None:
        validate(hypergraph, result, kind="hd", width=k)
    return result


def check_hd(hypergraph: Hypergraph, k: int) -> bool:
    """Decision version of Check(HD,k)."""
    return hypertree_decomposition(hypergraph, k) is not None


def hypertree_width(
    hypergraph: Hypergraph, kmax: int | None = None
) -> tuple[int, Decomposition]:
    """``hw(H)`` with a witness, by iterating Check(HD,k) for k = 1, 2, ...

    ``kmax`` defaults to ``|E(H)|`` (always sufficient: a single node with
    all edges is an HD).  Raises if no width within the cap is found.
    """
    cap = hypergraph.num_edges if kmax is None else kmax
    for k in range(1, cap + 1):
        decomposition = hypertree_decomposition(hypergraph, k)
        if decomposition is not None:
            return k, decomposition
    raise ValueError(f"no HD of width <= {cap} found (cap too small?)")
