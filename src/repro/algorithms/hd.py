"""Check(HD, k): the ``k-decomp`` algorithm of Gottlob, Leone & Scarcello.

The paper's positive results (Theorems 4.11, 4.15, 5.2, 6.1) all reduce the
problem at hand to hypertree decomposition search, which is polynomial for
fixed k [27].  The search itself is the generic Check(X, k) skeleton of
:class:`repro.engine.search.CheckSearch` — a deterministic, memoized
version of the alternating ``k-decomp`` algorithm running on the shared
:class:`~repro.engine.context.SearchContext` (memoized components,
frontiers and edge unions):

* a search state is a pair ``(C_r, R)`` of an open component and the
  parent's cover edges;
* at each state a set ``S`` of at most k edges is guessed such that
  (a) every edge e of the component satisfies ``e ∩ V(R) ⊆ V(S)``
  (equivalently the *frontier* ``V(R) ∩ ⋃ edges(C_r)`` is inside ``V(S)``)
  and (b) ``V(S)`` meets the component;
* the ``[V(S)]``-components inside ``C_r`` are solved recursively.

For plain HDs the acceptance of a state depends on ``R`` only through the
frontier, so states are memoized on ``(C_r, frontier)``; subclasses that
need the full parent cover (the strict search of Theorem 5.22) override
:meth:`CheckSearch.state_key`.

On acceptance the witness tree is rebuilt top-down with bags
``B_u = V(S_u) ∩ (B_r ∪ C_u)`` — this makes the special condition hold by
construction — and re-validated by :mod:`repro.decomposition.validation`.
"""

from __future__ import annotations

from ..decomposition import Decomposition, validate
from ..engine import CheckSearch
from ..hypergraph import Hypergraph
from ._pipeline import via_pipeline

__all__ = [
    "hypertree_decomposition",
    "check_hd",
    "hypertree_width",
    "HDSearch",
]


class HDSearch(CheckSearch):
    """Check(HD, k): the plain instantiation of the engine skeleton.

    All the machinery lives in :class:`repro.engine.search.CheckSearch`;
    this subclass exists as the named HD entry point and the base of the
    strict FHD search (Theorem 5.22), which overrides the hooks
    :meth:`~CheckSearch.admissible` and :meth:`~CheckSearch.state_key`.
    """


def _hypertree_decomposition_direct(
    hypergraph: Hypergraph, k: int
) -> Decomposition | None:
    """Check(HD,k) on the raw hypergraph (no preprocessing pipeline)."""
    result = HDSearch(hypergraph, k).run()
    if result is not None:
        validate(hypergraph, result, kind="hd", width=k)
    return result


def hypertree_decomposition(
    hypergraph: Hypergraph,
    k: int,
    preprocess: str = "full",
    jobs: int | None = None,
    solver: str | None = None,
    bounds: str | None = None,
) -> Decomposition | None:
    """Solve Check(HD,k): an HD of width <= k, or None.

    Runs through the reduce → split → solve → stitch pipeline
    (hd-safe rules, connected-component splitting) unless
    ``preprocess="none"``.  ``solver`` picks the per-block engine mode
    (``"bb"`` branch-and-bound — the default — ``"sat"`` for the CNF
    engine of :mod:`repro.sat`, ``"portfolio"`` to race both); non-bb
    modes always run through the pipeline.  The returned decomposition
    is re-validated against Definition 2.5 (including the special
    condition) on the original hypergraph, so a non-None result is a
    certified "yes" instance.
    """
    if k < 1:
        raise ValueError("width bound k must be >= 1")
    return via_pipeline(
        hypergraph,
        "hypertree_decomposition",
        _hypertree_decomposition_direct,
        preprocess,
        jobs,
        k,
        solver=solver,
        bounds=bounds,
    )


def check_hd(hypergraph: Hypergraph, k: int, **options) -> bool:
    """Decision version of Check(HD,k)."""
    return hypertree_decomposition(hypergraph, k, **options) is not None


def _hypertree_width_direct(
    hypergraph: Hypergraph, kmax: int | None = None
) -> tuple[int, Decomposition]:
    """The raw k = 1, 2, ... loop on the whole hypergraph."""
    cap = hypergraph.num_edges if kmax is None else kmax
    for k in range(1, cap + 1):
        decomposition = _hypertree_decomposition_direct(hypergraph, k)
        if decomposition is not None:
            return k, decomposition
    raise ValueError(f"no HD of width <= {cap} found (cap too small?)")


def hypertree_width(
    hypergraph: Hypergraph,
    kmax: int | None = None,
    preprocess: str = "full",
    jobs: int | None = None,
    solver: str | None = None,
    bounds: str | None = None,
) -> tuple[int, Decomposition]:
    """``hw(H)`` with a witness, by iterating Check(HD,k) for k = 1, 2, ...

    ``kmax`` defaults to ``|E(H)|`` (always sufficient: a single node with
    all edges is an HD).  Raises if no width within the cap is found.
    By default each connected component is reduced and solved separately
    through the pipeline (``preprocess="none"`` restores the raw loop;
    ``jobs=N`` parallelizes across components and candidate widths;
    ``solver`` picks the per-block engine mode — ``"bb"``, ``"sat"`` or
    ``"portfolio"`` — and non-bb modes always run through the
    pipeline).
    """
    return via_pipeline(
        hypergraph,
        "hypertree_width",
        _hypertree_width_direct,
        preprocess,
        jobs,
        kmax,
        solver=solver,
        bounds=bounds,
    )
