"""Subedge functions: the engine behind the tractable Check algorithms.

Section 4 reduces Check(GHD,k) to Check(HD,k) by adding to H a set
``f(H,k)`` of subedges such that ``ghw(H) = k  iff  hw(H ∪ f(H,k)) = k``.
The requirement (via Lemma 4.9) is that f contains every set

    e ∩ B_u  =  e ∩ ⋂_{i=1..ℓ} B(λ_{u_i})

arising along a critical path of a bag-maximal GHD of width <= k.  Three
generators are provided:

* :func:`ghd_subedges` — an exact fixpoint generator: starting from each
  edge e, repeatedly intersect with unions of <= k edges until no new set
  appears.  This captures *all* values ``e ∩ ⋂ B(λ_{u_i})`` regardless of
  path length, so it is complete whenever it terminates within its cap;
  under the BIP/BMIP the reachable sets are provably few.
* :func:`bip_subedges` — the closed-form set of Theorem 4.15,
  ``⋃_e ⋃_{e_1..e_j, j<=k} 2^(e ∩ (e_1 ∪ ... ∪ e_j))``, used to measure
  ``|f(H,k)| <= m^{k+1} · 2^{k·i}`` (experiment E08).
* :func:`limit_subedges` — the limit function f⁺ of [3, 28] (all
  non-empty subsets of edges), exact for any hypergraph but exponential.

Section 5's ``h_{d,k}`` (Lemma 5.17) is the fractional analogue: unions of
intersections of <= d edges; :func:`fhd_subedges` generates it with the
same fixpoint strategy (B(γ) is a union of *classes*, Lemma 5.10).

The faithful paper artifacts — Algorithm 1's ⋃⋂-tree and Algorithm 2's
intersection forest — are implemented verbatim for the experiments that
regenerate Figure 7 and the Lemma 5.15 facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..decomposition import Decomposition
from ..hypergraph import Hypergraph

__all__ = [
    "subedge_name",
    "ghd_subedges",
    "fhd_subedges",
    "bip_subedges",
    "bmip_subedges",
    "limit_subedges",
    "UnionIntersectionNode",
    "union_intersection_tree",
    "critical_path",
    "IntersectionForestNode",
    "intersection_forest",
    "forest_fringe",
]

#: Default cap on how many distinct subedges a generator may produce.
DEFAULT_MAX_SETS = 200_000


def subedge_name(content: frozenset) -> str:
    """Canonical name for a generated subedge."""
    return "sub:" + "|".join(sorted(map(str, content)))


def _named(sets: set[frozenset], hypergraph: Hypergraph) -> dict[str, frozenset]:
    """Name the sets, dropping ones that duplicate an existing edge."""
    existing = set(hypergraph.edges.values())
    return {
        subedge_name(s): s
        for s in sets
        if s and s not in existing
    }


def ghd_subedges(
    hypergraph: Hypergraph, k: int, max_sets: int = DEFAULT_MAX_SETS
) -> dict[str, frozenset]:
    """Exact fixpoint subedge set for Check(GHD,k) (Theorem 4.11 engine).

    For every edge e, computes all sets reachable from e by repeatedly
    intersecting with a union of at most k edges of H, i.e. every possible
    ``e ∩ ⋂_i B(λ_{u_i})``.  Each step is realized as "union of at most k
    pieces ``t ∩ e_j``", which avoids enumerating the m^k unions directly.

    Raises ``RuntimeError`` when more than ``max_sets`` sets appear —
    the signal that the instance lacks the intersection boundedness the
    theorem assumes (for BIP/BMIP classes the count is polynomial).
    """
    edge_sets = list(dict.fromkeys(hypergraph.edges.values()))
    reached: set[frozenset] = set()
    for e in edge_sets:
        frontier = {e}
        local: set[frozenset] = {e}
        while frontier:
            next_frontier: set[frozenset] = set()
            for t in frontier:
                pieces = sorted(
                    {t & f for f in edge_sets if t & f},
                    key=lambda s: (-len(s), sorted(map(str, s))),
                )
                if t in pieces:
                    # Some edge fully contains t: intersecting with a union
                    # including that edge is a no-op, and every union
                    # result is a union of pieces anyway.
                    pieces.remove(t)
                for size in range(1, min(k, len(pieces)) + 1):
                    for combo in combinations(pieces, size):
                        union = frozenset().union(*combo)
                        if union and union not in local:
                            local.add(union)
                            next_frontier.add(union)
                            if len(local) + len(reached) > max_sets:
                                raise RuntimeError(
                                    "subedge fixpoint exceeded "
                                    f"{max_sets} sets; the hypergraph "
                                    "lacks bounded (multi-)intersections"
                                )
            frontier = next_frontier
        reached |= local
    return _named(reached, hypergraph)


def fhd_subedges(
    hypergraph: Hypergraph,
    k: int,
    d: int | None = None,
    piece_cap: int = 14,
    max_sets: int = DEFAULT_MAX_SETS,
) -> dict[str, frozenset]:
    """Fixpoint generator for ``h_{d,k}(H)`` of Lemma 5.17.

    Along an FHD critical path, ``B(γ_{u_i})`` is a union of *classes*
    (Lemma 5.10), and under degree d every class is an intersection of at
    most d edges (deeper intersections are empty).  So each fixpoint step
    intersects the current set t with a union of class pieces
    ``t ∩ class``; since any union of pieces may occur (the paper's cap is
    the astronomically large 2^(d²k)), we take unions over *all* subsets
    of the distinct pieces, guarded by ``piece_cap``.

    ``d`` defaults to the hypergraph's degree.  Raises ``RuntimeError``
    when the caps are hit (instance too entangled for the BDP machinery).
    """
    from ..hypergraph import degree as degree_of  # local import, no cycle

    if d is None:
        d = degree_of(hypergraph)
    edge_sets = list(dict.fromkeys(hypergraph.edges.values()))

    # All classes: non-empty intersections of <= d edges.  Under the BDP,
    # intersections of more than d edges are empty, so this is complete.
    classes: set[frozenset] = set()
    def collect(current: frozenset, start: int, chosen: int) -> None:
        if chosen:
            classes.add(current)
        if chosen == d:
            return
        for idx in range(start, len(edge_sets)):
            nxt = (current & edge_sets[idx]) if chosen else edge_sets[idx]
            if nxt:
                collect(nxt, idx + 1, chosen + 1)
        if len(classes) > max_sets:
            raise RuntimeError("class enumeration exceeded max_sets")
    collect(frozenset(), 0, 0)

    reached: set[frozenset] = set()
    for e in edge_sets:
        frontier = {e}
        local: set[frozenset] = {e}
        while frontier:
            next_frontier: set[frozenset] = set()
            for t in frontier:
                pieces = sorted(
                    {t & c for c in classes if t & c},
                    key=lambda s: (-len(s), sorted(map(str, s))),
                )
                if t in pieces:
                    pieces.remove(t)
                if len(pieces) > piece_cap:
                    raise RuntimeError(
                        f"{len(pieces)} distinct pieces exceed piece_cap="
                        f"{piece_cap}; raise the cap for this instance"
                    )
                for size in range(1, len(pieces) + 1):
                    for combo in combinations(pieces, size):
                        union = frozenset().union(*combo)
                        if union and union not in local:
                            local.add(union)
                            next_frontier.add(union)
                            if len(local) + len(reached) > max_sets:
                                raise RuntimeError(
                                    "subedge fixpoint exceeded max_sets"
                                )
            frontier = next_frontier
        reached |= local
    return _named(reached, hypergraph)


def bmip_subedges(
    hypergraph: Hypergraph,
    k: int,
    c: int,
    max_subset_size: int = 18,
    max_sets: int = DEFAULT_MAX_SETS,
) -> dict[str, frozenset]:
    """The depth-truncated Theorem 4.11 set for BMIP classes.

    Follows the reduced ⋃⋂-tree argument: intersect each edge e with up
    to ``c - 1`` unions of <= k edges (realized as unions of pieces, like
    the fixpoint generator but depth-limited), then take *all* subsets of
    every reachable set — the truncation step that replaces the cut-off
    subtrees.  Under the i_c-BMIP each reachable set decomposes into at
    most k^{c-1} intersections of c edges, so its size is <= i·k^{c-1}
    and the powerset is polynomial for constant parameters.
    """
    if c < 2:
        raise ValueError("c must be >= 2 (c = 2 is the BIP case)")
    edge_sets = list(dict.fromkeys(hypergraph.edges.values()))
    reached: set[frozenset] = set()
    for e in edge_sets:
        level = {e}
        local: set[frozenset] = set()
        for _depth in range(c - 1):
            next_level: set[frozenset] = set()
            for t in level:
                pieces = sorted(
                    {t & f for f in edge_sets if t & f},
                    key=lambda s: (-len(s), sorted(map(str, s))),
                )
                if t in pieces:
                    pieces.remove(t)
                for size in range(1, min(k, len(pieces)) + 1):
                    for combo in combinations(pieces, size):
                        union = frozenset().union(*combo)
                        if union and union not in local:
                            local.add(union)
                            next_level.add(union)
            level = next_level
            if len(local) + len(reached) > max_sets:
                raise RuntimeError("bmip subedge enumeration exceeded max_sets")
        # Truncation powerset.
        for t in local:
            if len(t) > max_subset_size:
                raise RuntimeError(
                    f"reachable set of size {len(t)} exceeds "
                    f"max_subset_size={max_subset_size}; instance is not "
                    "BMIP-like enough for the truncated construction"
                )
            members = sorted(t, key=str)
            for size in range(1, len(members) + 1):
                for sub in combinations(members, size):
                    reached.add(frozenset(sub))
                    if len(reached) > max_sets:
                        raise RuntimeError(
                            "bmip subedge enumeration exceeded max_sets"
                        )
    return _named(reached, hypergraph)


def bip_subedges(
    hypergraph: Hypergraph,
    k: int,
    max_intersection: int = 20,
) -> dict[str, frozenset]:
    """The explicit Theorem 4.15 set: all subsets of ``e ∩ (e_1 ∪ .. ∪ e_j)``.

    Exactly the paper's closed form for BIP classes; its size obeys
    ``|f(H,k)| <= m^{k+1} · 2^{k·i}``.  ``max_intersection`` guards the
    powerset step (the theorem's premise gives ``|e ∩ union| <= i·k``).
    """
    names = list(hypergraph.edge_names)
    out: set[frozenset] = set()
    for e_name in names:
        e = hypergraph.edge(e_name)
        others = [n for n in names if n != e_name]
        bases: set[frozenset] = set()
        for j in range(1, k + 1):
            for combo in combinations(others, j):
                union = frozenset().union(
                    *(hypergraph.edge(n) for n in combo)
                )
                t = e & union
                if t:
                    bases.add(t)
        for t in bases:
            if len(t) > max_intersection:
                raise RuntimeError(
                    f"intersection of size {len(t)} exceeds "
                    f"max_intersection={max_intersection}; instance is "
                    "not BIP-like enough for the closed form"
                )
            members = sorted(t, key=str)
            for size in range(1, len(members) + 1):
                for sub in combinations(members, size):
                    out.add(frozenset(sub))
    return _named(out, hypergraph)


def limit_subedges(
    hypergraph: Hypergraph, max_edge_size: int = 16
) -> dict[str, frozenset]:
    """The limit function f⁺: all non-empty proper subsets of all edges.

    ``hw(H ∪ f⁺(H)) = ghw(H)`` [3, 28] — exact but exponential; only for
    small edges (guarded by ``max_edge_size``).
    """
    out: set[frozenset] = set()
    for e in hypergraph.edges.values():
        if len(e) > max_edge_size:
            raise RuntimeError(
                f"edge of size {len(e)} exceeds max_edge_size="
                f"{max_edge_size} for the limit subedge function"
            )
        members = sorted(e, key=str)
        for size in range(1, len(members)):
            for sub in combinations(members, size):
                out.add(frozenset(sub))
    return _named(out, hypergraph)


# ----------------------------------------------------------------------
# Algorithm 1: the ⋃⋂-tree (Union-of-Intersections-Tree)
# ----------------------------------------------------------------------

@dataclass
class UnionIntersectionNode:
    """A node of the ⋃⋂-tree: a label (set of edge names) and children."""

    label: frozenset
    children: list["UnionIntersectionNode"] = field(default_factory=list)

    def intersection(self, hypergraph: Hypergraph) -> frozenset:
        """``int(p)``: the intersection of the labelled edges."""
        sets = [hypergraph.edge(name) for name in self.label]
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out

    def leaves(self) -> list["UnionIntersectionNode"]:
        if not self.children:
            return [self]
        out: list[UnionIntersectionNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def critical_path(
    hypergraph: Hypergraph, decomp: Decomposition, node_id: str, edge_name: str
) -> list[str]:
    """``critp(u, e)`` (Definition 4.8): path from u to the closest node
    covering e.  Raises when no node covers e (invalid decomposition)."""
    e = hypergraph.edge(edge_name)
    covering = [nid for nid in decomp.node_ids if e <= decomp.bag(nid)]
    if not covering:
        raise ValueError(f"no node covers edge {edge_name!r}")
    paths = [decomp.path_between(node_id, target) for target in covering]
    return min(paths, key=len)


def union_intersection_tree(
    hypergraph: Hypergraph,
    edge_name: str,
    path_covers: list[frozenset],
) -> UnionIntersectionNode:
    """Algorithm 1 verbatim: build T_ℓ for edge e and λ-sets along critp.

    ``path_covers`` lists ``λ_{u_1}, ..., λ_{u_ℓ}`` (edge-name sets of the
    critical path, excluding u_0 = u itself).  The union of ``int(p)``
    over the leaves of the result equals ``e ∩ ⋂_i B(λ_{u_i})`` — which by
    Lemma 4.9 is ``e ∩ B_u`` for bag-maximal GHDs.
    """
    root = UnionIntersectionNode(label=frozenset([edge_name]))
    for lam in path_covers:
        for leaf in root.leaves():
            if leaf.label & lam:
                continue  # e (or a chosen edge) is in λ_{u_i}: I stays put
            for extra in sorted(lam):
                leaf.children.append(
                    UnionIntersectionNode(label=leaf.label | {extra})
                )
    return root


# ----------------------------------------------------------------------
# Algorithm 2: the intersection forest IF(ξ)
# ----------------------------------------------------------------------

@dataclass
class IntersectionForestNode:
    """A node of IF(ξ): vertex set, levels, maximal type, mark, children."""

    set_: frozenset
    levels: set[int]
    edges: frozenset
    mark: str = "ok"
    children: list["IntersectionForestNode"] = field(default_factory=list)

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def all_nodes(self) -> list["IntersectionForestNode"]:
        out = [self]
        for child in self.children:
            out.extend(child.all_nodes())
        return out


def _classes(hypergraph: Hypergraph, group: frozenset) -> list[frozenset]:
    """``C(ξ_i)``: all non-empty classes of the subhypergraph on ``group``."""
    sets = [hypergraph.edge(name) for name in sorted(group)]
    out: set[frozenset] = set()

    def expand(current: frozenset, start: int, chosen: bool) -> None:
        if chosen and current:
            out.add(current)
        for idx in range(start, len(sets)):
            nxt = (current & sets[idx]) if chosen else sets[idx]
            if nxt:
                expand(nxt, idx + 1, True)

    expand(frozenset(), 0, False)
    return sorted(out, key=lambda s: (-len(s), sorted(map(str, s))))


def intersection_forest(
    hypergraph: Hypergraph, xi: list[frozenset]
) -> list[IntersectionForestNode]:
    """Algorithm 2 verbatim: the intersection forest IF(ξ).

    ``xi`` is a sequence of groups of edge names (each a potential
    ``supp(γ_u)`` along a critical path).  Returns the list of root nodes.
    """
    if not xi:
        return []
    maximal_type = lambda s: frozenset(
        name for name in hypergraph.edge_names if s <= hypergraph.edge(name)
    )
    roots = [
        IntersectionForestNode(set_=c, levels={1}, edges=maximal_type(c))
        for c in _classes(hypergraph, xi[0])
    ]
    for i in range(2, len(xi) + 1):
        classes = _classes(hypergraph, xi[i - 1])
        stack = list(roots)
        leaves: list[IntersectionForestNode] = []
        while stack:
            node = stack.pop()
            if node.children:
                stack.extend(node.children)
            elif node.mark == "ok" and max(node.levels) == i - 1:
                leaves.append(node)
        for node in leaves:
            dead_end = True
            for c in classes:
                meet = node.set_ & c
                if not meet:
                    continue
                dead_end = False
                if meet == node.set_:
                    node.levels.add(i)  # Passing
                else:
                    node.children.append(  # Expand
                        IntersectionForestNode(
                            set_=meet, levels={i}, edges=maximal_type(meet)
                        )
                    )
            if dead_end and not node.children and i not in node.levels:
                node.mark = "fail"
    return roots


def forest_fringe(
    roots: list[IntersectionForestNode], max_level: int
) -> list[frozenset]:
    """``F(ξ)``: the set labels at level max(ξ) with mark ok (Def. 5.14)."""
    out: list[frozenset] = []
    for root in roots:
        for node in root.all_nodes():
            if node.mark == "ok" and max_level in node.levels:
                out.append(node.set_)
    return out
