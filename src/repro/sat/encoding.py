"""CNF encoding of elimination-ordering width checks (Check(X, k)).

The model follows the frasmt/PACE lineage: a width-``k`` check is
phrased over a *vertex elimination ordering* rather than over tree
shapes directly.

Variables
---------

``ord(i, j)``
    one variable per unordered vertex pair; its sign chooses which of
    the two vertices is eliminated first.  Transitivity clauses over
    all triples make the relation a total order.
``arc(i, j)``
    "``j`` is in the bag created when ``i`` is eliminated".  Primal
    clauses seed the arcs (every hyperedge pair is an arc one way or
    the other), arc→ord clauses orient them, and the fill rule
    (``arc(i,j) ∧ arc(i,l) ∧ ord(j,l) → arc(j,l)``) closes them under
    elimination, so in every model the bag of ``i`` is a superset of
    the true fill bag ``bag_π(i)`` — and in the *minimal* model it is
    exactly the fill bag.
``weight(i, e)``
    (kind ``"cover"`` only) edge ``e`` participates in the integral
    cover of ``i``'s bag.  Cover clauses force each bag to be covered
    and a sequential-counter [Sinz 2005] caps each bag's cover at
    ``k`` edges.

Soundness/completeness relative to the ordering characterisation: a
model exists iff some elimination ordering has every fill bag
(integrally) coverable with at most ``k`` edges — the same quantity the
branch-and-bound and DP engines bound.  Kind ``"structural"`` omits the
weight layer entirely; the fractional CEGAR loop in
:mod:`repro.sat.checks` prices bags with the LP oracle instead and
refutes bad bags via :meth:`EliminationEncoding.block_bag`.

Arcs between different connected components are forbidden outright
(fill never crosses components), which both prunes the search and lets
weight variables be allocated per component.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..hypergraph import Hypergraph
from ..hypergraph.components import connected_components

__all__ = ["EliminationEncoding"]

#: Encoding flavours: "cover" carries the integral-cover layer (needs
#: an integer k), "structural" is ord/arc only (for the fractional CEGAR).
_KINDS = ("cover", "structural")


class EliminationEncoding:
    """CNF for "some elimination ordering of ``hypergraph`` has width ≤ k".

    The clause list is built eagerly in ``__init__`` and exposed as
    :attr:`clauses` (lists of signed ints) with :attr:`num_vars`
    variables.  CEGAR refinements append the clauses produced by
    :meth:`block_ordering` / :meth:`block_bag`.
    """

    def __init__(self, hypergraph: Hypergraph, kind: str = "cover", k: int | None = None):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if kind == "cover":
            if k is None or int(k) != k or k < 1:
                raise ValueError("cover encoding needs an integer k >= 1")
            k = int(k)
        self.hypergraph = hypergraph
        self.kind = kind
        self.k = k
        self.vertices: tuple = tuple(sorted(hypergraph.vertices, key=str))
        self._position: dict = {v: i for i, v in enumerate(self.vertices)}
        self.clauses: list[list[int]] = []
        self._counter = 0
        n = len(self.vertices)

        # ord(i, j) for index pairs i < j; arc(i, j) for all ordered pairs.
        self._ord: dict[tuple[int, int], int] = {}
        for i in range(n):
            for j in range(i + 1, n):
                self._ord[(i, j)] = self._new_var()
        self._arc: dict[tuple[int, int], int] = {}
        for i in range(n):
            for j in range(n):
                if i != j:
                    self._arc[(i, j)] = self._new_var()

        component_of: dict = {}
        for comp in connected_components(hypergraph):
            for v in comp:
                component_of[v] = comp

        self._build_order_clauses(n)
        self._build_arc_clauses(n, component_of)
        if kind == "cover":
            self._build_cover_clauses(n, component_of)

    # -- variable bookkeeping ------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of CNF variables allocated so far."""
        return self._counter

    def _new_var(self) -> int:
        self._counter += 1
        return self._counter

    def ord_literal(self, i: int, j: int) -> int:
        """The literal asserting vertex index ``i`` precedes index ``j``."""
        if i < j:
            return self._ord[(i, j)]
        return -self._ord[(j, i)]

    def arc_variable(self, i: int, j: int) -> int:
        """The variable for "index ``j`` lies in the bag of index ``i``"."""
        return self._arc[(i, j)]

    # -- clause families -----------------------------------------------

    def _build_order_clauses(self, n: int) -> None:
        add = self.clauses.append
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                for l in range(n):
                    if l == i or l == j:
                        continue
                    # ord is transitive: i<j and j<l imply i<l.
                    add([
                        -self.ord_literal(i, j),
                        -self.ord_literal(j, l),
                        self.ord_literal(i, l),
                    ])

    def _build_arc_clauses(self, n: int, component_of: Mapping) -> None:
        add = self.clauses.append
        # Primal seeding: co-occurring vertices are arc-adjacent.
        seen_pairs: set[tuple[int, int]] = set()
        for edge in self.hypergraph.edges.values():
            indices = sorted(self._position[v] for v in edge)
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    pair = (indices[a], indices[b])
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        add([self._arc[pair], self._arc[(pair[1], pair[0])]])
        for i in range(n):
            vi = self.vertices[i]
            for j in range(n):
                if j == i:
                    continue
                # Arcs point forward in the elimination order.
                add([-self._arc[(i, j)], self.ord_literal(i, j)])
                # Fill never crosses connected components.
                if component_of[vi] is not component_of[self.vertices[j]]:
                    add([-self._arc[(i, j)]])
        # Fill rule: eliminating i connects its surviving neighbours.
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                for l in range(n):
                    if l == i or l == j:
                        continue
                    add([
                        -self._arc[(i, j)],
                        -self._arc[(i, l)],
                        -self.ord_literal(j, l),
                        self._arc[(j, l)],
                    ])

    def _build_cover_clauses(self, n: int, component_of: Mapping) -> None:
        add = self.clauses.append
        edges = self.hypergraph.edges
        self._weight: dict[tuple[int, str], int] = {}
        for i in range(n):
            vi = self.vertices[i]
            comp = component_of[vi]
            candidates = [name for name, verts in edges.items() if verts & comp]
            for name in candidates:
                self._weight[(i, name)] = self._new_var()
            # The bag of i contains i itself…
            add([self._weight[(i, name)] for name in candidates if vi in edges[name]])
            # …and every arc target, each of which must be covered.
            for j in range(n):
                if j == i:
                    continue
                vj = self.vertices[j]
                if component_of[vj] is not comp:
                    continue  # the arc is already forbidden
                add(
                    [-self._arc[(i, j)]]
                    + [self._weight[(i, name)] for name in candidates if vj in edges[name]]
                )
            self._add_cardinality([self._weight[(i, name)] for name in candidates], self.k)

    def _add_cardinality(self, xs: Sequence[int], k: int) -> None:
        """Sequential-counter (Sinz LTseq) constraint ``sum(xs) <= k``."""
        add = self.clauses.append
        m = len(xs)
        if k >= m:
            return
        if k == 0:
            for x in xs:
                add([-x])
            return
        s = [[self._new_var() for _ in range(k)] for _ in range(m)]
        add([-xs[0], s[0][0]])
        for q in range(1, k):
            add([-s[0][q]])
        for p in range(1, m):
            add([-xs[p], s[p][0]])
            add([-s[p - 1][0], s[p][0]])
            for q in range(1, k):
                add([-xs[p], -s[p - 1][q - 1], s[p][q]])
                add([-s[p - 1][q], s[p][q]])
            add([-xs[p], -s[p - 1][k - 1]])

    # -- model decoding and CEGAR refinements --------------------------

    def decode_ordering(self, model: Iterable[int]) -> list:
        """Recover the elimination ordering from a model's ord variables."""
        model = set(model)
        n = len(self.vertices)
        predecessors = [0] * n
        for (i, j), var in self._ord.items():
            if var in model:
                predecessors[j] += 1
            else:
                predecessors[i] += 1
        order = sorted(range(n), key=lambda i: predecessors[i])
        return [self.vertices[i] for i in order]

    def block_ordering(self, ordering: Sequence) -> list[int]:
        """A clause excluding exactly this elimination ordering.

        Adjacent precedences determine the whole permutation under
        transitivity, so negating them kills this ordering and no other.
        """
        clause = []
        for a, b in zip(ordering, ordering[1:]):
            clause.append(
                -self.ord_literal(self._position[a], self._position[b])
            )
        return clause

    def block_bag(self, vertex_set: Iterable) -> list[list[int]]:
        """Clauses forbidding ``vertex_set`` from fitting inside any bag.

        Used by the fractional CEGAR loop: once the LP oracle prices a
        fill bag above ``k``, every superset of it must be excluded from
        every node's bag.  Minimal models of good orderings (bags =
        exact fill bags) are never excluded, so completeness survives.
        """
        indices = [self._position[v] for v in vertex_set]
        clauses = []
        for x in range(len(self.vertices)):
            clause = [
                -self._arc[(x, j)] for j in indices if j != x
            ]
            clauses.append(clause)
        return clauses
