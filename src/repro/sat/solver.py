"""A dependency-free CDCL SAT solver.

This is the pure-python counterpart of the ``covers/simplex.py``
precedent: a small, self-contained decision procedure that keeps the
SAT engine usable when ``python-sat`` is not installed.  It implements
the standard modern recipe at modest scale:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* phase saving (default phase *false*, which biases models towards few
  ``arc`` variables and therefore towards minimal fill — helpful for
  the elimination-ordering decoders in :mod:`repro.sat.checks`),
* VSIDS-style activity with exponential decay, and
* Luby-sequence restarts.

Variables are positive integers ``1..num_vars``; literals are signed
ints (``-v`` is the negation of ``v``).  Clauses are iterables of
literals.  ``solve`` returns the set of *true* variables of a model, or
``None`` for unsatisfiable.

The solver supports cooperative cancellation: pass a
``threading.Event`` as ``abort`` and the search raises
:class:`SolveAborted` shortly after the event is set.  The portfolio
scheduler uses this to stop a losing SAT engine without waiting for it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["CDCLSolver", "SolveAborted", "solve_cnf"]

#: How many conflicts pass between cooperative abort checks.
_ABORT_CHECK_INTERVAL = 64

#: Base unit (in conflicts) of the Luby restart sequence.
_RESTART_UNIT = 100

#: Multiplicative activity decay applied after each conflict.
_ACTIVITY_DECAY = 0.95

#: Rescale threshold guarding against float overflow of activities.
_ACTIVITY_CAP = 1e100


class SolveAborted(Exception):
    """Raised by :meth:`CDCLSolver.solve` when its abort event is set."""


def _luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class CDCLSolver:
    """Conflict-driven clause-learning solver over integer literals.

    Typical use::

        solver = CDCLSolver(num_vars=3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        model = solver.solve()      # set of true variables, or None

    Instances are single-shot: after :meth:`solve` returns, the solver
    keeps its learnt clauses and may be re-solved after adding more
    clauses (incremental strengthening), which the CEGAR loops in
    :mod:`repro.sat.checks` rely on.
    """

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._assign: dict[int, int] = {}  # var -> +1/-1
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[list[int]]] = {}
        self._trail: list[int] = []  # assigned literals in order
        self._trail_lim: list[int] = []  # trail indices at decision levels
        self._queue_head = 0
        self._activity: dict[int, float] = {}
        self._phase: dict[int, int] = {}  # saved phase per var (+1/-1)
        self._unsat = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        if num_vars:
            self.ensure_vars(num_vars)

    # -- construction --------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe to at least ``num_vars``."""
        for v in range(self.num_vars + 1, num_vars + 1):
            self._watches[v] = []
            self._watches[-v] = []
            self._activity[v] = 0.0
            self._phase[v] = -1
        self.num_vars = max(self.num_vars, num_vars)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat.

        Duplicate literals are removed and tautological clauses are
        dropped.  Unit clauses are enqueued at level 0.  May be called
        between :meth:`solve` invocations (the trail is rewound to the
        root level first).
        """
        if self._unsat:
            return False
        self._backtrack(0)
        seen = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._unsat = True
            return False
        top = max(abs(lit) for lit in clause)
        if top > self.num_vars:
            self.ensure_vars(top)
        # Drop root-level falsified literals; detect satisfied clauses.
        reduced = []
        for lit in clause:
            value = self._value(lit)
            if value > 0:
                return True  # already satisfied at level 0
            if value == 0:
                reduced.append(lit)
        if not reduced:
            self._unsat = True
            return False
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        self._attach(reduced)
        return True

    def _attach(self, clause: list[int]) -> None:
        self._clauses.append(clause)
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # -- assignment primitives ----------------------------------------

    def _value(self, lit: int) -> int:
        """+1 if lit is true, -1 if false, 0 if unassigned."""
        sign = self._assign.get(abs(lit), 0)
        if sign == 0:
            return 0
        return sign if lit > 0 else -sign

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        value = self._value(lit)
        if value > 0:
            return True
        if value < 0:
            return False
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in self._trail[limit:]:
            var = abs(lit)
            self._phase[var] = self._assign[var]
            del self._assign[var]
            del self._level[var]
            del self._reason[var]
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = min(self._queue_head, len(self._trail))

    # -- propagation ---------------------------------------------------

    def _propagate(self) -> Optional[list[int]]:
        """Exhaust unit propagation; return a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            watching = self._watches[-lit]
            kept: list[list[int]] = []
            self._watches[-lit] = kept
            i = 0
            while i < len(watching):
                clause = watching[i]
                i += 1
                # Normalise: the falsified watch sits at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) > 0:
                    kept.append(clause)
                    continue
                # Look for a replacement watch.
                for j in range(2, len(clause)):
                    if self._value(clause[j]) >= 0:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watches[clause[1]].append(clause)
                        break
                else:
                    kept.append(clause)
                    if not self._enqueue(first, clause):
                        kept.extend(watching[i:])
                        return clause  # conflict
        return None

    # -- conflict analysis ---------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._bump_amount
        if self._activity[var] > _ACTIVITY_CAP:
            scale = 1.0 / _ACTIVITY_CAP
            for v in self._activity:
                self._activity[v] *= scale
            self._bump_amount *= scale

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis: learnt clause + backjump level."""
        current_level = len(self._trail_lim)
        learnt = [0]  # slot 0 reserved for the asserting literal
        seen: set[int] = set()
        counter = 0
        clause = conflict
        skip_first = False  # reason clauses carry their implied literal first
        index = len(self._trail) - 1
        while True:
            for pos, q in enumerate(clause):
                if skip_first and pos == 0:
                    continue
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Walk the trail back to the next marked literal.
            while abs(self._trail[index]) not in seen:
                index -= 1
            lit = -self._trail[index]
            var = abs(lit)
            seen.discard(var)
            counter -= 1
            index -= 1
            if counter == 0:
                learnt[0] = lit
                break
            clause = self._reason[var] or []
            skip_first = True
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        back = max(self._level[abs(q)] for q in learnt[1:])
        # Watch a literal from the backjump level at position 1.
        for j in range(1, len(learnt)):
            if self._level[abs(learnt[j])] == back:
                learnt[1], learnt[j] = learnt[j], learnt[1]
                break
        return learnt, back

    # -- search --------------------------------------------------------

    def _decide(self) -> int:
        best_var = 0
        best_score = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self._assign and self._activity[var] > best_score:
                best_var = var
                best_score = self._activity[var]
        return best_var * self._phase.get(best_var, -1)

    def solve(self, abort=None) -> Optional[set]:
        """Search for a model.

        Returns the set of variables assigned *true*, or ``None`` if the
        formula is unsatisfiable.  If ``abort`` (a ``threading.Event``)
        is set during the search, :class:`SolveAborted` is raised.
        """
        if self._unsat:
            return None
        self._bump_amount = 1.0
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return None
        restart_count = 0
        conflicts_until_restart = _luby(1) * _RESTART_UNIT
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if abort is not None and self.conflicts % _ABORT_CHECK_INTERVAL == 0:
                    if abort.is_set():
                        raise SolveAborted("sat solve aborted")
                if not self._trail_lim:
                    self._unsat = True
                    return None
                learnt, back = self._analyze(conflict)
                self._backtrack(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return None
                else:
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self._bump_amount /= _ACTIVITY_DECAY
                continue
            if conflicts_here >= conflicts_until_restart:
                restart_count += 1
                conflicts_here = 0
                conflicts_until_restart = _luby(restart_count + 1) * _RESTART_UNIT
                self._backtrack(0)
                continue
            lit = self._decide()
            if lit == 0:
                return {v for v, sign in self._assign.items() if sign > 0}
            self.decisions += 1
            if abort is not None and self.decisions % (4 * _ABORT_CHECK_INTERVAL) == 0:
                if abort.is_set():
                    raise SolveAborted("sat solve aborted")
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)


def solve_cnf(
    clauses: Sequence[Iterable[int]], num_vars: int = 0, abort=None
) -> Optional[set]:
    """One-shot convenience: solve ``clauses`` and return a model or None."""
    solver = CDCLSolver(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return None
    return solver.solve(abort=abort)
