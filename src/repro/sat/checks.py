"""SAT-backed exact Check(X, k) procedures for hw / ghw / fhw.

Each function mirrors the branch-and-bound entry point of the same
width kind: given a hypergraph and a width bound ``k``, return a
*validated* decomposition of width ≤ k, or ``None`` if none exists.
They are registered as per-block solvers in
:mod:`repro.pipeline.solve` under ``sat-check-hd`` / ``sat-check-ghd``
/ ``sat-check-fhd`` and race the branch-and-bound engines in
``solver="portfolio"`` mode.

Strategy per kind (all built on
:class:`repro.sat.encoding.EliminationEncoding`):

``ghw``
    one shot: solve the ``"cover"`` encoding, decode the elimination
    ordering, rebuild the clique-tree decomposition with minimum
    integral covers from the shared engine oracle, validate.
``fhw``
    CEGAR over the ``"structural"`` encoding: decode an ordering, price
    its fill bags with the fractional-cover LP; bags above ``k`` are
    excluded via :meth:`EliminationEncoding.block_bag` and the solver
    re-runs.  ρ* is monotone, so blocked bags never appear in a good
    ordering's fill, and each round excludes at least the current
    ordering — the loop terminates.
``hw``
    CEGAR with a completion check: the cover encoding is necessary
    (ghw ≤ hw); for each candidate ordering, :func:`_complete_hd` tries
    to satisfy the special condition by re-rooting the fill clique tree
    per biconnected-free component and re-covering each bag from the
    edges the special condition allows there.  Orderings that cannot be
    completed are excluded one at a time via
    :meth:`EliminationEncoding.block_ordering`.

Every "yes" answer is re-validated through
:mod:`repro.decomposition.validation` before being returned, so a bug
in the encoding can only surface as a "no"/exception — never as a
wrong witness.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from ..algorithms.elimination import _reachable_bag, decomposition_from_ordering
from ..covers import EPS
from ..decomposition import Decomposition
from ..decomposition.validation import validate
from ..engine import oracle_for
from ..hypergraph import Hypergraph
from ..hypergraph.components import connected_components
from .backends import get_sat_backend
from .encoding import EliminationEncoding

__all__ = [
    "sat_fractional_hypertree_decomposition",
    "sat_generalized_hypertree_decomposition",
    "sat_hypertree_decomposition",
]


def _fill_bags(hypergraph: Hypergraph, ordering: list) -> list[frozenset]:
    """``bag_π(v)`` for each vertex of the elimination ordering."""
    adjacency = hypergraph.primal_graph()
    bags = []
    for i, v in enumerate(ordering):
        bags.append(_reachable_bag(adjacency, frozenset(ordering[:i]), v))
    return bags


def _exact_cover(bag: frozenset, candidates: list[tuple[str, frozenset]], limit: int) -> Optional[dict]:
    """Minimum-cardinality set cover of ``bag`` from ``candidates``, ≤ limit.

    Exact branch-and-bound on the vertex with fewest covering options.
    Returns an edge-name → 1.0 mapping or None.
    """
    restrictions: dict[frozenset, str] = {}
    for name, verts in candidates:
        r = frozenset(verts & bag)
        if r and r not in restrictions:
            restrictions[r] = name
    keys = list(restrictions)
    items = [
        (restrictions[r], r)
        for r in keys
        if not any(r < s for s in keys)
    ]

    def search(uncovered: frozenset, chosen: list[str]) -> Optional[list[str]]:
        if not uncovered:
            return list(chosen)
        if len(chosen) >= limit:
            return None
        v = min(
            uncovered, key=lambda u: sum(1 for _, r in items if u in r)
        )
        for name, r in items:
            if v in r:
                chosen.append(name)
                found = search(uncovered - r, chosen)
                chosen.pop()
                if found is not None:
                    return found
        return None

    names = search(frozenset(bag), [])
    if names is None:
        return None
    return {name: 1.0 for name in names}


def _complete_hd(
    hypergraph: Hypergraph, ordering: list, k: int
) -> Optional[Decomposition]:
    """Try to turn an elimination ordering into a width-≤k *hypertree*
    decomposition (special condition included).

    The fill clique tree fixes bags and topology per connected
    component; what is free is the rooting and the λ covers.  For every
    rooting, condition 4 of Definition 2.5 restricts node ``u`` to
    edges ``e`` with ``e ∩ V(T_u) ⊆ B_u``; each bag is then re-covered
    exactly from the allowed edges.  Components succeed or fail
    independently; roots of the non-primary components hang off the
    primary root (their vertex sets are disjoint, so neither
    connectedness nor the special condition is disturbed).
    """
    n = len(ordering)
    bags = _fill_bags(hypergraph, ordering)
    position = {v: i for i, v in enumerate(ordering)}
    # Undirected clique-tree links: i — m(i), the node of the earliest
    # later-eliminated vertex in bag i.
    neighbours: list[set[int]] = [set() for _ in range(n)]
    for i, bag in enumerate(bags):
        later = [position[u] for u in bag if position[u] > i]
        if later:
            m = min(later)
            neighbours[i].add(m)
            neighbours[m].add(i)
    components = connected_components(hypergraph)
    groups = [
        [i for i in range(n) if ordering[i] in comp] for comp in components
    ]
    edges = hypergraph.edges
    cover_memo: dict[tuple[frozenset, frozenset], Optional[dict]] = {}

    def covers_for_rooting(group: list[int], root: int) -> Optional[dict[int, dict]]:
        # Orient the tree away from root, collect subtree vertex unions.
        order: list[int] = []
        parent: dict[int, int] = {root: -1}
        stack = [root]
        while stack:
            u = stack.pop()
            order.append(u)
            for w in neighbours[u]:
                if w not in parent:
                    parent[w] = u
                    stack.append(w)
        subtree: dict[int, frozenset] = {}
        for u in reversed(order):
            acc = set(bags[u])
            for w in neighbours[u]:
                if parent.get(w) == u:
                    acc |= subtree[w]
            subtree[u] = frozenset(acc)
        covers: dict[int, dict] = {}
        for u in order:
            allowed = frozenset(
                name
                for name, verts in edges.items()
                if verts & subtree[u] <= bags[u]
            )
            key = (bags[u], allowed)
            if key not in cover_memo:
                cover_memo[key] = _exact_cover(
                    bags[u], [(name, edges[name]) for name in allowed], k
                )
            if cover_memo[key] is None:
                return None
            covers[u] = cover_memo[key]
        return covers

    chosen_parent: dict[str, str] = {}
    chosen_covers: dict[int, dict] = {}
    primary_root: Optional[int] = None
    for group in groups:
        # The natural root (last-eliminated vertex) first — it is the
        # orientation the standard clique tree uses and usually works.
        roots = sorted(group, reverse=True)
        for root in roots:
            covers = covers_for_rooting(group, root)
            if covers is not None:
                break
        else:
            return None
        chosen_covers.update(covers)
        parent: dict[int, int] = {root: -1}
        stack = [root]
        while stack:
            u = stack.pop()
            for w in neighbours[u]:
                if w not in parent:
                    parent[w] = u
                    chosen_parent[f"n{w}"] = f"n{u}"
                    stack.append(w)
        if primary_root is None:
            primary_root = root
        else:
            chosen_parent[f"n{root}"] = f"n{primary_root}"
    nodes = [(f"n{i}", bags[i], chosen_covers[i]) for i in range(n)]
    decomposition = Decomposition(
        nodes, parent=chosen_parent, root=f"n{primary_root}"
    )
    validate(hypergraph, decomposition, kind="hd", width=k)
    return decomposition


def _require_k(k, *, integral: bool) -> None:
    if integral and (int(k) != k or k < 1):
        raise ValueError(f"k must be an integer >= 1, got {k!r}")
    if not integral and k < 1 - EPS:
        raise ValueError(f"k must be >= 1, got {k!r}")


def sat_generalized_hypertree_decomposition(
    hypergraph: Hypergraph, k: int, backend: Optional[str] = None, abort=None
) -> Optional[Decomposition]:
    """Check(GHD, k) via the SAT cover encoding.

    Returns a validated GHD of width ≤ k, or None if ghw(H) > k.
    """
    _require_k(k, integral=True)
    k = int(k)
    encoding = EliminationEncoding(hypergraph, kind="cover", k=k)
    model = get_sat_backend(backend).solve(
        encoding.num_vars, encoding.clauses, abort=abort
    )
    if model is None:
        return None
    ordering = encoding.decode_ordering(model)
    oracle = oracle_for(hypergraph)

    def cover_for_bag(bag):
        cover = oracle.integral_cover(bag)
        if cover is None:  # pragma: no cover - excluded by the encoding
            raise RuntimeError(f"SAT model produced uncoverable bag {set(bag)}")
        return cover

    decomposition = decomposition_from_ordering(hypergraph, ordering, cover_for_bag)
    validate(hypergraph, decomposition, kind="ghd", width=k)
    return decomposition


def sat_hypertree_decomposition(
    hypergraph: Hypergraph, k: int, backend: Optional[str] = None, abort=None
) -> Optional[Decomposition]:
    """Check(HD, k) via SAT + completion CEGAR.

    The cover encoding enumerates orderings whose fill bags are
    coverable with ≤ k edges (necessary, since ghw ≤ hw); orderings the
    special condition cannot be completed for are excluded one by one.
    Returns a validated HD of width ≤ k, or None if hw(H) > k.
    """
    _require_k(k, integral=True)
    k = int(k)
    encoding = EliminationEncoding(hypergraph, kind="cover", k=k)
    clauses = list(encoding.clauses)
    solver = get_sat_backend(backend)
    for _round in count():
        model = solver.solve(encoding.num_vars, clauses, abort=abort)
        if model is None:
            return None
        ordering = encoding.decode_ordering(model)
        decomposition = _complete_hd(hypergraph, ordering, k)
        if decomposition is not None:
            return decomposition
        clauses.append(encoding.block_ordering(ordering))
    return None  # pragma: no cover - count() never ends


def sat_fractional_hypertree_decomposition(
    hypergraph: Hypergraph, k: float, backend: Optional[str] = None, abort=None
) -> Optional[Decomposition]:
    """Check(FHD, k) via structural SAT + LP-priced bag CEGAR.

    Returns a validated FHD of width ≤ k (+EPS), or None if fhw(H) > k.
    """
    _require_k(k, integral=False)
    encoding = EliminationEncoding(hypergraph, kind="structural")
    clauses = list(encoding.clauses)
    solver = get_sat_backend(backend)
    oracle = oracle_for(hypergraph)
    for _round in count():
        model = solver.solve(encoding.num_vars, clauses, abort=abort)
        if model is None:
            return None
        ordering = encoding.decode_ordering(model)
        bad: list[frozenset] = []
        for bag in set(_fill_bags(hypergraph, ordering)):
            cover = oracle.fractional_cover(bag)
            if cover is None or cover.weight > k + EPS:
                bad.append(bag)
        if not bad:
            decomposition = decomposition_from_ordering(
                hypergraph, ordering, oracle.fractional_cover
            )
            validate(hypergraph, decomposition, kind="fhd", width=k + EPS)
            return decomposition
        for bag in bad:
            clauses.extend(encoding.block_bag(bag))
    return None  # pragma: no cover - count() never ends
