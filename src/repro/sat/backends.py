"""Pluggable SAT backends, mirroring :mod:`repro.engine.backends`.

The decision procedure behind the SAT width checks is swappable: the
dependency-free CDCL core in :mod:`repro.sat.solver` is always
available, and `python-sat`_ (if importable) provides a much faster
Glucose-based path that is auto-detected exactly like the scipy-HiGHS
LP backend is for the cover oracle.

.. _python-sat: https://pysathq.github.io/

Backends answer one question: given a CNF, return the set of true
variables of some model, or ``None`` for UNSAT.  Cooperative abort is
supported by the pure-python backend (the pysat bindings cannot be
interrupted mid-solve; an abort event is checked between solves only).
"""

from __future__ import annotations

import importlib.util
from typing import Iterable, Optional, Sequence

from .solver import CDCLSolver

__all__ = [
    "HAVE_PYSAT",
    "SATBackend",
    "PurePythonCDCLBackend",
    "PySATBackend",
    "available_sat_backends",
    "default_sat_backend_name",
    "get_sat_backend",
    "register_sat_backend",
]

#: True when the optional `python-sat` package is importable.
HAVE_PYSAT = importlib.util.find_spec("pysat") is not None


class SATBackend:
    """Interface for SAT decision procedures.

    Subclasses implement :meth:`solve`; :attr:`name` identifies the
    backend in the registry.
    """

    #: Registry key for this backend.
    name = "abstract"

    def solve(
        self,
        num_vars: int,
        clauses: Sequence[Iterable[int]],
        abort=None,
    ) -> Optional[set]:
        """Return the set of true variables of a model, or None if UNSAT."""
        raise NotImplementedError


class PurePythonCDCLBackend(SATBackend):
    """The dependency-free CDCL core (always available)."""

    name = "purepython"

    def solve(self, num_vars, clauses, abort=None):
        """Solve with :class:`repro.sat.solver.CDCLSolver`."""
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            if not solver.add_clause(clause):
                return None
        return solver.solve(abort=abort)


class PySATBackend(SATBackend):
    """Glucose 3 via the optional `python-sat` package."""

    name = "pysat"

    def solve(self, num_vars, clauses, abort=None):
        """Solve with pysat's Glucose3 (abort checked before solving only)."""
        from pysat.solvers import Glucose3

        if abort is not None and abort.is_set():
            from .solver import SolveAborted

            raise SolveAborted("sat solve aborted")
        with Glucose3(bootstrap_with=[list(c) for c in clauses]) as solver:
            if not solver.solve():
                return None
            return {lit for lit in solver.get_model() if lit > 0}


_REGISTRY: dict[str, SATBackend] = {}


def register_sat_backend(backend: SATBackend) -> None:
    """Add ``backend`` to the registry under ``backend.name``."""
    _REGISTRY[backend.name] = backend


register_sat_backend(PurePythonCDCLBackend())
if HAVE_PYSAT:  # pragma: no cover - exercised only when pysat is installed
    register_sat_backend(PySATBackend())


def available_sat_backends() -> tuple[str, ...]:
    """Names of the registered SAT backends, fastest-preferred first."""
    names = list(_REGISTRY)
    names.sort(key=lambda n: (n != "pysat", n))
    return tuple(names)


def default_sat_backend_name() -> str:
    """The backend used when none is named: pysat if present, else CDCL."""
    return "pysat" if "pysat" in _REGISTRY else "purepython"


def get_sat_backend(name: Optional[str] = None) -> SATBackend:
    """Look up a backend by name (default: :func:`default_sat_backend_name`)."""
    key = name or default_sat_backend_name()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown SAT backend {key!r}; available: "
            f"{', '.join(available_sat_backends())}"
        ) from None
