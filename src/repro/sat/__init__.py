"""SAT-encoded exact width checks: the second engine.

This package gives the repository an independent exact decision
procedure for the paper's Check(HD/GHD/FHD, k) problems, encoded over
elimination orderings (:mod:`repro.sat.encoding`) and decided either by
the bundled dependency-free CDCL core (:mod:`repro.sat.solver`) or by
`python-sat` when installed (:mod:`repro.sat.backends`).  The
:mod:`repro.sat.checks` entry points return validated decompositions
and plug into the per-block solver registry in
:mod:`repro.pipeline.solve`, where ``solver="sat"`` selects them and
``solver="portfolio"`` races them against branch-and-bound.

Having two engines of independent design is the repo's strongest
correctness instrument: ``tests/test_differential.py`` continuously
checks them against each other over generated corpora.
"""

from .backends import (
    HAVE_PYSAT,
    PurePythonCDCLBackend,
    PySATBackend,
    SATBackend,
    available_sat_backends,
    default_sat_backend_name,
    get_sat_backend,
    register_sat_backend,
)
from .checks import (
    sat_fractional_hypertree_decomposition,
    sat_generalized_hypertree_decomposition,
    sat_hypertree_decomposition,
)
from .encoding import EliminationEncoding
from .solver import CDCLSolver, SolveAborted, solve_cnf

__all__ = [
    "CDCLSolver",
    "EliminationEncoding",
    "HAVE_PYSAT",
    "PurePythonCDCLBackend",
    "PySATBackend",
    "SATBackend",
    "SolveAborted",
    "available_sat_backends",
    "default_sat_backend_name",
    "get_sat_backend",
    "register_sat_backend",
    "sat_fractional_hypertree_decomposition",
    "sat_generalized_hypertree_decomposition",
    "sat_hypertree_decomposition",
    "solve_cnf",
]
