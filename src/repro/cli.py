"""Command-line interface: widths, decompositions, statistics, hardness.

Usage (also ``python -m repro``)::

    repro stats queries.hg                  # structural profile
    repro width queries.hg --kind ghw       # compute a width + witness
    repro decompose queries.hg -k 2 --json  # decomposition as JSON
    repro bounds big.hg                     # heuristic sandwich for fhw
    repro query "q(x) :- r(x, y)." --data db.json   # answer a CQ
    repro query --manifest workload.json --store cache/  # CQ workload
    repro batch manifest.json --jobs 4      # batched multi-instance solve
    repro serve --store cache/ --port 8765  # always-on solving daemon
    repro worker --connect 127.0.0.1:9876   # join a remote worker fleet
    repro warm cache/ manifest.json         # pre-populate a result store
    repro store stats cache/                # inspect a result store
    repro reduce formula.cnf                # Theorem 3.2 reduction report
    repro generate cycle 8                  # emit a family instance

Width-computing commands accept engine options: ``--backend`` selects
the LP solver (``scipy`` / ``purepython`` / ``auto``), ``--cache-size``
bounds the cover-oracle LRU (0 disables caching), and ``--cache-stats``
prints LP-solve counts and cache hit rates after the command.  They
also accept pipeline options: ``--preprocess`` selects the reduce/split
stages (default ``full``; ``none`` solves the raw instance), ``--jobs``
parallelizes across biconnected blocks and candidate widths,
``--solver`` picks the per-block engine mode (``bb`` branch-and-bound,
``sat`` for the CNF engine, ``portfolio`` to race both per task),
``--bounds`` controls the heuristic bounds pre-pass that seeds the
k-search (``portfolio`` orderings + clique lower bound by default;
``clique`` / ``none``), and ``--pipeline-stats`` prints per-stage
counters and wall-clock.

Hypergraphs are read in the HyperBench text format
(``e1(a,b,c), e2(b,d).``); formulas in DIMACS CNF.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import engine
from .algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width,
    generalized_hypertree_width_exact,
    hypertree_width,
)
from .algorithms.heuristics import width_bounds
from .algorithms.report import width_report
from .hardness import CNF, build_reduction
from .hypergraph import (
    Hypergraph,
    degree,
    intersection_width,
    is_connected,
    multi_intersection_width,
    parse_hyperbench,
    rank,
    to_hyperbench,
    vc_dimension,
)
from .hypergraph.acyclicity import is_alpha_acyclic
from .pipeline import (
    BATCH_KINDS,
    BOUNDS_MODES,
    EXECUTORS,
    PREPROCESS_MODES,
    SOLVER_MODES,
)
from .hypergraph.generators import (
    clique,
    cycle,
    grid,
    triangle_cascade,
    unbounded_support_family,
)

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "clique": lambda n: clique(n),
    "cycle": lambda n: cycle(n),
    "grid": lambda n: grid(n, n),
    "triangles": lambda n: triangle_cascade(n),
    "ex5.1": lambda n: unbounded_support_family(n),
}


def _load(path: str) -> Hypergraph:
    return parse_hyperbench(Path(path).read_text(), name=Path(path).stem)


def _cmd_stats(args: argparse.Namespace) -> int:
    h = _load(args.file)
    info = {
        "name": h.name,
        "vertices": h.num_vertices,
        "edges": h.num_edges,
        "rank": rank(h),
        "degree": degree(h),
        "iwidth": intersection_width(h),
        "3-miwidth": multi_intersection_width(h, 3),
        "connected": is_connected(h),
        "alpha_acyclic": is_alpha_acyclic(h),
    }
    if h.num_vertices <= args.vc_limit:
        info["vc_dimension"] = vc_dimension(h)
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        for key, value in info.items():
            print(f"{key:>14}: {value}")
    return 0


def _pipeline_options_of(args: argparse.Namespace) -> dict:
    return {
        "preprocess": getattr(args, "preprocess", None) or "full",
        "jobs": getattr(args, "jobs", None),
        "bounds": getattr(args, "bounds", None),
    }


def _compute_width(h: Hypergraph, kind: str, options: dict, solver=None):
    if kind == "hw":
        return hypertree_width(h, solver=solver, **options)
    if kind == "ghw":
        if solver in (None, "bb") and h.num_vertices <= 14:
            return generalized_hypertree_width_exact(h, **options)
        return generalized_hypertree_width(h, solver=solver, **options)
    if kind == "fhw":
        # One-shot exact LP oracle per block: the check-style engine
        # modes (bb / sat / portfolio) race Check(X, k) tasks and do
        # not apply here, so --solver is ignored for fhw.
        return fractional_hypertree_width_exact(h, **options)
    raise ValueError(f"unknown width kind {kind!r}")


def _cmd_width(args: argparse.Namespace) -> int:
    h = _load(args.file)
    width, decomposition = _compute_width(
        h,
        args.kind,
        _pipeline_options_of(args),
        solver=getattr(args, "solver", None),
    )
    print(f"{args.kind}({h.name or args.file}) = {width}")
    if args.show:
        for nid in decomposition.preorder():
            bag = ",".join(sorted(map(str, decomposition.bag(nid))))
            cover = {
                e: round(w, 4)
                for e, w in decomposition.cover(nid).weights.items()
            }
            print(f"  {nid}: {{{bag}}} {cover}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from .algorithms import generalized_hypertree_decomposition

    h = _load(args.file)
    decomposition = generalized_hypertree_decomposition(
        h,
        args.k,
        solver=getattr(args, "solver", None),
        **_pipeline_options_of(args),
    )
    if decomposition is None:
        print(f"no GHD of width <= {args.k}", file=sys.stderr)
        return 1
    payload = decomposition.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"GHD of width {decomposition.width()} with {len(decomposition)} nodes")
        for nid in decomposition.preorder():
            bag = ",".join(sorted(map(str, decomposition.bag(nid))))
            print(f"  {nid}: {{{bag}}}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    h = _load(args.file)
    report = width_report(h)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    print(f"{'name':>10}: {report.name}")
    print(f"{'structure':>10}: |V|={report.vertices} |E|={report.edges} "
          f"rank={report.rank} degree={report.degree}")
    print(f"{'profile':>10}: iwidth={report.iwidth} 3-miwidth={report.miwidth3} "
          f"vc={report.vc} acyclic={report.acyclic}")
    mode = "exact" if report.exact else "bracketed"
    print(f"{'widths':>10}: ({mode}) hw={report.hw} "
          f"ghw∈[{report.ghw_lower:g},{report.ghw_upper:g}] "
          f"fhw∈[{report.fhw_lower:.4g},{report.fhw_upper:.4g}]")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    h = _load(args.file)
    options = _pipeline_options_of(args)
    # The bounds command *is* the heuristic pre-pass: --bounds would be
    # circular here, so the flag is ignored for this command.
    options.pop("bounds", None)
    lower, upper, _witness = width_bounds(h, cost=args.cost, **options)
    label = "fhw" if args.cost == "fractional" else "ghw"
    print(f"{lower:.4f} <= {label}({h.name or args.file}) <= {upper:.4f}")
    return 0


def _load_database(path) -> dict:
    """Parse a relations JSON file into a name → ``Relation`` mapping.

    The file is ``{"relations": {name: {"attributes": [...], "rows":
    [[...], ...]}}}`` — the same per-relation encoding the ``POST
    /query`` wire uses.  Raises ``ValueError`` on anything malformed,
    with the file path in the message.
    """
    from .cqcsp import relation_from_payload

    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read data file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"data file {path} is not valid JSON: {exc}"
        ) from exc
    relations = raw.get("relations") if isinstance(raw, dict) else None
    if not isinstance(relations, dict) or not relations:
        raise ValueError(
            f'data file {path} must be a JSON object with a non-empty '
            '"relations" object'
        )
    database = {}
    for name, payload in relations.items():
        try:
            database[name] = relation_from_payload(name, payload)
        except ValueError as exc:
            raise ValueError(f"data file {path}: {exc}") from exc
    return database


_QUERY_MANIFEST_FIELDS = ("data", "file", "label", "query", "solver")


def _load_query_manifest(path: str) -> list:
    """Parse a query-workload manifest into ``(query, database, label,
    solver)`` tuples.

    The manifest is JSON: either a list of entries or an object with a
    ``"queries"`` list.  Each entry is ``{"query": "q(x) :- r(x, y).",
    "data": "db.json", "label": "...", "solver": "sat"}`` — ``data``
    required, plus exactly one of ``query`` (inline CQ text) or
    ``file`` (a file containing it).  Relative paths resolve against
    the manifest's own directory.  Unknown keys are a loud
    configuration error (exit 2), never a silently dropped field.
    """
    from .cqcsp import parse_cq

    manifest_path = Path(path)
    try:
        raw = json.loads(manifest_path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read manifest: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest is not valid JSON: {exc}") from exc
    entries = raw.get("queries") if isinstance(raw, dict) else raw
    if not isinstance(entries, list):
        raise ValueError(
            "manifest must be a JSON list of entries or an object "
            'with a "queries" list'
        )
    jobs = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(
                f"manifest entry {i} must be an object; got {entry!r}"
            )
        for key in entry:
            if key not in _QUERY_MANIFEST_FIELDS:
                raise ValueError(
                    f"manifest entry {i} has unknown key {key!r}; "
                    f"valid fields: {', '.join(_QUERY_MANIFEST_FIELDS)}"
                )
        has_query = isinstance(entry.get("query"), str)
        has_file = isinstance(entry.get("file"), str)
        if has_query == has_file:
            raise ValueError(
                f'manifest entry {i} needs exactly one of "query" '
                '(inline CQ text) or "file" (a file containing it)'
            )
        if has_query:
            text = entry["query"]
        else:
            file_path = Path(entry["file"])
            if not file_path.is_absolute():
                file_path = manifest_path.parent / file_path
            try:
                text = file_path.read_text()
            except OSError as exc:
                raise ValueError(
                    f"manifest entry {i}: cannot read {file_path}: {exc}"
                ) from exc
        try:
            query = parse_cq(text)
        except ValueError as exc:
            raise ValueError(
                f"manifest entry {i}: cannot parse query: {exc}"
            ) from exc
        if not isinstance(entry.get("data"), str):
            raise ValueError(
                f'manifest entry {i} needs a "data" string '
                "(relations JSON file)"
            )
        data_path = Path(entry["data"])
        if not data_path.is_absolute():
            data_path = manifest_path.parent / data_path
        try:
            database = _load_database(data_path)
        except ValueError as exc:
            raise ValueError(f"manifest entry {i}: {exc}") from exc
        solver = entry.get("solver")
        if solver is not None and solver not in SOLVER_MODES:
            raise ValueError(
                f"manifest entry {i} has unknown solver {solver!r}; "
                f"choose from {', '.join(SOLVER_MODES)}"
            )
        label = entry.get("label")
        if label is not None and not isinstance(label, str):
            raise ValueError(f"manifest entry {i}: label must be a string")
        jobs.append((query, database, label or query.name, solver))
    return jobs


def _query_result_dict(label, result, info) -> dict:
    """JSON-ready summary of one answered query."""
    from .cqcsp import relation_to_payload

    return {
        "label": label,
        "ok": True,
        "width": result.plan.width,
        "satisfied": result.satisfied,
        "cost": result.cost,
        "answers": relation_to_payload(result.answers),
        "plan_cached": info.cache_hit,
        "plan_from_store": info.from_store,
    }


def _cmd_query(args: argparse.Namespace) -> int:
    """Answer CQs via decomposition plans (single query or manifest)."""
    from .cqcsp import QueryPlanner, parse_cq

    if args.manifest is not None:
        if args.query is not None or args.data is not None:
            print(
                "repro query: give either QUERY --data FILE or "
                "--manifest FILE, not both",
                file=sys.stderr,
            )
            return 2
        try:
            jobs = _load_query_manifest(args.manifest)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        if args.query is None or args.data is None:
            print(
                "repro query: QUERY and --data FILE are required "
                "(or use --manifest FILE)",
                file=sys.stderr,
            )
            return 2
        text = args.query
        spec = Path(text)
        try:
            if spec.is_file():
                text = spec.read_text()
            query = parse_cq(text)
            database = _load_database(args.data)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        jobs = [(query, database, query.name, None)]

    default_solver = getattr(args, "solver", None) or "bb"
    options = {
        "bounds": getattr(args, "bounds", None) or "portfolio",
        "preprocess": getattr(args, "preprocess", None) or "full",
        "jobs": getattr(args, "jobs", None),
    }
    store = None
    if args.store is not None:
        from .store import ResultStore

        store = ResultStore(args.store)
    # One planner per engine mode (the plan key includes the solver),
    # all sharing one store so plans persist regardless of mode.
    planners: dict[str, QueryPlanner] = {}
    outcomes = []
    try:
        for query, database, label, solver in jobs:
            mode = solver or default_solver
            planner = planners.get(mode)
            if planner is None:
                planner = planners[mode] = QueryPlanner(
                    store, solver=mode, **options
                )
            try:
                plan, info = planner.plan_detailed(query)
                result = planner.execute(plan, database)
            except Exception as exc:  # per-query failure, exit 1
                outcomes.append(
                    {"label": label, "ok": False, "error": str(exc)}
                )
            else:
                outcomes.append(_query_result_dict(label, result, info))
    finally:
        for planner in planners.values():
            planner.close()
        if store is not None:
            store.close()
    failed = [o for o in outcomes if not o["ok"]]
    if args.json:
        print(json.dumps({"results": outcomes}, indent=2))
        return 1 if failed else 0
    for outcome in outcomes:
        if not outcome["ok"]:
            print(f"query({outcome['label']}) ERROR: {outcome['error']}")
            continue
        answers = outcome["answers"]
        plan_note = (
            "plan from store"
            if outcome["plan_from_store"]
            else "plan cached"
            if outcome["plan_cached"]
            else "plan computed"
        )
        if not answers["attributes"]:
            verdict = "true" if outcome["satisfied"] else "false"
            print(
                f"query({outcome['label']}) = {verdict} "
                f"(boolean, width {outcome['width']}, {plan_note})"
            )
            continue
        print(
            f"query({outcome['label']}): {len(answers['rows'])} answers "
            f"(width {outcome['width']}, {plan_note})"
        )
        header = ", ".join(answers["attributes"])
        print(f"  {header}")
        for row in answers["rows"]:
            print("  " + ", ".join(str(v) for v in row))
    return 1 if failed else 0


def _load_manifest(path: str) -> list:
    """Parse a batch manifest into a list of ``BatchRequest`` objects.

    The manifest is JSON: either a list of entries or an object with a
    ``"requests"`` list.  Each entry is ``{"file": "q.hg", "kind":
    "ghw", "params": {...}, "label": "...", "solver": "portfolio"}``
    (``file`` required; a bare string is shorthand for ``{"file":
    ...}``; ``solver`` optionally overrides the batch-wide ``--solver``
    mode for that entry).  Relative paths resolve against the
    manifest's own directory.

    An ``executor`` key is validated against
    :data:`~repro.pipeline.solve.EXECUTORS` but otherwise ignored —
    the worker pool is batch-wide (``--executor``), so per-entry
    overrides cannot exist; rejecting unknown names keeps a typo a
    loud configuration error instead of a silently dropped key.

    Raises ``ValueError`` on a structurally invalid manifest, an
    unknown ``solver`` or ``executor`` name, or an
    unreadable/unparseable instance
    file — configuration errors abort the command; per-request *solve*
    errors (unknown kind, bad params) are reported per request instead.
    """
    from .pipeline import BatchRequest

    manifest_path = Path(path)
    try:
        raw = json.loads(manifest_path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read manifest: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest is not valid JSON: {exc}") from exc
    entries = raw.get("requests") if isinstance(raw, dict) else raw
    if not isinstance(entries, list):
        raise ValueError(
            "manifest must be a JSON list of entries or an object "
            'with a "requests" list'
        )
    requests = []
    for i, entry in enumerate(entries):
        if isinstance(entry, str):
            entry = {"file": entry}
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("file"), str)
        ):
            raise ValueError(
                f'manifest entry {i} needs a "file" string; got {entry!r}'
            )
        file_path = Path(entry["file"])
        if not file_path.is_absolute():
            file_path = manifest_path.parent / file_path
        try:
            hypergraph = parse_hyperbench(
                file_path.read_text(), name=file_path.stem
            )
        except OSError as exc:
            raise ValueError(
                f"manifest entry {i}: cannot read {file_path}: {exc}"
            ) from exc
        except ValueError as exc:
            raise ValueError(
                f"manifest entry {i}: cannot parse {file_path}: {exc}"
            ) from exc
        solver = entry.get("solver")
        if solver is not None and solver not in SOLVER_MODES:
            raise ValueError(
                f"manifest entry {i} has unknown solver {solver!r}; "
                f"choose from {', '.join(SOLVER_MODES)}"
            )
        executor = entry.get("executor")
        if executor is not None and executor not in EXECUTORS:
            raise ValueError(
                f"manifest entry {i} has unknown executor {executor!r}; "
                f"choose from {', '.join(EXECUTORS)}"
            )
        try:
            requests.append(
                BatchRequest(
                    hypergraph,
                    kind=entry.get("kind", "ghw"),
                    params=dict(entry.get("params") or {}),
                    label=entry.get("label") or file_path.stem,
                    solver=solver,
                )
            )
        except (TypeError, ValueError) as exc:
            # e.g. params that are not a mapping — a configuration
            # problem of the manifest, not of the solver.
            raise ValueError(
                f"manifest entry {i} is invalid: {exc}"
            ) from exc
    return requests


def _format_batch_result(result) -> str:
    """One human-readable line per batch request outcome."""
    request = result.request
    name = request.name
    if not result.ok:
        return f"{request.kind}({name}) ERROR: {result.error}"
    value = result.value
    if request.kind == "bounds":
        lower, upper, _witness = value
        label = "fhw" if request.params.get("cost", "fractional") == "fractional" else "ghw"
        return f"{lower:.4f} <= {label}({name}) <= {upper:.4f}"
    if request.kind.startswith("check-"):
        k = request.params.get("k")
        verdict = "yes" if value is not None else "no"
        return f"{request.kind}({name}, k={k}) = {verdict}"
    width, _witness = value
    return f"{request.kind}({name}) = {width}"


def _batch_result_dict(result) -> dict:
    """JSON-ready summary of one batch request outcome."""
    request = result.request
    info: dict = {"label": request.name, "kind": request.kind, "ok": result.ok}
    if not result.ok:
        info["error"] = str(result.error)
        return info
    value = result.value
    if request.kind == "bounds":
        info["lower"], info["upper"] = value[0], value[1]
    elif request.kind.startswith("check-"):
        info["k"] = request.params.get("k")
        info["accepted"] = value is not None
    else:
        info["width"] = value[0]
    return info


def _cmd_batch(args: argparse.Namespace) -> int:
    from .pipeline import last_batch_stats, solve_many

    try:
        requests = _load_manifest(args.manifest)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.executor == "remote":
        from .dist import get_registry

        registry = get_registry(listen=getattr(args, "listen", None))
        print(
            f"repro batch: worker registry on {registry.address} "
            f"({registry.worker_count()} workers connected)",
            file=sys.stderr,
        )
        wanted = getattr(args, "wait_workers", 0) or 0
        if wanted and not registry.wait_for_workers(wanted):
            print(
                f"repro batch: timed out waiting for {wanted} workers "
                f"({registry.worker_count()} connected)",
                file=sys.stderr,
            )
            return 2
    results = solve_many(
        requests,
        jobs=args.jobs,
        preprocess=args.preprocess or "full",
        executor=args.executor,
        solver=getattr(args, "solver", None) or "bb",
        bounds=getattr(args, "bounds", None) or "portfolio",
        store=getattr(args, "store", None),
    )
    stats = last_batch_stats()
    failed = [r for r in results if not r.ok]
    if args.json:
        payload = {
            "results": [_batch_result_dict(r) for r in results],
            "stats": stats.as_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        for result in results:
            print(_format_batch_result(result))
        print(
            f"batch: {stats.requests} requests, "
            f"{stats.requests - len(failed)} ok, {len(failed)} failed, "
            f"{stats.total_seconds:.3f}s "
            f"({stats.requests_per_second:.1f} req/s)"
        )
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on decomposition daemon until interrupted."""
    import asyncio

    from .serve import DecompositionServer

    server = DecompositionServer(
        host=args.host,
        port=args.port,
        store=args.store,
        fsync=args.fsync,
        jobs=args.jobs,
        executor=getattr(args, "executor", None) or "thread",
        listen=getattr(args, "listen", None),
        solver=getattr(args, "solver", None) or "bb",
        bounds=getattr(args, "bounds", None) or "portfolio",
        preprocess=getattr(args, "preprocess", None) or "full",
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
    )

    async def _run() -> None:
        await server.start()
        where = (
            f"store: {server.store.path}"
            if server.store is not None
            else "no store"
        )
        if server.registry is not None:
            where += f"; workers: {server.registry.address}"
        print(
            f"repro serve: http://{server.host}:{server.port} ({where})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            # Drain before the loop dies so admitted solves still land
            # in the store — Ctrl-C loses queued work, never answers.
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: drained and stopped", file=sys.stderr)
    finally:
        if server.registry is not None:
            from .dist import close_registry

            close_registry()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one remote block-solve worker until shutdown or idle."""
    from .dist import WorkerClient, parse_endpoint

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    worker = WorkerClient(
        host,
        port,
        jobs=args.jobs,
        idle_timeout=args.idle_timeout,
    )
    print(
        f"repro worker: connecting to {host}:{port} "
        f"({worker.jobs} jobs, idle timeout "
        f"{worker.idle_timeout or 'off'})",
        file=sys.stderr,
    )
    return worker.run()


def _cmd_warm(args: argparse.Namespace) -> int:
    """Pre-populate a result store from a manifest (offline warm-up)."""
    from .pipeline import last_batch_stats, solve_many
    from .store import ResultStore

    try:
        requests = _load_manifest(args.manifest)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with ResultStore(args.store_dir, fsync=args.fsync) as store:
        results = solve_many(
            requests,
            jobs=args.jobs,
            preprocess=args.preprocess or "full",
            solver=getattr(args, "solver", None) or "bb",
            bounds=getattr(args, "bounds", None) or "portfolio",
            store=store,
        )
        stats = last_batch_stats()
        failed = [r for r in results if not r.ok]
        summary = {
            "requests": stats.requests,
            "failures": len(failed),
            "already_stored": stats.store_instance_hits,
            "records_appended": stats.store_records_appended,
            "store_entries": len(store),
            "seconds": round(stats.total_seconds, 3),
        }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for result in results:
            print(_format_batch_result(result))
        print(
            f"warm: {summary['requests']} requests "
            f"({summary['already_stored']} already stored), "
            f"{summary['records_appended']} records appended, "
            f"{summary['store_entries']} entries total, "
            f"{summary['seconds']}s"
        )
    return 1 if failed else 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inspect a result store (currently: ``repro store stats DIR``)."""
    from .store import STORE_FILENAME, ResultStore

    path = Path(args.store_dir)
    if not (path / STORE_FILENAME).exists():
        print(
            f"no result store at {path} (missing {STORE_FILENAME})",
            file=sys.stderr,
        )
        return 1
    with ResultStore(path) as store:
        info = store.stats.as_dict()
        info["path"] = str(path)
        info["records_by_type"] = store.type_counts()
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        for key in (
            "path",
            "entries",
            "records_loaded",
            "records_skipped",
            "bytes_valid",
            "bytes_skipped",
        ):
            print(f"{key:>16}: {info[key]}")
        for tag, count in info["records_by_type"].items():
            print(f"{tag:>16}: {count}")
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    formula = CNF.from_dimacs(Path(args.file).read_text())
    reduction = build_reduction(formula)
    h = reduction.hypergraph
    sat = formula.is_satisfiable()
    print(f"formula: {formula.num_variables} vars, {formula.num_clauses} clauses")
    print(f"reduction hypergraph: |V|={h.num_vertices} |E|={h.num_edges}")
    print(f"satisfiable: {sat}")
    ghd = reduction.verify_forward()
    print(
        "width-2 GHD:",
        f"validated, {len(ghd)} nodes" if ghd is not None else "none (unsat)",
    )
    if args.certify:
        print("Lemma 3.5 certificate:", reduction.certify_lemma_3_5())
        print("Lemma 3.6 certificate:", reduction.certify_lemma_3_6())
        print("LP equivalence:", reduction.certify_equivalence())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    maker = _FAMILIES.get(args.family)
    if maker is None:
        print(f"unknown family {args.family!r}; choose from "
              f"{sorted(_FAMILIES)}", file=sys.stderr)
        return 1
    sys.stdout.write(to_hyperbench(maker(args.n)))
    return 0


def _engine_options() -> argparse.ArgumentParser:
    """Shared ``--backend`` / ``--cache-size`` / ``--cache-stats`` options."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("engine options")
    group.add_argument(
        "--backend",
        choices=["auto", *engine.available_backends()],
        default=None,
        help="LP solver backend for cover computations (default: auto)",
    )
    group.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="cover-oracle LRU capacity (0 disables caching)",
    )
    group.add_argument(
        "--cache-stats",
        action="store_true",
        help="print LP-solve counts and cache hit rates after the command",
    )
    pipeline_group = parent.add_argument_group("pipeline options")
    pipeline_group.add_argument(
        "--preprocess",
        # Single source of truth for the valid modes; the README and the
        # docs quote this flag and tests/test_docs.py pins the agreement.
        choices=list(PREPROCESS_MODES),
        default=None,
        help="reduce/split stages before solving (default: full)",
    )
    pipeline_group.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel workers across blocks and candidate widths",
    )
    pipeline_group.add_argument(
        "--solver",
        # Single source of truth for the engine modes; docs/api.md and
        # docs/architecture.md quote this flag and tests/test_docs.py
        # pins the agreement.
        choices=list(SOLVER_MODES),
        default=None,
        help=(
            "per-block engine for check tasks: bb (branch and bound), "
            "sat (CNF engine), or portfolio racing both (default: bb; "
            "ignored by fhw and bounds)"
        ),
    )
    pipeline_group.add_argument(
        "--bounds",
        # Single source of truth for the bounds modes; docs/api.md and
        # docs/architecture.md quote this flag and tests/test_docs.py
        # pins the agreement.
        choices=list(BOUNDS_MODES),
        default=None,
        help=(
            "heuristic bounds pre-pass before the exact k-search: "
            "portfolio (ordering portfolio + clique lower bound, the "
            "default), clique (lower bound only), or none"
        ),
    )
    pipeline_group.add_argument(
        "--pipeline-stats",
        action="store_true",
        help="print per-stage pipeline counters and wall-clock times",
    )
    return parent


def _apply_engine_options(args: argparse.Namespace) -> None:
    if getattr(args, "backend", None) is not None or getattr(
        args, "cache_size", None
    ) is not None:
        engine.configure(
            backend=getattr(args, "backend", None),
            cache_size=getattr(args, "cache_size", None),
        )


def _print_batch_stats() -> None:
    from .pipeline import last_batch_stats

    stats = last_batch_stats()
    if stats is None:
        print("batch stats: no batch run recorded")
        return
    print("batch stats:")
    summary = stats.as_dict()
    summary["kinds"] = (
        ",".join(f"{k}={v}" for k, v in sorted(stats.kinds.items())) or "-"
    )
    for key in (
        "requests",
        "kinds",
        "failures",
        "jobs",
        "executor",
        "preprocess",
        "blocks",
        "bounds",
        "bounds_ks_pruned",
        "bounds_checks_avoided",
        "bounds_blocks_decided",
        "anytime_answers",
        "store_instance_hits",
        "store_blocks_seeded",
        "store_records_appended",
        "tasks_run",
        "speculative_checks",
        "tasks_cancelled",
        "lp_solves",
        "cache_hits",
        "cache_misses",
        "hit_rate",
    ):
        print(f"  {key:>18}: {summary[key]}")
    for stage in ("prepare", "bounds", "solve", "stitch", "total"):
        print(f"  {stage + '_seconds':>18}: {summary[stage + '_seconds']:.4f}")


def _print_pipeline_stats(args: argparse.Namespace) -> None:
    if not getattr(args, "pipeline_stats", False):
        return
    if getattr(args, "func", None) is _cmd_batch:
        _print_batch_stats()
        return
    from .pipeline import last_pipeline_stats

    stats = last_pipeline_stats()
    if stats is None:
        print("pipeline stats: no pipeline run recorded")
        return
    print("pipeline stats:")
    summary = stats.as_dict()
    summary["rule_counts"] = (
        ",".join(f"{k}={v}" for k, v in sorted(stats.rule_counts.items()))
        or "-"
    )
    summary["block_sizes"] = " ".join(
        f"{v}v/{e}e" for v, e in stats.block_sizes
    )
    for key in (
        "kind",
        "preprocess",
        "jobs",
        "vertices_removed",
        "edges_removed",
        "rule_counts",
        "blocks",
        "block_sizes",
        "bounds",
        "bounds_ks_pruned",
        "bounds_checks_avoided",
        "bounds_blocks_decided",
        "anytime_width",
        "tasks_run",
        "speculative_checks",
        "tasks_cancelled",
    ):
        print(f"  {key:>18}: {summary[key]}")
    for stage in ("reduce", "split", "bounds", "solve", "stitch"):
        print(f"  {stage + '_seconds':>18}: {summary[stage + '_seconds']:.4f}")


def _print_engine_stats(args: argparse.Namespace, baseline: dict) -> None:
    """Print this invocation's engine counters as a delta from baseline.

    The global counters are never reset, so in-process callers (tests,
    notebooks) keep whatever they were accumulating around main().
    """
    if not getattr(args, "cache_stats", False):
        return
    current = engine.stats()
    delta = {
        key: current[key] - baseline.get(key, 0)
        for key in ("lp_solves", "set_cover_solves", "cache_hits", "cache_misses")
    }
    lookups = delta["cache_hits"] + delta["cache_misses"]
    delta["hit_rate"] = (
        round(delta["cache_hits"] / lookups, 4) if lookups else 0.0
    )
    print("engine cache stats:")
    for key, value in delta.items():
        print(f"  {key:>16}: {value}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hypertree decompositions: hard and easy cases (PODS'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_options = _engine_options()

    p_stats = sub.add_parser("stats", help="structural profile of a hypergraph")
    p_stats.add_argument("file")
    p_stats.add_argument("--json", action="store_true")
    p_stats.add_argument("--vc-limit", type=int, default=20)
    p_stats.set_defaults(func=_cmd_stats)

    p_width = sub.add_parser(
        "width", help="compute hw / ghw / fhw", parents=[engine_options]
    )
    p_width.add_argument("file")
    p_width.add_argument("--kind", choices=("hw", "ghw", "fhw"), default="ghw")
    p_width.add_argument("--show", action="store_true", help="print the witness")
    p_width.set_defaults(func=_cmd_width)

    p_dec = sub.add_parser(
        "decompose", help="Check(GHD,k) with witness", parents=[engine_options]
    )
    p_dec.add_argument("file")
    p_dec.add_argument("-k", type=int, required=True)
    p_dec.add_argument("--json", action="store_true")
    p_dec.set_defaults(func=_cmd_decompose)

    p_report = sub.add_parser(
        "report", help="full width/profile report", parents=[engine_options]
    )
    p_report.add_argument("file")
    p_report.add_argument("--json", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_bounds = sub.add_parser(
        "bounds", help="heuristic width sandwich", parents=[engine_options]
    )
    p_bounds.add_argument("file")
    p_bounds.add_argument(
        "--cost", choices=("fractional", "integral"), default="fractional"
    )
    p_bounds.set_defaults(func=_cmd_bounds)

    p_query = sub.add_parser(
        "query",
        help="answer conjunctive queries via decomposition plans",
        description=(
            "Plan-then-execute CQ answering: the query's hypergraph is "
            "decomposed (the plan), the witness join tree drives "
            "Yannakakis over the relations, and with --store the plan "
            "persists — repeated query shapes replay it with zero "
            "solver work.  Single mode takes CQ text (or a file "
            "containing it) plus --data; --manifest runs a JSON "
            "workload of {query|file, data, label, solver} entries."
        ),
        parents=[engine_options],
    )
    p_query.add_argument(
        "query",
        nargs="?",
        default=None,
        metavar="QUERY",
        help='CQ text like "q(x) :- r(x, y)." or a file containing it',
    )
    p_query.add_argument(
        "--data",
        metavar="FILE",
        default=None,
        help='relations JSON: {"relations": {name: {"attributes", "rows"}}}',
    )
    p_query.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="JSON workload of query entries (instead of QUERY --data)",
    )
    p_query.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "persistent result store directory: stored plans are "
            "replayed without solving, new plans are written back"
        ),
    )
    p_query.add_argument("--json", action="store_true")
    p_query.set_defaults(func=_cmd_query)

    p_batch = sub.add_parser(
        "batch",
        help="solve a JSON manifest of width queries as one batch",
        description=(
            "Batched multi-instance serving: reduce/split every instance "
            "up front, then interleave per-block tasks from different "
            "instances on one shared worker pool with warm engine caches. "
            f"Manifest entries take a 'kind' from {sorted(BATCH_KINDS)}."
        ),
        parents=[engine_options],
    )
    p_batch.add_argument("manifest", help="JSON manifest of width queries")
    p_batch.add_argument("--json", action="store_true")
    p_batch.add_argument(
        "--executor",
        # Single source of truth for the pool types; docs/api.md and
        # docs/architecture.md quote this flag and tests/test_docs.py
        # pins the agreement.
        choices=list(EXECUTORS),
        default="thread",
        help=(
            "worker pool type: thread (shares warm engine caches), "
            "process (GIL-free), or remote (dispatch to `repro worker` "
            "processes; see --listen)"
        ),
    )
    p_batch.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "with --executor remote: bind the worker registry here "
            "(default: $REPRO_WORKER_LISTEN, else an ephemeral "
            "loopback port, printed to stderr)"
        ),
    )
    p_batch.add_argument(
        "--wait-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --executor remote: wait for N workers to register "
            "before solving (default 0: start immediately, degrading "
            "to a local pool until workers dial in)"
        ),
    )
    p_batch.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "persistent result store directory: stored answers are "
            "served without solving, new verdicts are written back"
        ),
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="always-on solving daemon over HTTP with a persistent store",
        description=(
            "Serve width queries over HTTP (POST /solve, GET /stats, "
            "GET /healthz).  Identical concurrent requests coalesce "
            "into one scheduler run; admission control bounds in-flight "
            "work (HTTP 429 beyond it, 503 while draining); with "
            "--store, every settled verdict persists and a restarted "
            "daemon answers repeats without solving."
        ),
        parents=[engine_options],
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result store directory (omit for memory-only)",
    )
    p_serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every appended store record (safest, slowest)",
    )
    p_serve.add_argument(
        "--max-in-flight",
        type=int,
        default=4,
        metavar="N",
        help="concurrent solves (thread-pool width, default 4)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        metavar="N",
        help="waiting computations beyond which requests get 429",
    )
    p_serve.add_argument(
        "--executor",
        # Same single source of truth as `repro batch --executor`.
        choices=list(EXECUTORS),
        default="thread",
        help=(
            "pool type of every scheduler run; remote makes the "
            "daemon own a worker registry (see --listen)"
        ),
    )
    p_serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "with --executor remote: bind the worker registry here "
            "(default: $REPRO_WORKER_LISTEN, else an ephemeral "
            "loopback port)"
        ),
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="remote block-solve worker that dials back to a driver",
        description=(
            "Join a worker fleet: connect to the registry of a "
            "`repro batch --executor remote` or `repro serve "
            "--executor remote` driver, execute its per-block tasks "
            "on a local pool, and exit after --idle-timeout seconds "
            "without work."
        ),
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the driver registry's endpoint",
    )
    p_worker.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="concurrent tasks this worker executes (default 1)",
    )
    p_worker.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help=(
            "exit after S seconds without work (default 300; "
            "0 disables auto-shutdown)"
        ),
    )
    p_worker.add_argument(
        "--backend",
        choices=["auto", *engine.available_backends()],
        default=None,
        help="LP solver backend for cover computations (default: auto)",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_warm = sub.add_parser(
        "warm",
        help="pre-populate a result store from a batch manifest",
        description=(
            "Solve a manifest of width queries with a persistent store "
            "attached, so a later `repro serve --store` answers them "
            "instantly.  Already-stored answers are skipped; the run "
            "is idempotent."
        ),
        parents=[engine_options],
    )
    p_warm.add_argument("store_dir", help="result store directory")
    p_warm.add_argument("manifest", help="JSON manifest of width queries")
    p_warm.add_argument("--json", action="store_true")
    p_warm.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every appended store record",
    )
    p_warm.set_defaults(func=_cmd_warm)

    p_store = sub.add_parser(
        "store",
        help="inspect a persistent result store",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_stats = store_sub.add_parser(
        "stats", help="record counts and log health of a store"
    )
    p_store_stats.add_argument("store_dir", help="result store directory")
    p_store_stats.add_argument("--json", action="store_true")
    p_store_stats.set_defaults(func=_cmd_store)

    p_red = sub.add_parser("reduce", help="Theorem 3.2 reduction report")
    p_red.add_argument("file", help="DIMACS CNF file")
    p_red.add_argument("--certify", action="store_true")
    p_red.set_defaults(func=_cmd_reduce)

    p_gen = sub.add_parser("generate", help="emit a named family instance")
    p_gen.add_argument("family", help=f"one of {sorted(_FAMILIES)}")
    p_gen.add_argument("n", type=int)
    p_gen.set_defaults(func=_cmd_generate)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Engine flags are per-invocation: snapshot the process-global config
    # and restore it afterwards, so in-process callers (tests, notebooks)
    # are not left running on whatever backend the last command selected.
    config = engine.engine_config()
    previous = (config.backend, config.cache_size)
    baseline = engine.stats()
    _apply_engine_options(args)
    try:
        code = args.func(args)
        _print_engine_stats(args, baseline)
        _print_pipeline_stats(args)
    finally:
        config.backend, config.cache_size = previous
    return code


if __name__ == "__main__":
    raise SystemExit(main())
