"""Hypergraph generators: paper families plus benchmark-style suites.

Paper-specific families
-----------------------
* :func:`clique` — ``K_n`` (Lemma 2.3: ρ(K_2n) = ρ*(K_2n) = n; a class of
  unbounded ghw with 1-BIP).
* :func:`grid` — n×m grid graphs (also 1-BIP, unbounded ghw).
* :func:`unbounded_support_family` — the family H_n of Example 5.1 with
  iwidth 1 but optimal fractional covers of support n+1.
* :func:`bounded_vc_unbounded_miwidth_family` — the family of Lemma 6.24
  with vc(H_n) < 2 but c-miwidth(H_n) >= n - c: bounded VC dimension does
  NOT imply the BMIP.

Benchmark-style suites
----------------------
The HyperBench study [23] cited throughout Section 1/4 reports that most
real-world CQs are acyclic or have ghw 2, and almost all enjoy the BIP/BMIP
with tiny constants.  :func:`random_cq_hypergraph` and
:func:`hyperbench_like_suite` synthesize structurally similar workloads
(offline stand-ins for the proprietary corpus, per DESIGN.md).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .hypergraph import Hypergraph

__all__ = [
    "clique",
    "cycle",
    "grid",
    "path_hypergraph",
    "acyclic_hypergraph",
    "unbounded_support_family",
    "bounded_vc_unbounded_miwidth_family",
    "triangle_cascade",
    "random_cq_hypergraph",
    "random_csp_hypergraph",
    "hyperbench_like_suite",
]


def clique(n: int, prefix: str = "v") -> Hypergraph:
    """The clique ``K_n`` as a graph (all 2-element edges).

    Lemma 2.3: for even n = 2m, ``ρ(K_n) = ρ*(K_n) = m``.  Cliques are
    1-BIP yet have unbounded ghw, witnessing that the BIP is non-trivial.
    """
    if n < 2:
        raise ValueError("clique needs n >= 2")
    vs = [f"{prefix}{i}" for i in range(1, n + 1)]
    edges = {
        f"e_{i}_{j}": (vs[i - 1], vs[j - 1])
        for i in range(1, n + 1)
        for j in range(i + 1, n + 1)
    }
    return Hypergraph(edges, name=f"K{n}")


def cycle(n: int, prefix: str = "v") -> Hypergraph:
    """The cycle ``C_n`` (ghw 2 for n >= 4, acyclic-as-graph but cyclic CQ)."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    vs = [f"{prefix}{i}" for i in range(1, n + 1)]
    edges = {
        f"e{i}": (vs[i - 1], vs[i % n]) for i in range(1, n + 1)
    }
    return Hypergraph(edges, name=f"C{n}")


def grid(rows: int, cols: int) -> Hypergraph:
    """The rows×cols grid graph — 1-BIP, treewidth min(rows, cols)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    edges: dict[str, tuple] = {}
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges[f"h_{r}_{c}"] = (f"v_{r}_{c}", f"v_{r}_{c + 1}")
            if r + 1 < rows:
                edges[f"w_{r}_{c}"] = (f"v_{r}_{c}", f"v_{r + 1}_{c}")
    return Hypergraph(edges, name=f"grid{rows}x{cols}")


def path_hypergraph(n_edges: int, edge_size: int, overlap: int) -> Hypergraph:
    """A chain of ``n_edges`` hyperedges of size ``edge_size`` overlapping in
    ``overlap`` vertices — acyclic, iwidth = overlap.  Handy for BIP suites.
    """
    if not 0 <= overlap < edge_size:
        raise ValueError("need 0 <= overlap < edge_size")
    edges: dict[str, list[str]] = {}
    step = edge_size - overlap
    for i in range(n_edges):
        start = i * step
        edges[f"e{i + 1}"] = [f"v{start + j}" for j in range(edge_size)]
    return Hypergraph(edges, name=f"path({n_edges},{edge_size},{overlap})")


def acyclic_hypergraph(
    n_edges: int, edge_size: int, rng: random.Random | None = None
) -> Hypergraph:
    """A random connected α-acyclic hypergraph built edge-by-edge.

    Each new edge shares a random non-empty subset of an existing edge
    and adds fresh vertices, giving a join-tree-like (ghw = 1) instance.
    """
    rng = rng or random.Random(0)
    edges: dict[str, frozenset] = {}
    counter = 0

    def fresh(k: int) -> list[str]:
        nonlocal counter
        out = [f"v{counter + j}" for j in range(k)]
        counter += k
        return out

    edges["e1"] = frozenset(fresh(edge_size))
    for i in range(2, n_edges + 1):
        host = rng.choice(list(edges.values()))
        shared_count = rng.randint(1, min(edge_size - 1, len(host)))
        shared = rng.sample(sorted(host), shared_count)
        edges[f"e{i}"] = frozenset(shared + fresh(edge_size - shared_count))
    return Hypergraph(edges, name=f"acyclic({n_edges},{edge_size})")


def unbounded_support_family(n: int) -> Hypergraph:
    """Example 5.1: ``V = {v0..vn}``, star edges {v0,vi} plus {v1..vn}.

    ``iwidth = 1`` but the optimal fractional edge cover puts weight 1/n on
    every star edge and 1 − 1/n on the big edge: weight 2 − 1/n with
    support n + 1, showing supports of optimal covers are unbounded even
    under the BIP.
    """
    if n < 2:
        raise ValueError("family defined for n >= 2")
    edges: dict[str, list[str]] = {
        f"star{i}": ["v0", f"v{i}"] for i in range(1, n + 1)
    }
    edges["big"] = [f"v{i}" for i in range(1, n + 1)]
    return Hypergraph(edges, name=f"Ex5.1(n={n})")


def bounded_vc_unbounded_miwidth_family(n: int) -> Hypergraph:
    """Lemma 6.24 counterexample: ``E = {V \\ {v_i}}`` for each i.

    ``vc(H_n) < 2`` (no 2-set is shattered: the empty trace is missing)
    while any intersection of c <= n edges has >= n − c vertices, so no
    constant multi-intersection bound holds.
    """
    if n < 3:
        raise ValueError("family defined for n >= 3")
    vs = [f"v{i}" for i in range(1, n + 1)]
    edges = {
        f"e{i}": [v for v in vs if v != f"v{i}"] for i in range(1, n + 1)
    }
    return Hypergraph(edges, name=f"Lem6.24(n={n})")


def triangle_cascade(levels: int) -> Hypergraph:
    """A cascade of overlapping triangles with ghw 2 — a small cyclic CQ
    shape common in benchmark corpora (used by the E15 suite)."""
    if levels < 1:
        raise ValueError("levels >= 1")
    edges: dict[str, tuple] = {}
    for i in range(levels):
        a, b, c = f"t{i}", f"t{i + 1}", f"m{i}"
        edges[f"ab{i}"] = (a, b)
        edges[f"bc{i}"] = (b, c)
        edges[f"ca{i}"] = (c, a)
    return Hypergraph(edges, name=f"triangles({levels})")


def random_cq_hypergraph(
    n_atoms: int,
    max_arity: int = 4,
    cyclicity: float = 0.3,
    max_shared: int = 2,
    rng: random.Random | None = None,
) -> Hypergraph:
    """A random CQ-shaped hypergraph.

    Starts from an acyclic backbone (join-tree style) and then, with
    probability ``cyclicity`` per atom, reuses variables from two distinct
    earlier atoms, creating cycles.  ``max_shared`` caps how many variables
    an atom shares with any single earlier atom, which keeps the suite in
    the max_shared-BIP — matching the HyperBench finding that real CQs
    rarely join on more than 2 attributes.
    """
    rng = rng or random.Random(0)
    if n_atoms < 1:
        raise ValueError("need at least one atom")
    edges: dict[str, frozenset] = {}
    counter = 0

    def fresh(k: int) -> list[str]:
        nonlocal counter
        out = [f"x{counter + j}" for j in range(k)]
        counter += k
        return out

    first_arity = rng.randint(2, max_arity)
    edges["a1"] = frozenset(fresh(first_arity))
    for i in range(2, n_atoms + 1):
        arity = rng.randint(2, max_arity)
        prior = list(edges.values())
        shared: set[str] = set()
        hosts = 2 if (rng.random() < cyclicity and len(prior) >= 2) else 1
        for host in rng.sample(prior, hosts):
            take = rng.randint(1, min(max_shared, len(host), arity - 1))
            shared.update(rng.sample(sorted(host), take))
        shared_list = sorted(shared)[: arity - 1]
        edges[f"a{i}"] = frozenset(
            shared_list + fresh(arity - len(shared_list))
        )
    return Hypergraph(edges, name=f"cq({n_atoms})")


def random_csp_hypergraph(
    n_vars: int,
    n_constraints: int,
    arity: int = 2,
    rng: random.Random | None = None,
) -> Hypergraph:
    """A random CSP-shaped hypergraph: many small constraints over a fixed
    variable pool (higher vertex degree than CQs, as Section 1 notes)."""
    rng = rng or random.Random(0)
    if arity > n_vars:
        raise ValueError("arity exceeds number of variables")
    vs = [f"x{i}" for i in range(1, n_vars + 1)]
    edges: dict[str, tuple] = {}
    seen: set[frozenset] = set()
    attempts = 0
    while len(edges) < n_constraints and attempts < 100 * n_constraints:
        attempts += 1
        scope = frozenset(rng.sample(vs, arity))
        if scope in seen:
            continue
        seen.add(scope)
        edges[f"c{len(edges) + 1}"] = tuple(sorted(scope))
    hg = Hypergraph(edges, name=f"csp({n_vars},{n_constraints})")
    # Reject isolated vertices by construction: re-sample is overkill;
    # simply drop vertices that ended up unused (they are not in any edge,
    # so they never appear in the Hypergraph anyway).
    return hg


def hyperbench_like_suite(
    seed: int = 0,
    n_cq: int = 30,
    n_csp: int = 10,
) -> list[Hypergraph]:
    """A mixed suite echoing the HyperBench composition of [23].

    Roughly: many small CQs (mostly acyclic or ghw 2, tiny intersections),
    fewer but denser CSPs, plus a handful of the paper's named families.
    Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    suite: list[Hypergraph] = []
    for i in range(n_cq):
        suite.append(
            random_cq_hypergraph(
                n_atoms=rng.randint(3, 9),
                max_arity=rng.randint(2, 5),
                cyclicity=rng.choice([0.0, 0.2, 0.4]),
                rng=random.Random(rng.randint(0, 10**9)),
            )
        )
    for i in range(n_csp):
        suite.append(
            random_csp_hypergraph(
                n_vars=rng.randint(6, 12),
                n_constraints=rng.randint(6, 16),
                arity=rng.choice([2, 2, 3]),
                rng=random.Random(rng.randint(0, 10**9)),
            )
        )
    suite.append(cycle(6))
    suite.append(grid(3, 3))
    suite.append(triangle_cascade(3))
    return suite
