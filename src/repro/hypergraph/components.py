"""``[C]``-connectivity: components and paths (Section 2.1).

Given a hypergraph ``H`` and a separator ``C ⊆ V(H)``:

* two vertices are ``[C]``-adjacent if some edge contains both of them
  outside ``C``;
* a ``[C]``-path is a vertex/edge sequence whose consecutive vertices are
  ``[C]``-adjacent via the listed edges;
* a ``[C]``-component is a maximal ``[C]``-connected non-empty subset of
  ``V(H) \\ C``.

These notions drive every decomposition algorithm in the paper (normal
forms, ``k-decomp``, ``frac-decomp``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .hypergraph import Hypergraph, Vertex

__all__ = [
    "components",
    "component_of",
    "is_connected",
    "separator_path",
    "connected_components",
]


def components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> list[frozenset]:
    """All ``[C]``-components of the hypergraph, for ``C = separator``.

    Returns a list of disjoint frozensets partitioning the vertices of
    ``V(H) \\ C`` that lie in some edge not fully inside ``C``.  Vertices
    of ``V(H) \\ C`` always belong to some component because every vertex
    lies in at least one edge.

    The algorithm is a BFS over vertices: from a vertex ``v`` we can reach
    every vertex of ``e \\ C`` for each edge ``e`` containing ``v``.
    Each edge is expanded at most once, so the cost is ``O(size(H))`` per
    component sweep.
    """
    sep = frozenset(separator)
    seen: set = set(sep)
    out: list[frozenset] = []
    for start in hypergraph.vertices:
        if start in seen:
            continue
        comp: set = set()
        queue: deque = deque([start])
        seen.add(start)
        used_edges: set = set()
        while queue:
            v = queue.popleft()
            comp.add(v)
            for edge_name in hypergraph.edges_of(v):
                if edge_name in used_edges:
                    continue
                used_edges.add(edge_name)
                for u in hypergraph.edge(edge_name) - sep:
                    if u not in seen:
                        seen.add(u)
                        queue.append(u)
        out.append(frozenset(comp))
    return out


def component_of(
    hypergraph: Hypergraph, separator: Iterable[Vertex], vertex: Vertex
) -> frozenset:
    """The ``[C]``-component containing ``vertex``.

    Raises ``ValueError`` if ``vertex`` lies inside the separator.
    """
    sep = frozenset(separator)
    if vertex in sep:
        raise ValueError(f"vertex {vertex!r} lies in the separator")
    comp: set = set()
    seen: set = {vertex}
    queue: deque = deque([vertex])
    used_edges: set = set()
    while queue:
        v = queue.popleft()
        comp.add(v)
        for edge_name in hypergraph.edges_of(v):
            if edge_name in used_edges:
                continue
            used_edges.add(edge_name)
            for u in hypergraph.edge(edge_name) - sep:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
    return frozenset(comp)


def is_connected(hypergraph: Hypergraph, separator: Iterable[Vertex] = ()) -> bool:
    """True iff ``V(H) \\ C`` forms a single ``[C]``-component (or is empty)."""
    return len(components(hypergraph, separator)) <= 1


def connected_components(hypergraph: Hypergraph) -> list[frozenset]:
    """Plain connected components (``[∅]``-components)."""
    return components(hypergraph, ())


def separator_path(
    hypergraph: Hypergraph,
    separator: Iterable[Vertex],
    source: Vertex,
    target: Vertex,
) -> tuple[list[Vertex], list[str]] | None:
    """A ``[C]``-path from ``source`` to ``target`` or None.

    Returns ``(vertex_sequence, edge_name_sequence)`` with
    ``len(vertices) == len(edges) + 1`` matching the paper's definition:
    ``{v_i, v_{i+1}} ⊆ e_i \\ C``.  The trivial path (``source == target``,
    h = 0) is allowed as in the paper.
    """
    sep = frozenset(separator)
    if source in sep or target in sep:
        return None
    if source == target:
        return [source], []
    # BFS storing (previous vertex, connecting edge).
    prev: dict[Vertex, tuple[Vertex, str]] = {}
    seen: set = {source}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        for edge_name in hypergraph.edges_of(v):
            reachable = hypergraph.edge(edge_name) - sep
            if v not in reachable:
                continue
            for u in reachable:
                if u in seen:
                    continue
                seen.add(u)
                prev[u] = (v, edge_name)
                if u == target:
                    return _reconstruct(prev, source, target)
                queue.append(u)
    return None


def _reconstruct(
    prev: dict[Vertex, tuple[Vertex, str]], source: Vertex, target: Vertex
) -> tuple[list[Vertex], list[str]]:
    vertices = [target]
    edges: list[str] = []
    v = target
    while v != source:
        v, edge_name = prev[v]
        vertices.append(v)
        edges.append(edge_name)
    vertices.reverse()
    edges.reverse()
    return vertices, edges
