"""Dual and reduced hypergraphs (Section 5 assumptions (1)-(4), Section 6.2).

The dual ``H^d = (W, F)`` of ``H = (V, E)`` has one vertex per edge of H
and one edge per vertex of H (the set of H-edges containing that vertex).
Under the paper's assumptions (no isolated vertices, no empty edges, no two
vertices of the same edge-type, no duplicate edges) the dual is an
involution: ``H^dd = H`` up to renaming, and

* fractional edge covers of H  =  fractional transversals of H^d,
* ``ρ*(H) = τ*(H^d)``, ``τ*(H) = ρ*(H^d)``,
* ``degree(H) = rank(H^d)``, ``cigap(H) = tigap(H^d)``.

:func:`reduce_hypergraph` produces the reduced form: vertices of identical
edge-type are fused into one representative and duplicate edges collapse to
a single named edge, exactly the ``H^-`` of Section 5.
"""

from __future__ import annotations

from .hypergraph import Hypergraph, Vertex

__all__ = ["dual_hypergraph", "reduce_hypergraph", "is_reduced"]


def dual_hypergraph(hypergraph: Hypergraph) -> Hypergraph:
    """The dual hypergraph ``H^d``.

    Vertices of the dual are the edge *names* of H; the dual edge for an
    H-vertex ``v`` is named ``"d:<v>"`` and consists of the names of the
    H-edges containing v.  Requires no isolated vertices (each dual edge
    must be non-empty).
    """
    isolated = hypergraph.isolated_vertices()
    if isolated:
        raise ValueError(
            "dual undefined with isolated vertices: "
            f"{sorted(map(str, isolated))}"
        )
    edges = {
        f"d:{v}": frozenset(hypergraph.edges_of(v))
        for v in sorted(hypergraph.vertices, key=str)
    }
    return Hypergraph(
        edges, name=f"{hypergraph.name}^d" if hypergraph.name else None
    )


def reduce_hypergraph(
    hypergraph: Hypergraph,
) -> tuple[Hypergraph, dict[Vertex, Vertex], dict[str, str]]:
    """The reduced hypergraph ``H^-`` plus the fusing maps.

    Returns ``(reduced, vertex_map, edge_map)`` where ``vertex_map`` sends
    each original vertex to its representative (vertices with identical
    edge-type are fused; the representative is the smallest by string
    order) and ``edge_map`` sends each original edge name to the surviving
    edge name among its duplicates.

    ``ρ*(H) = ρ*(H^-)`` (Section 5): fusing same-type vertices removes
    duplicate LP constraints, and collapsing duplicate edges merges LP
    variables whose columns coincide.
    """
    # Fuse vertices of equal edge-type.
    by_type: dict[frozenset, list[Vertex]] = {}
    for v in hypergraph.vertices:
        by_type.setdefault(hypergraph.edge_type(v), []).append(v)
    vertex_map: dict[Vertex, Vertex] = {}
    for group in by_type.values():
        rep = min(group, key=str)
        for v in group:
            vertex_map[v] = rep

    # Collapse duplicate edges (identical vertex-type after fusing).
    by_content: dict[frozenset, list[str]] = {}
    for name, vs in hypergraph.edges.items():
        content = frozenset(vertex_map[v] for v in vs)
        by_content.setdefault(content, []).append(name)
    edge_map: dict[str, str] = {}
    edges: dict[str, frozenset] = {}
    for content, names in by_content.items():
        keeper = min(names)
        edges[keeper] = content
        for n in names:
            edge_map[n] = keeper

    reduced = Hypergraph(
        edges, name=f"{hypergraph.name}^-" if hypergraph.name else None
    )
    return reduced, vertex_map, edge_map


def is_reduced(hypergraph: Hypergraph) -> bool:
    """True iff H satisfies assumptions (1)-(4) of Section 5."""
    if hypergraph.isolated_vertices():
        return False
    types = [hypergraph.edge_type(v) for v in hypergraph.vertices]
    if len(set(types)) != len(types):
        return False
    contents = list(hypergraph.edges.values())
    return len(set(contents)) == len(contents)
