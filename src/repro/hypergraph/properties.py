"""Structural hypergraph properties used by the paper's restrictions.

* **degree** (Section 1/5, BDP): maximum number of edges a vertex occurs in.
* **rank**: maximum edge cardinality (needed for Proposition 5.4 duality).
* **intersection width** ``iwidth`` (Definition 4.1, BIP): maximum size of
  the intersection of two distinct edges.
* **c-multi-intersection width** ``c-miwidth`` (Definition 4.2, BMIP):
  maximum size of the intersection of ``c`` distinct edges.
* **VC dimension** (Definition 6.21): maximum size of a shattered vertex
  set; links the BMIP to the integrality-gap approximation of Section 6.2.
"""

from __future__ import annotations

from itertools import combinations

from .hypergraph import Hypergraph

__all__ = [
    "degree",
    "rank",
    "intersection_width",
    "multi_intersection_width",
    "has_bounded_intersection",
    "has_bounded_multi_intersection",
    "has_bounded_degree",
    "vc_dimension",
    "is_shattered",
]


def degree(hypergraph: Hypergraph) -> int:
    """``max_v |{e : v ∈ e}|`` — the degree d of the hypergraph."""
    if not hypergraph.vertices:
        return 0
    return max(len(hypergraph.edges_of(v)) for v in hypergraph.vertices)


def rank(hypergraph: Hypergraph) -> int:
    """Maximum edge cardinality (the dual notion of degree)."""
    if not hypergraph.num_edges:
        return 0
    return max(len(vs) for vs in hypergraph.edges.values())


def intersection_width(hypergraph: Hypergraph) -> int:
    """``iwidth(H)``: max cardinality of e1 ∩ e2 over distinct edges.

    Distinctness is by edge *name*; two identically-named... rather, two
    different edges with identical contents intersect in their full size,
    matching the paper (it forbids duplicate edges only in reduced form).
    A hypergraph with fewer than two edges has intersection width 0.
    """
    return multi_intersection_width(hypergraph, 2)


def multi_intersection_width(hypergraph: Hypergraph, c: int) -> int:
    """``c-miwidth(H)``: max cardinality of an intersection of c distinct edges.

    Implemented by incremental pruning rather than brute-force
    ``C(m, c)`` enumeration: partial intersections that drop to a size
    no larger than the current best are abandoned early.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    edge_sets = list(hypergraph.edges.values())
    if len(edge_sets) < c:
        return 0
    if c == 1:
        return rank(hypergraph)

    best = 0
    # Order by decreasing size so large intersections are found early,
    # which makes the pruning bound effective.
    edge_sets.sort(key=len, reverse=True)

    def extend(current: frozenset, start: int, chosen: int) -> None:
        nonlocal best
        if chosen == c:
            best = max(best, len(current))
            return
        remaining = c - chosen
        for idx in range(start, len(edge_sets) - remaining + 1):
            nxt = current & edge_sets[idx]
            if len(nxt) > best:
                extend(nxt, idx + 1, chosen + 1)

    for idx in range(len(edge_sets) - c + 1):
        if len(edge_sets[idx]) > best:
            extend(edge_sets[idx], idx + 1, 1)
    return best


def has_bounded_intersection(hypergraph: Hypergraph, i: int) -> bool:
    """True iff H has the i-BIP: ``iwidth(H) <= i`` (Definition 4.1)."""
    return intersection_width(hypergraph) <= i


def has_bounded_multi_intersection(hypergraph: Hypergraph, c: int, i: int) -> bool:
    """True iff H has the i_c-BMIP: ``c-miwidth(H) <= i`` (Definition 4.2)."""
    return multi_intersection_width(hypergraph, c) <= i


def has_bounded_degree(hypergraph: Hypergraph, d: int) -> bool:
    """True iff H has the d-BDP: ``degree(H) <= d`` (Definition 4.13)."""
    return degree(hypergraph) <= d


def is_shattered(hypergraph: Hypergraph, vertex_set: frozenset) -> bool:
    """True iff ``E(H)|_X = 2^X`` for ``X = vertex_set`` (Definition 6.21)."""
    traces = {vs & vertex_set for vs in hypergraph.edges.values()}
    # The empty trace need not come from an edge disjoint from X when X
    # itself is empty; 2^∅ = {∅} and any edge provides the trace only if
    # disjoint.  The paper's convention: ∅ is shattered iff H has an edge
    # (all sets of traces contain ∅ vacuously for |X|=0 as E|_X ⊆ {∅}).
    if not vertex_set:
        return True
    return len(traces) == 2 ** len(vertex_set)


def vc_dimension(hypergraph: Hypergraph, upper_bound: int | None = None) -> int:
    """Exact VC dimension by bounded subset search (Definition 6.21).

    Checks candidate sets by increasing size.  Only vertices with distinct
    edge-types need be considered (two same-type vertices can never both
    belong to a shattered set of size >= 1: no edge separates them, so the
    singleton traces already collide).  ``upper_bound`` truncates the
    search — useful when only "vc <= b?" matters (Lemma 6.24 checks).

    Exponential in the answer, as it must be: computing VC dimension is
    complete for LogNP [Shinohara 1995, cited as [45]].
    """
    # Deduplicate vertices by edge-type (assumption (3) of Section 5).
    seen_types: set[frozenset] = set()
    candidates: list = []
    for v in sorted(hypergraph.vertices, key=str):
        t = hypergraph.edge_type(v)
        if t and t not in seen_types:
            seen_types.add(t)
            candidates.append(v)

    max_size = len(candidates) if upper_bound is None else min(
        upper_bound, len(candidates)
    )
    # An edge set of size m can shatter at most log2(m)+... : |E|_X| <= |E|+1
    # distinct traces (plus the empty one), so 2^|X| <= |E| + 1.
    m = hypergraph.num_edges
    cap = 0
    while 2 ** (cap + 1) <= m + 1:
        cap += 1
    max_size = min(max_size, cap)

    best = 0
    for d in range(1, max_size + 1):
        found = False
        for combo in combinations(candidates, d):
            if is_shattered(hypergraph, frozenset(combo)):
                found = True
                break
        if found:
            best = d
        else:
            break
    return best
