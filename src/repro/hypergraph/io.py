"""Reading and writing hypergraphs in the HyperBench text format.

HyperBench (the benchmark companion [23] of the paper) stores hypergraphs
as a list of atoms::

    e1(a, b, c),
    e2(b, d),
    e3(c, d, e).

One atom per edge; the final atom may end with ``.`` or nothing.  Comments
start with ``%`` or ``#``.  This module parses and serializes that format
so suites can be shipped as plain text files.
"""

from __future__ import annotations

import re
from pathlib import Path

from .hypergraph import Hypergraph

__all__ = ["parse_hyperbench", "to_hyperbench", "load_file", "dump_file"]

_ATOM = re.compile(r"([A-Za-z0-9_:\-\.']+)\s*\(([^)]*)\)")


def parse_hyperbench(text: str, name: str | None = None) -> Hypergraph:
    """Parse HyperBench-format text into a :class:`Hypergraph`.

    Raises ``ValueError`` on duplicate edge names, empty scopes, or if no
    atoms are found at all.
    """
    edges: dict[str, tuple] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("%")[0].split("#")[0].strip()
        if not line:
            continue
        for match in _ATOM.finditer(line):
            edge_name, scope = match.group(1), match.group(2)
            vertices = tuple(v.strip() for v in scope.split(",") if v.strip())
            if not vertices:
                raise ValueError(f"edge {edge_name!r} has an empty scope")
            if edge_name in edges:
                raise ValueError(f"duplicate edge name {edge_name!r}")
            edges[edge_name] = vertices
    if not edges:
        raise ValueError("no atoms found in input")
    return Hypergraph(edges, name=name)


def to_hyperbench(hypergraph: Hypergraph) -> str:
    """Serialize to HyperBench format (edges sorted by name for stability)."""
    lines = []
    names = sorted(hypergraph.edge_names)
    for i, edge_name in enumerate(names):
        vs = ",".join(sorted(map(str, hypergraph.edge(edge_name))))
        sep = "." if i == len(names) - 1 else ","
        lines.append(f"{edge_name}({vs}){sep}")
    return "\n".join(lines) + "\n"


def load_file(path: str | Path) -> Hypergraph:
    """Load a hypergraph from a HyperBench-format file."""
    path = Path(path)
    return parse_hyperbench(path.read_text(), name=path.stem)


def dump_file(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write a hypergraph to a HyperBench-format file."""
    Path(path).write_text(to_hyperbench(hypergraph))
