"""Hypergraph substrate: data structure, connectivity, properties, duality,
generators and I/O (Section 2.1 of the paper and the restrictions of
Sections 4-6)."""

from .acyclicity import gyo_reduction, is_alpha_acyclic, join_tree
from .components import (
    component_of,
    components,
    connected_components,
    is_connected,
    separator_path,
)
from .duality import dual_hypergraph, is_reduced, reduce_hypergraph
from .generators import (
    acyclic_hypergraph,
    bounded_vc_unbounded_miwidth_family,
    clique,
    cycle,
    grid,
    hyperbench_like_suite,
    path_hypergraph,
    random_cq_hypergraph,
    random_csp_hypergraph,
    triangle_cascade,
    unbounded_support_family,
)
from .hypergraph import Hypergraph, Vertex
from .io import dump_file, load_file, parse_hyperbench, to_hyperbench
from .properties import (
    degree,
    has_bounded_degree,
    has_bounded_intersection,
    has_bounded_multi_intersection,
    intersection_width,
    is_shattered,
    multi_intersection_width,
    rank,
    vc_dimension,
)

__all__ = [
    "Hypergraph",
    "gyo_reduction",
    "is_alpha_acyclic",
    "join_tree",
    "Vertex",
    "components",
    "component_of",
    "connected_components",
    "is_connected",
    "separator_path",
    "dual_hypergraph",
    "reduce_hypergraph",
    "is_reduced",
    "degree",
    "rank",
    "intersection_width",
    "multi_intersection_width",
    "has_bounded_intersection",
    "has_bounded_multi_intersection",
    "has_bounded_degree",
    "vc_dimension",
    "is_shattered",
    "clique",
    "cycle",
    "grid",
    "path_hypergraph",
    "acyclic_hypergraph",
    "unbounded_support_family",
    "bounded_vc_unbounded_miwidth_family",
    "triangle_cascade",
    "random_cq_hypergraph",
    "random_csp_hypergraph",
    "hyperbench_like_suite",
    "parse_hyperbench",
    "to_hyperbench",
    "load_file",
    "dump_file",
]
