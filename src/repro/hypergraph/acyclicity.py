"""α-acyclicity via the GYO reduction, and join trees.

The paper's footnote 1 fixes the acyclicity notion: α-acyclicity in the
sense of [50]/[22].  A hypergraph is α-acyclic iff the GYO (Graham /
Yu-Özsoyoğlu) reduction — repeatedly delete *ear* vertices (vertices in
exactly one edge) and edges contained in other edges — deletes
everything.  Equivalently ``ghw(H) = hw(H) = 1``, which makes this the
fast path for width-1 checks and the source of join trees for the
Yannakakis evaluator.
"""

from __future__ import annotations

from .hypergraph import Hypergraph

__all__ = ["gyo_reduction", "is_alpha_acyclic", "join_tree"]


def gyo_reduction(
    hypergraph: Hypergraph,
) -> tuple[dict[str, frozenset], list[tuple[str, str]]]:
    """Run the GYO reduction to a fixpoint.

    Returns ``(residue, absorptions)``: the edges that could not be
    eliminated (empty iff H is α-acyclic) and, for each edge removed by
    the containment rule, the pair ``(absorbed, absorber)`` — exactly the
    parent relation of a join tree.  Edges whose vertices all became
    ears are removed without an absorber (they are component roots).
    """
    edges: dict[str, set] = {
        name: set(vs) for name, vs in hypergraph.edges.items()
    }
    absorptions: list[tuple[str, str]] = []
    while True:
        progressed = False
        # Rule 1: delete vertices occurring in exactly one edge.
        counts: dict = {}
        for vs in edges.values():
            for v in vs:
                counts[v] = counts.get(v, 0) + 1
        for vs in edges.values():
            ears = {v for v in vs if counts[v] == 1}
            if ears:
                vs -= ears
                progressed = True
        # Fully-eared edges are their component's join-tree root.
        for name in [n for n, vs in edges.items() if not vs]:
            del edges[name]
            progressed = True
        # Rule 2: delete edges contained in another edge.
        for small in sorted(edges, key=lambda n: (len(edges[n]), n)):
            if small not in edges:
                continue
            absorber = next(
                (
                    big
                    for big in sorted(
                        edges, key=lambda n: (-len(edges[n]), n)
                    )
                    if big != small and edges[small] <= edges[big]
                ),
                None,
            )
            if absorber is not None:
                absorptions.append((small, absorber))
                del edges[small]
                progressed = True
        if not progressed:
            break
    return (
        {name: frozenset(vs) for name, vs in edges.items()},
        absorptions,
    )


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff H is α-acyclic (the GYO reduction deletes every edge)."""
    residue, _absorptions = gyo_reduction(hypergraph)
    return not residue


def join_tree(hypergraph: Hypergraph):
    """A width-1 GHD (join tree) of an α-acyclic hypergraph, else None.

    Bags are the original (full) edges; the parent of an absorbed edge is
    its absorber.  Component roots (and duplicate-free leftovers) hang
    off a single global root so the result is one tree.
    """
    from ..covers import FractionalCover  # deferred: import cycle
    from ..decomposition import Decomposition  # deferred: import cycle

    if not is_alpha_acyclic(hypergraph):
        return None
    _residue, absorptions = gyo_reduction(hypergraph)
    parent = dict(absorptions)
    roots = [n for n in hypergraph.edge_names if n not in parent]
    root = roots[0]
    for other in roots[1:]:
        parent[other] = root
    nodes = [
        (name, hypergraph.edge(name), FractionalCover({name: 1.0}))
        for name in hypergraph.edge_names
    ]
    return Decomposition(nodes, parent=parent, root=root)
