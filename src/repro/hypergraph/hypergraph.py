"""Core hypergraph data structure (Section 2.1 of the paper).

A hypergraph is a pair ``H = (V(H), E(H))`` of a vertex set and a set of
non-empty hyperedges.  Following the paper we assume no isolated vertices:
every vertex occurs in at least one edge, so the vertex set is implied by
the edges (extra isolated vertices may still be declared explicitly; most
algorithms reject them early with a clear error).

Edges are *named*: the edge set is a mapping from edge name to a frozen set
of vertices.  Named edges are essential for conjunctive queries (two atoms
may share a relation schema) and for the paper's reductions, which refer to
edges such as ``e_p^{k,0}`` by name.  Duplicate edge *contents* under
different names are allowed; :meth:`Hypergraph.reduced` removes them when
an algorithm needs the paper's reduced form (Section 5, assumptions (1)-(4)).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from types import MappingProxyType
from typing import Any

Vertex = Hashable

__all__ = ["Hypergraph", "Vertex"]


def _normalize_edges(
    edges: Mapping[str, Iterable[Vertex]] | Iterable[Iterable[Vertex]],
) -> dict[str, frozenset]:
    """Return a name -> frozenset mapping from any accepted edge spec."""
    if isinstance(edges, Mapping):
        named = {str(name): frozenset(vs) for name, vs in edges.items()}
    else:
        named = {f"e{i}": frozenset(vs) for i, vs in enumerate(edges, start=1)}
    for name, vs in named.items():
        if not vs:
            raise ValueError(f"edge {name!r} is empty; hyperedges must be non-empty")
    return named


class Hypergraph:
    """An immutable hypergraph ``H = (V(H), E(H))`` with named edges.

    Parameters
    ----------
    edges:
        Either a mapping ``{name: vertices}`` or an iterable of vertex
        collections (auto-named ``e1, e2, ...``).
    vertices:
        Optional extra vertices.  Vertices occurring in edges are always
        included; pass this only to declare isolated vertices explicitly
        (the paper disallows them for width computations, and the cover
        LPs will raise if asked to cover one).
    name:
        Optional display name used in ``repr`` and experiment logs.

    Examples
    --------
    >>> h = Hypergraph({"ab": ["a", "b"], "bc": ["b", "c"]})
    >>> sorted(h.vertices)
    ['a', 'b', 'c']
    >>> h.edge("ab")
    frozenset({'a', 'b'})
    """

    __slots__ = (
        "_edges",
        "_edges_view",
        "_vertices",
        "_incidence",
        "_primal",
        "_hash",
        "_canonical",
        "name",
    )

    def __init__(
        self,
        edges: Mapping[str, Iterable[Vertex]] | Iterable[Iterable[Vertex]],
        vertices: Iterable[Vertex] = (),
        name: str | None = None,
    ) -> None:
        self._edges: dict[str, frozenset] = _normalize_edges(edges)
        declared = frozenset(vertices)
        in_edges: set = set()
        incidence: dict[Vertex, set] = {}
        for edge_name, vs in self._edges.items():
            in_edges.update(vs)
            for v in vs:
                incidence.setdefault(v, set()).add(edge_name)
        self._vertices: frozenset = frozenset(in_edges) | declared
        self._incidence: dict[Vertex, frozenset] = {
            v: frozenset(incidence.get(v, ())) for v in self._vertices
        }
        self._edges_view: Mapping[str, frozenset] = MappingProxyType(self._edges)
        self._primal: dict[Vertex, frozenset] | None = None
        self._hash: int | None = None
        self._canonical: str | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> frozenset:
        """The vertex set ``V(H)``."""
        return self._vertices

    @property
    def edges(self) -> Mapping[str, frozenset]:
        """The edge mapping ``{name: vertex set}`` as a read-only view.

        The view is zero-copy (``MappingProxyType``), so repeated access
        inside search loops is O(1); call ``dict(h.edges)`` for a mutable
        snapshot.
        """
        return self._edges_view

    @property
    def edge_names(self) -> tuple[str, ...]:
        """Edge names in insertion order."""
        return tuple(self._edges)

    def edge(self, name: str) -> frozenset:
        """The vertex set of the edge called ``name``."""
        return self._edges[name]

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def size(self) -> int:
        """``|V| + sum of edge cardinalities`` — the paper's input size n."""
        return len(self._vertices) + sum(len(vs) for vs in self._edges.values())

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._vertices, frozenset(self._edges.items())))
        return self._hash

    def canonical_hash(self) -> str:
        """A process-stable content hash of the hypergraph (hex digest).

        Unlike ``hash()`` (salted per process for strings), this digest
        is identical across interpreter runs for equal hypergraphs, so
        it can key persistent artifacts — the result store and the
        serve layer's request coalescing both use it.  The digest
        covers the edge names, edge contents and declared isolated
        vertices (not the display ``name``); vertices are tagged with
        their type so ``"1"`` and ``1`` never collide.  The hashed
        encoding is JSON (names and vertex tokens are separate string
        elements, so every delimiter is escaped inside them): distinct
        hypergraphs can never produce the same byte stream, no matter
        what characters their edge names contain.  Computed once and
        cached (the hypergraph is immutable).
        """
        if self._canonical is None:
            import hashlib
            import json

            def token(v: Vertex) -> str:
                if isinstance(v, str):
                    return "s:" + v
                if isinstance(v, int):
                    return "i:" + str(v)
                return "r:" + repr(v)

            isolated = self._vertices - frozenset().union(
                *self._edges.values()
            )
            payload = [
                [
                    [name, sorted(token(v) for v in self._edges[name])]
                    for name in sorted(self._edges)
                ],
                sorted(token(v) for v in isolated),
            ]
            encoded = json.dumps(
                payload, separators=(",", ":"), ensure_ascii=False
            )
            digest = hashlib.sha256(encoded.encode("utf-8"))
            self._canonical = digest.hexdigest()
        return self._canonical

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Hypergraph{label}(|V|={self.num_vertices}, |E|={self.num_edges})"
        )

    def __getstate__(self) -> dict:
        """Pickle only the defining data; derived state (the proxy view,
        cached primal graph and hash) is rebuilt on load — a mappingproxy
        itself cannot be pickled."""
        return {
            "edges": self._edges,
            "vertices": self._vertices,
            "name": self.name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["edges"], vertices=state["vertices"], name=state["name"]
        )

    # ------------------------------------------------------------------
    # Incidence
    # ------------------------------------------------------------------
    def edges_of(self, vertex: Vertex) -> frozenset:
        """Names of the edges containing ``vertex``."""
        return self._incidence[vertex]

    def incident_edges(self, vertex_set: Iterable[Vertex]) -> frozenset:
        """``edges(C)``: names of edges with non-empty intersection with C.

        This is the paper's ``edges(C) = {e in E(H) | e ∩ C != ∅}``.
        """
        names: set = set()
        for v in vertex_set:
            names.update(self._incidence.get(v, ()))
        return frozenset(names)

    def vertices_of(self, edge_names: Iterable[str]) -> frozenset:
        """``V(S) = ∪ S`` for a set S of edge names."""
        out: set = set()
        for name in edge_names:
            out.update(self._edges[name])
        return frozenset(out)

    def isolated_vertices(self) -> frozenset:
        """Vertices contained in no edge (disallowed by the paper)."""
        return frozenset(v for v, inc in self._incidence.items() if not inc)

    # ------------------------------------------------------------------
    # Derived hypergraphs
    # ------------------------------------------------------------------
    def induced(self, vertex_set: Iterable[Vertex]) -> "Hypergraph":
        """The vertex-induced subhypergraph on ``vertex_set`` (Lemma 2.7).

        Edges are intersected with the vertex set; empty intersections are
        dropped.  Edge names are preserved, so duplicates may arise (use
        :meth:`reduced` to collapse them).
        """
        keep = frozenset(vertex_set)
        unknown = keep - self._vertices
        if unknown:
            raise ValueError(f"vertices not in hypergraph: {sorted(map(str, unknown))}")
        edges = {
            name: vs & keep for name, vs in self._edges.items() if vs & keep
        }
        return Hypergraph(edges, name=self.name and f"{self.name}[induced]")

    def restrict_edges(self, edge_names: Iterable[str]) -> "Hypergraph":
        """The subhypergraph consisting of only the given edges."""
        names = list(edge_names)
        missing = [n for n in names if n not in self._edges]
        if missing:
            raise KeyError(f"unknown edges: {missing}")
        return Hypergraph(
            {n: self._edges[n] for n in names},
            name=self.name and f"{self.name}[edges]",
        )

    def with_edges(
        self, extra: Mapping[str, Iterable[Vertex]], prefix: str = ""
    ) -> "Hypergraph":
        """A new hypergraph with ``extra`` edges added.

        Used for the subedge augmentation ``H' = (V, E ∪ f(H,k))`` of
        Sections 4 and 5.  Name clashes raise unless the contents agree.
        """
        merged = dict(self._edges)
        for name, vs in extra.items():
            full = f"{prefix}{name}"
            fs = frozenset(vs)
            if full in merged and merged[full] != fs:
                raise ValueError(f"edge name clash with different contents: {full!r}")
            if not fs:
                raise ValueError(f"edge {full!r} is empty")
            merged[full] = fs
        return Hypergraph(merged, vertices=self._vertices, name=self.name)

    def primal_graph(self) -> dict[Vertex, frozenset]:
        """Adjacency mapping of the primal (Gaifman) graph.

        Two vertices are adjacent iff they co-occur in some edge.  Every
        hyperedge becomes a clique, which is why Lemma 2.8 applies to
        tree decompositions of this graph.

        The hypergraph is immutable, so the adjacency is computed once and
        cached; callers must not mutate the returned mapping (copy the
        neighbour sets before editing, as the elimination heuristics do).
        """
        if self._primal is None:
            adj: dict[Vertex, set] = {v: set() for v in self._vertices}
            for vs in self._edges.values():
                for v in vs:
                    adj[v].update(vs)
            self._primal = {v: frozenset(nbrs - {v}) for v, nbrs in adj.items()}
        return self._primal

    # ------------------------------------------------------------------
    # Misc structural helpers
    # ------------------------------------------------------------------
    def adjacent(self, u: Vertex, v: Vertex) -> bool:
        """True iff some edge contains both ``u`` and ``v``."""
        if u == v:
            return True
        return bool(self._incidence[u] & self._incidence[v])

    def is_clique(self, vertex_set: Iterable[Vertex]) -> bool:
        """True iff every pair in ``vertex_set`` co-occurs in some edge."""
        vs = list(frozenset(vertex_set))
        adjacency = self.primal_graph()
        return all(
            vs[j] in adjacency[vs[i]]
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
        )

    def edge_type(self, vertex: Vertex) -> frozenset:
        """The edge-type of a vertex: the set of edges it occurs in (§5)."""
        return self._incidence[vertex]
