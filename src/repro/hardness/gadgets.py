"""The Lemma 3.1 gadget H₀ (Figure 1) and its vertex/edge naming scheme.

The gadget forces any width-2 FHD of the ambient hypergraph to contain
three nodes u_A, u_B, u_C in a row whose bags are (essentially) the three
4-cliques {a1,a2,b1,b2}, {b1,b2,c1,c2}, {c1,c2,d1,d2} plus M = M1 ∪ M2 —
the mechanism that pins the set S onto the "long path" of the reduction.

``gadget_edges(M1, M2, prime)`` builds E_A ∪ E_B ∪ E_C with the edge
names ``gA1..gA5, gB1..gB6, gC1..gC5`` (suffix ``p`` for the primed copy
H₀').
"""

from __future__ import annotations

from collections.abc import Iterable

from ..hypergraph import Hypergraph

__all__ = [
    "gadget_vertex_names",
    "gadget_edges",
    "gadget_hypergraph",
    "GADGET_CORE",
    "GADGET_RESTRICTED",
]

#: The eight core vertices of the gadget (unprimed copy).
GADGET_CORE = ("a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2")

#: The set R of Lemma 3.1: vertices that may not occur outside the gadget.
GADGET_RESTRICTED = ("a2", "b1", "b2", "c1", "c2", "d1", "d2")


def gadget_vertex_names(prime: bool = False) -> dict[str, str]:
    """Core vertex names, suffixed with ``p`` for the primed copy."""
    suffix = "p" if prime else ""
    return {base: f"{base}{suffix}" for base in GADGET_CORE}


def gadget_edges(
    m1: Iterable, m2: Iterable, prime: bool = False
) -> dict[str, frozenset]:
    """The edges E_A ∪ E_B ∪ E_C of Lemma 3.1 for the given M1, M2.

    Edge names carry the suffix ``p`` when ``prime`` is set, matching the
    primed copy H₀' of the Theorem 3.2 construction.
    """
    v = gadget_vertex_names(prime)
    m1 = frozenset(m1)
    m2 = frozenset(m2)
    s = "p" if prime else ""
    return {
        # E_A
        f"gA1{s}": frozenset([v["a1"], v["b1"]]) | m1,
        f"gA2{s}": frozenset([v["a2"], v["b2"]]) | m2,
        f"gA3{s}": frozenset([v["a1"], v["b2"]]),
        f"gA4{s}": frozenset([v["a2"], v["b1"]]),
        f"gA5{s}": frozenset([v["a1"], v["a2"]]),
        # E_B
        f"gB1{s}": frozenset([v["b1"], v["c1"]]) | m1,
        f"gB2{s}": frozenset([v["b2"], v["c2"]]) | m2,
        f"gB3{s}": frozenset([v["b1"], v["c2"]]),
        f"gB4{s}": frozenset([v["b2"], v["c1"]]),
        f"gB5{s}": frozenset([v["b1"], v["b2"]]),
        f"gB6{s}": frozenset([v["c1"], v["c2"]]),
        # E_C
        f"gC1{s}": frozenset([v["c1"], v["d1"]]) | m1,
        f"gC2{s}": frozenset([v["c2"], v["d2"]]) | m2,
        f"gC3{s}": frozenset([v["c1"], v["d2"]]),
        f"gC4{s}": frozenset([v["c2"], v["d1"]]),
        f"gC5{s}": frozenset([v["d1"], v["d2"]]),
    }


def gadget_hypergraph(
    m1: Iterable = ("m1",), m2: Iterable = ("m2",), prime: bool = False
) -> Hypergraph:
    """The standalone gadget H₀ as a hypergraph (defaults: tiny M1/M2).

    Useful for unit-testing the Lemma 3.1 cover arguments in isolation:
    e.g. that covering {a1,a2,b1,b2} with weight <= 2 confines the
    support to ``E_A ∪ {gB5}``.
    """
    return Hypergraph(
        gadget_edges(m1, m2, prime=prime),
        name="Lemma3.1-H0" + ("'" if prime else ""),
    )
