"""The Theorem 3.2 reduction: 3SAT φ  →  hypergraph H with

    φ satisfiable   ⟺   ghw(H) <= 2   ⟺   fhw(H) <= 2.

This module constructs H exactly as in Section 3 (two copies of the
Lemma 3.1 gadget joined by the "long path" edges), builds the explicit
width-2 GHD of Table 1 / Figure 2 from a satisfying assignment, and
provides the LP *certificates* that computationally reproduce the
"only if" direction: Lemma 3.5 (complementary edges carry equal weight),
Lemma 3.6 (support confinement at path nodes), the Claim D-F
infeasibilities, and the clause-by-clause coverability criterion that
drives Claim I.

Vertex naming (n variables, m clauses; positions p = (i,j) range over
``[2n+3; m] = {1..2n+3} × {1..m}`` in lexicographic order):

=============  =======================================
paper object    vertex name
=============  =======================================
a_p             ``a_i_j``        (p = (i,j))
a'_p            ``ap_i_j``
(q | k) ∈ S     ``s_qi_qj_k``    (q = (qi,qj) ∈ Q)
y_l / y'_l      ``y_l`` / ``yp_l``
z1, z2          ``z1``, ``z2``
gadget core     ``a1 a2 b1 b2 c1 c2 d1 d2`` (+ ``p``)
=============  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..covers import (
    FractionalCover,
    cover_feasible_within,
    extremal_cover_value,
    max_weight_difference,
    support_confined,
)
from ..decomposition import Decomposition, violations
from ..hypergraph import Hypergraph
from .cnf import CNF
from .gadgets import gadget_edges

__all__ = ["Reduction", "build_reduction"]

Position = tuple[int, int]


@dataclass
class Reduction:
    """The reduction instance for a 3SAT formula (built lazily)."""

    formula: CNF

    def __post_init__(self) -> None:
        self.formula = self.formula.as_3sat()
        self.n = self.formula.num_variables
        self.m = self.formula.num_clauses

    # ------------------------------------------------------------------
    # Index sets
    # ------------------------------------------------------------------
    @cached_property
    def positions(self) -> list[Position]:
        """``[2n+3; m]`` in lexicographic order."""
        return [
            (i, j)
            for i in range(1, 2 * self.n + 3 + 1)
            for j in range(1, self.m + 1)
        ]

    @property
    def p_min(self) -> Position:
        return self.positions[0]

    @property
    def p_max(self) -> Position:
        return self.positions[-1]

    @cached_property
    def q_values(self) -> list[Position]:
        """Q = [2n+3; m] ∪ {(0,1), (0,0), (1,0)}."""
        return self.positions + [(0, 1), (0, 0), (1, 0)]

    # ------------------------------------------------------------------
    # Vertex names
    # ------------------------------------------------------------------
    def a(self, p: Position) -> str:
        return f"a_{p[0]}_{p[1]}"

    def a_prime(self, p: Position) -> str:
        return f"ap_{p[0]}_{p[1]}"

    def s(self, q: Position, k: int) -> str:
        return f"s_{q[0]}_{q[1]}_{k}"

    def y(self, l: int) -> str:
        return f"y_{l}"

    def y_prime(self, l: int) -> str:
        return f"yp_{l}"

    @cached_property
    def set_s(self) -> frozenset:
        """The full control set S = Q × {1,2,3}."""
        return frozenset(
            self.s(q, k) for q in self.q_values for k in (1, 2, 3)
        )

    def s_block(self, q: Position) -> frozenset:
        """``S_q = (q | *)``: the three S-vertices at position q."""
        return frozenset(self.s(q, k) for k in (1, 2, 3))

    def s_single(self, p: Position, k: int) -> frozenset:
        """``S^k_p = {(p | k)}``."""
        return frozenset([self.s(p, k)])

    @cached_property
    def set_a(self) -> frozenset:
        return frozenset(self.a(p) for p in self.positions)

    @cached_property
    def set_a_prime(self) -> frozenset:
        return frozenset(self.a_prime(p) for p in self.positions)

    @cached_property
    def set_y(self) -> frozenset:
        return frozenset(self.y(l) for l in range(1, self.n + 1))

    @cached_property
    def set_y_prime(self) -> frozenset:
        return frozenset(self.y_prime(l) for l in range(1, self.n + 1))

    def a_prefix(self, p: Position) -> frozenset:
        """``A'_p = {a'_min, ..., a'_p}`` (primed prefix)."""
        return frozenset(
            self.a_prime(q) for q in self.positions if q <= p
        )

    def a_suffix(self, p: Position) -> frozenset:
        """``A̅_p = {a_p, ..., a_max}`` (unprimed suffix)."""
        return frozenset(self.a(q) for q in self.positions if q >= p)

    # M-sets of the two gadget copies.
    @cached_property
    def m1(self) -> frozenset:
        return (self.set_s - self.s_block((0, 1))) | {"z1"}

    @cached_property
    def m2(self) -> frozenset:
        return self.set_y | self.s_block((0, 1)) | {"z2"}

    @cached_property
    def m1_prime(self) -> frozenset:
        return (self.set_s - self.s_block((1, 0))) | {"z1"}

    @cached_property
    def m2_prime(self) -> frozenset:
        return self.set_y_prime | self.s_block((1, 0)) | {"z2"}

    # ------------------------------------------------------------------
    # Edge names of the long path
    # ------------------------------------------------------------------
    def connector_name(self, p: Position) -> str:
        return f"ep_{p[0]}_{p[1]}"

    def literal_name(self, p: Position, k: int, side: int) -> str:
        return f"lit{k}{side}_{p[0]}_{p[1]}"

    # ------------------------------------------------------------------
    # The hypergraph
    # ------------------------------------------------------------------
    @cached_property
    def hypergraph(self) -> Hypergraph:
        """The full reduction hypergraph H of Theorem 3.2."""
        edges: dict[str, frozenset] = {}
        edges.update(gadget_edges(self.m1, self.m2, prime=False))
        edges.update(gadget_edges(self.m1_prime, self.m2_prime, prime=True))

        inner = self.positions[:-1]  # [2n+3; m]^-
        for p in inner:
            edges[self.connector_name(p)] = self.a_prefix(p) | self.a_suffix(p)
        for l in range(1, self.n + 1):
            edges[f"ey_{l}"] = frozenset([self.y(l), self.y_prime(l)])

        for p in inner:
            j = p[1]
            clause = self.formula.clauses[j - 1]
            for k in (1, 2, 3):
                lit = clause[k - 1]
                l = abs(lit)
                if lit > 0:  # L^k_j = x_l
                    side0_y = self.set_y
                    side1_y = self.set_y_prime - {self.y_prime(l)}
                else:  # L^k_j = ¬x_l
                    side0_y = self.set_y - {self.y(l)}
                    side1_y = self.set_y_prime
                edges[self.literal_name(p, k, 0)] = (
                    self.a_suffix(p)
                    | (self.set_s - self.s_single(p, k))
                    | side0_y
                    | {"z1"}
                )
                edges[self.literal_name(p, k, 1)] = (
                    self.a_prefix(p)
                    | self.s_single(p, k)
                    | side1_y
                    | {"z2"}
                )

        edges["e0_00"] = (
            {"a1"}
            | self.set_a
            | (self.set_s - self.s_block((0, 0)))
            | self.set_y
            | {"z1"}
        )
        edges["e1_00"] = self.s_block((0, 0)) | self.set_y_prime | {"z2"}
        edges["e0_max"] = (
            (self.set_s - self.s_block(self.p_max)) | self.set_y | {"z1"}
        )
        edges["e1_max"] = (
            {"a1p"} | self.set_a_prime | self.s_block(self.p_max)
            | self.set_y_prime | {"z2"}
        )
        return Hypergraph(edges, name=f"Thm3.2(n={self.n},m={self.m})")

    # ------------------------------------------------------------------
    # The Table 1 GHD
    # ------------------------------------------------------------------
    def z_set(self, assignment: list[bool]) -> frozenset:
        """``Z = {y_l : σ(x_l)=1} ∪ {y'_l : σ(x_l)=0}``."""
        out = set()
        for l in range(1, self.n + 1):
            out.add(self.y(l) if assignment[l - 1] else self.y_prime(l))
        return frozenset(out)

    def satisfied_literal_index(
        self, j: int, assignment: list[bool]
    ) -> int | None:
        """Some k with the k-th literal of clause j true under σ, or None."""
        clause = self.formula.clauses[j - 1]
        for k in (1, 2, 3):
            lit = clause[k - 1]
            if assignment[abs(lit) - 1] == (lit > 0):
                return k
        return None

    def table1_ghd(self, assignment: list[bool]) -> Decomposition:
        """The explicit width-2 GHD of Table 1 / Figure 2.

        Raises ``ValueError`` when the assignment does not satisfy φ
        (some clause then has no coverable literal pair).
        """
        s, y, yp, a, apr = (
            self.set_s,
            self.set_y,
            self.set_y_prime,
            self.set_a,
            self.set_a_prime,
        )
        z = self.z_set(assignment)
        zz = frozenset(["z1", "z2"])
        core = {"uC": ("d1", "d2", "c1", "c2"), "uB": ("c1", "c2", "b1", "b2"),
                "uA": ("b1", "b2", "a1", "a2")}
        lam = {"uC": ("gC1", "gC2"), "uB": ("gB1", "gB2"), "uA": ("gA1", "gA2")}

        nodes: list[tuple[str, frozenset, FractionalCover]] = []
        for uid in ("uC", "uB", "uA"):
            nodes.append(
                (
                    uid,
                    frozenset(core[uid]) | y | s | zz,
                    FractionalCover({lam[uid][0]: 1.0, lam[uid][1]: 1.0}),
                )
            )
        nodes.append(
            (
                "umin-1",
                frozenset(["a1"]) | a | y | s | z | zz,
                FractionalCover({"e0_00": 1.0, "e1_00": 1.0}),
            )
        )
        for p in self.positions[:-1]:
            k = self.satisfied_literal_index(p[1], assignment)
            if k is None:
                raise ValueError(
                    f"assignment does not satisfy clause {p[1]}; "
                    "Table 1 GHD exists only for satisfying assignments"
                )
            nodes.append(
                (
                    f"u_{p[0]}_{p[1]}",
                    self.a_prefix(p) | self.a_suffix(p) | s | z | zz,
                    FractionalCover(
                        {
                            self.literal_name(p, k, 0): 1.0,
                            self.literal_name(p, k, 1): 1.0,
                        }
                    ),
                )
            )
        nodes.append(
            (
                "umax",
                frozenset(["a1p"]) | apr | yp | s | z | zz,
                FractionalCover({"e0_max": 1.0, "e1_max": 1.0}),
            )
        )
        primed_core = {
            "uA'": ("a1p", "a2p", "b1p", "b2p"),
            "uB'": ("b1p", "b2p", "c1p", "c2p"),
            "uC'": ("c1p", "c2p", "d1p", "d2p"),
        }
        primed_lam = {
            "uA'": ("gA1p", "gA2p"),
            "uB'": ("gB1p", "gB2p"),
            "uC'": ("gC1p", "gC2p"),
        }
        for uid in ("uA'", "uB'", "uC'"):
            nodes.append(
                (
                    uid,
                    frozenset(primed_core[uid]) | yp | s | zz,
                    FractionalCover(
                        {primed_lam[uid][0]: 1.0, primed_lam[uid][1]: 1.0}
                    ),
                )
            )
        return Decomposition.path(nodes)

    # ------------------------------------------------------------------
    # LP certificates (the computational "only if" direction)
    # ------------------------------------------------------------------
    def path_bag(self, p: Position, z: frozenset) -> frozenset:
        """``B_{u_p} = A'_p ∪ A̅_p ∪ S ∪ Z ∪ {z1,z2}`` of Table 1."""
        return (
            self.a_prefix(p) | self.a_suffix(p) | self.set_s | z
            | frozenset(["z1", "z2"])
        )

    def clause_block_coverable(
        self, j: int, assignment: list[bool], budget: float = 2.0
    ) -> bool:
        """Is the path bag for clause j at block 1 coverable within budget?

        By Lemma 3.6 + Claim I this holds iff some literal of clause j is
        true under the assignment; :meth:`certify_equivalence` checks that
        equivalence exhaustively.
        """
        p = (1, j)
        if p == self.p_max:
            raise ValueError("block (1, j) may not be the maximum position")
        return cover_feasible_within(
            self.hypergraph, self.path_bag(p, self.z_set(assignment)), budget
        )

    def certify_equivalence(self) -> bool:
        """The LP reproduction of Theorem 3.2's correctness on this φ:

        φ is satisfiable  ⟺  some assignment Z makes *every* clause's
        path bag coverable with weight <= 2.

        (Forward by construction; backward because a width-2 FHD must
        realize exactly these bags along the long path, Claims C-I.)
        Exhaustive over 2^n assignments — for the small φ the experiments
        use.
        """
        sat = self.formula.is_satisfiable()
        lp_says_sat = False
        for mask in range(2 ** self.n):
            assignment = [(mask >> b) & 1 == 1 for b in range(self.n)]
            if all(
                self.clause_block_coverable(j, assignment)
                for j in range(1, self.m + 1)
            ):
                lp_says_sat = True
                break
        return lp_says_sat == sat

    def certify_lemma_3_5(self, tol: float = 1e-6) -> bool:
        """Lemma 3.5 as an LP certificate: over every weight-2 cover of
        ``S ∪ {z1, z2}``, complementary weights must agree.

        Where the complementary S-trace has a *unique* carrier edge (the
        literal pairs and the (0,0)/max pairs) this is the paper's exact
        per-pair equality.  The S-traces ``S_(0,1)`` / ``S_(1,0)`` of the
        gadget edges are carried by three edges each (gA2/gB2/gC2), so
        there the forced invariant is the *group-sum* equality — the form
        actually used downstream in Lemma 3.6's confinement argument.
        """
        target = self.set_s | {"z1", "z2"}
        pairs = [("e0_00", "e1_00"), ("e0_max", "e1_max")]
        p = self.p_min
        for k in (1, 2, 3):
            pairs.append(
                (self.literal_name(p, k, 0), self.literal_name(p, k, 1))
            )
        for edge_a, edge_b in pairs:
            diff = max_weight_difference(
                self.hypergraph, target, 2.0, edge_a, edge_b
            )
            if diff is None or diff > tol:
                return False
        # Gadget copies: group-sum equality of the M1-side vs M2-side.
        for suffix in ("", "p"):
            objective = {
                f"gA1{suffix}": 1.0, f"gB1{suffix}": 1.0, f"gC1{suffix}": 1.0,
                f"gA2{suffix}": -1.0, f"gB2{suffix}": -1.0, f"gC2{suffix}": -1.0,
            }
            up = extremal_cover_value(
                self.hypergraph, target, 2.0, objective, maximize=True
            )
            down = extremal_cover_value(
                self.hypergraph, target, 2.0,
                {e: -c for e, c in objective.items()}, maximize=True,
            )
            if up is None or down is None or max(up, down) > tol:
                return False
        return True

    def certify_lemma_3_6(self, p: Position | None = None) -> bool:
        """Weight-2 covers of ``S ∪ A'_p ∪ A̅_p ∪ {z1,z2}`` put weight only
        on the six literal edges of position p (Lemma 3.6)."""
        if p is None:
            p = self.p_min
        target = (
            self.set_s | self.a_prefix(p) | self.a_suffix(p) | {"z1", "z2"}
        )
        allowed = [
            self.literal_name(p, k, side) for k in (1, 2, 3) for side in (0, 1)
        ]
        return support_confined(self.hypergraph, target, 2.0, allowed)

    def certify_claim_infeasibilities(self) -> dict[str, bool]:
        """The Claim D/F vertex sets really need weight > 2 (LP infeasible).

        Returns a mapping of claim label to whether the certificate holds.
        """
        s_zz = self.set_s | {"z1", "z2"}
        checks = {
            "claimD: S+z+a1+a1'": s_zz | {"a1", "a1p"},
            "claimF1: S+z+a1+a'min": s_zz | {"a1", self.a_prime(self.p_min)},
            "claimF2: S+z+a1'+amin": s_zz | {"a1p", self.a(self.p_min)},
        }
        return {
            label: not cover_feasible_within(self.hypergraph, vs, 2.0)
            for label, vs in checks.items()
        }

    def lifted_forward_witness(self, ell: int) -> Decomposition | None:
        """The forward direction of the k+ℓ lift (end of Section 3).

        If φ is satisfiable, returns a validated width-(2+ℓ) GHD of the
        *lifted* reduction hypergraph ``lift_by_clique(H, ℓ)``: the
        Table 1 GHD with all 2ℓ fresh vertices added to every bag,
        covered by the perfect matching of the fresh clique.  None when
        φ is unsatisfiable.
        """
        from .lifting import lift_by_clique  # deferred: sibling import

        assignment = self.formula.satisfying_assignment()
        if assignment is None:
            return None
        base = self.table1_ghd(assignment)
        lifted = lift_by_clique(self.hypergraph, ell)
        fresh = [f"lift{i}" for i in range(1, 2 * ell + 1)]
        matching = {
            f"liftclique_{2 * i + 1}_{2 * i + 2}": 1.0 for i in range(ell)
        }
        nodes = []
        for nid in base.node_ids:
            weights = dict(base.cover(nid).weights)
            weights.update(matching)
            nodes.append(
                (nid, base.bag(nid) | frozenset(fresh),
                 FractionalCover(weights))
            )
        witness = Decomposition(
            nodes,
            parent={
                nid: base.parent(nid)
                for nid in base.node_ids
                if base.parent(nid) is not None
            },
            root=base.root,
        )
        problems = violations(lifted, witness, kind="ghd", width=2 + ell)
        if problems:
            raise AssertionError(
                "lifted GHD failed validation:\n  " + "\n  ".join(problems)
            )
        return witness

    def verify_forward(self) -> Decomposition | None:
        """If φ is satisfiable, build and fully validate the Table 1 GHD.

        Returns the validated GHD (which is also an FHD of width 2), or
        None when φ is unsatisfiable.
        """
        assignment = self.formula.satisfying_assignment()
        if assignment is None:
            return None
        ghd = self.table1_ghd(assignment)
        problems = violations(self.hypergraph, ghd, kind="ghd", width=2)
        if problems:
            raise AssertionError(
                "Table 1 GHD failed validation:\n  " + "\n  ".join(problems)
            )
        return ghd


def build_reduction(formula: CNF) -> Reduction:
    """Construct the Theorem 3.2 reduction for a 3SAT formula."""
    return Reduction(formula)
