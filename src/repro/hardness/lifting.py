"""Width lifting: extending the k=2 hardness to arbitrary k (end of §3).

The paper lifts the NP-hardness of recognizing width 2 to width 2 + ℓ:

* integral ℓ >= 1: add a clique K_{2ℓ} of fresh vertices and connect each
  fresh vertex to every old vertex.  Every decomposition then has a node
  containing all 2ℓ fresh vertices (Lemma 2.8) and covering them alone
  costs ℓ (Lemma 2.3).
* rational ℓ = r/q: add r fresh vertices with the cyclic window edges
  ``{v_i, v_{i⊕1}, ..., v_{i⊕(q−1)}}`` and again connect fresh to old;
  the fractional cover of the fresh cycle alone costs exactly r/q.

Reproduction finding (experiment E17): **ghw shifts by exactly ℓ** on the
tested bases, but **fhw can shift by less** — a connector edge {v_i, w}
covers one fresh and one old vertex simultaneously, and odd cycles
through fresh and old vertices admit 1/2-weight covers that amortize the
fresh cost against the old bag (e.g. fhw(C4 + K_2) = 2.5 = fhw(C4) + 0.5).
The paper's closing remark states the lift without proof; a generic
fhw-shift statement would need a leak-free connection gadget.  See
EXPERIMENTS.md (E17) for the measured series.
"""

from __future__ import annotations

from ..hypergraph import Hypergraph

__all__ = ["lift_by_clique", "lift_by_cycle_windows"]


def lift_by_clique(hypergraph: Hypergraph, ell: int) -> Hypergraph:
    """Add K_{2ℓ} of fresh vertices, fully connected to the old vertices.

    ``fhw`` and ``ghw`` increase by exactly ℓ (verified in experiment
    E17 on small instances via the exact oracles).
    """
    if ell < 1:
        raise ValueError("ell must be >= 1")
    fresh = [f"lift{i}" for i in range(1, 2 * ell + 1)]
    extra: dict[str, frozenset] = {}
    for i in range(len(fresh)):
        for j in range(i + 1, len(fresh)):
            extra[f"liftclique_{i + 1}_{j + 1}"] = frozenset(
                [fresh[i], fresh[j]]
            )
    for i, v in enumerate(fresh, start=1):
        for w in sorted(hypergraph.vertices, key=str):
            extra[f"liftconn_{i}_{w}"] = frozenset([v, w])
    return hypergraph.with_edges(extra)


def lift_by_cycle_windows(hypergraph: Hypergraph, r: int, q: int) -> Hypergraph:
    """Add r fresh vertices with size-q cyclic windows (rational lift r/q).

    The fresh part alone has fractional cover number exactly r/q (each
    window covers q vertices; total needed weight r ⇒ weight r/q), so
    fhw increases by r/q on top of the old instance.  Requires
    ``r > q > 0`` as in the paper.
    """
    if not r > q > 0:
        raise ValueError("need r > q > 0 for a rational lift r/q")
    fresh = [f"lift{i}" for i in range(1, r + 1)]
    extra: dict[str, frozenset] = {}
    for i in range(r):
        window = frozenset(fresh[(i + d) % r] for d in range(q))
        extra[f"liftwin_{i + 1}"] = window
    for i, v in enumerate(fresh, start=1):
        for w in sorted(hypergraph.vertices, key=str):
            extra[f"liftconn_{i}_{w}"] = frozenset([v, w])
    return hypergraph.with_edges(extra)
