"""The Section 3 NP-hardness machinery: SAT substrate, the Lemma 3.1
gadget, the Theorem 3.2 reduction with LP certificates, and width lifting."""

from .cnf import CNF, dpll, paper_example_formula, random_3sat
from .gadgets import (
    GADGET_CORE,
    GADGET_RESTRICTED,
    gadget_edges,
    gadget_hypergraph,
    gadget_vertex_names,
)
from .lifting import lift_by_clique, lift_by_cycle_windows
from .reduction import Reduction, build_reduction

__all__ = [
    "CNF",
    "dpll",
    "random_3sat",
    "paper_example_formula",
    "gadget_edges",
    "gadget_hypergraph",
    "gadget_vertex_names",
    "GADGET_CORE",
    "GADGET_RESTRICTED",
    "Reduction",
    "build_reduction",
    "lift_by_clique",
    "lift_by_cycle_windows",
]
