"""3SAT substrate: CNF formulas, a DPLL solver, random instances.

The NP-hardness reduction of Theorem 3.2 maps 3SAT formulas to
hypergraphs; driving and verifying it needs a complete SAT solver (small
instances only — DPLL with unit propagation and pure-literal elimination
is ample here).

Literals are non-zero integers: ``+l`` is variable ``x_l``, ``-l`` its
negation (DIMACS convention).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["CNF", "dpll", "random_3sat", "paper_example_formula"]


@dataclass(frozen=True)
class CNF:
    """A CNF formula as a tuple of clauses (tuples of non-zero ints).

    ``num_variables`` is the largest variable index mentioned (variables
    are 1-based: x_1, ..., x_n).  The reduction requires exactly three
    literals per clause; :meth:`as_3sat` pads shorter clauses by
    repeating a literal (semantically neutral) and rejects longer ones.
    """

    clauses: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        cleaned = []
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause: formula is trivially unsat")
            if any(lit == 0 for lit in clause):
                raise ValueError("literal 0 is not allowed")
            cleaned.append(tuple(int(lit) for lit in clause))
        object.__setattr__(self, "clauses", tuple(cleaned))

    @classmethod
    def from_clauses(cls, clauses: Iterable[Iterable[int]]) -> "CNF":
        return cls(tuple(tuple(c) for c in clauses))

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF (``c`` comments, ``p cnf n m`` header, clauses
        terminated by 0; clauses may span lines)."""
        literals: list[int] = []
        clauses: list[tuple[int, ...]] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "p", "%")):
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    if literals:
                        clauses.append(tuple(literals))
                        literals = []
                else:
                    literals.append(lit)
        if literals:
            clauses.append(tuple(literals))
        if not clauses:
            raise ValueError("no clauses found in DIMACS input")
        return cls(tuple(clauses))

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF."""
        lines = [f"p cnf {self.num_variables} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"

    @property
    def num_variables(self) -> int:
        return max(abs(lit) for clause in self.clauses for lit in clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def as_3sat(self) -> "CNF":
        """This formula with every clause padded/verified to width 3."""
        out = []
        for clause in self.clauses:
            if len(clause) > 3:
                raise ValueError(f"clause {clause} has more than 3 literals")
            padded = list(clause)
            while len(padded) < 3:
                padded.append(clause[-1])
            out.append(tuple(padded))
        return CNF(tuple(out))

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """True iff the 1-indexed assignment satisfies every clause."""
        if len(assignment) < self.num_variables:
            raise ValueError("assignment too short")
        return all(
            any(
                assignment[abs(lit) - 1] == (lit > 0)
                for lit in clause
            )
            for clause in self.clauses
        )

    def satisfying_assignment(self) -> list[bool] | None:
        """A satisfying assignment via DPLL, or None if unsatisfiable."""
        return dpll(self)

    def is_satisfiable(self) -> bool:
        return self.satisfying_assignment() is not None


def dpll(formula: CNF) -> list[bool] | None:
    """DPLL with unit propagation and pure-literal elimination.

    Returns a total assignment (unconstrained variables default to True)
    or None.
    """
    n = formula.num_variables

    def solve(clauses: list[tuple[int, ...]], fixed: dict[int, bool]):
        while True:
            # Simplify under `fixed`.
            next_clauses: list[tuple[int, ...]] = []
            unit: int | None = None
            for clause in clauses:
                live: list[int] = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    if var in fixed:
                        if fixed[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        live.append(lit)
                if satisfied:
                    continue
                if not live:
                    return None  # conflict
                if len(live) == 1 and unit is None:
                    unit = live[0]
                next_clauses.append(tuple(live))
            clauses = next_clauses
            if unit is not None:
                fixed[abs(unit)] = unit > 0
                continue
            break
        if not clauses:
            return fixed
        # Pure literal elimination.
        polarity: dict[int, set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(abs(lit), set()).add(lit > 0)
        pures = [
            (var, sides.pop())
            for var, sides in polarity.items()
            if len(sides) == 1
        ]
        if pures:
            for var, value in pures:
                fixed[var] = value
            return solve(clauses, fixed)
        # Branch on the most frequent variable.
        counts: dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        var = max(sorted(counts), key=lambda v: counts[v])
        for value in (True, False):
            attempt = solve(clauses, {**fixed, var: value})
            if attempt is not None:
                return attempt
        return None

    fixed = solve(list(formula.clauses), {})
    if fixed is None:
        return None
    return [fixed.get(v, True) for v in range(1, n + 1)]


def random_3sat(
    n_vars: int, n_clauses: int, rng: random.Random | None = None
) -> CNF:
    """A uniform random 3SAT formula (distinct variables per clause)."""
    rng = rng or random.Random(0)
    if n_vars < 3:
        raise ValueError("need at least 3 variables for 3-literal clauses")
    clauses = []
    for _ in range(n_clauses):
        vs = rng.sample(range(1, n_vars + 1), 3)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in vs)
        )
    return CNF(tuple(clauses))


def paper_example_formula() -> CNF:
    """Example 3.3's formula: (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3)."""
    return CNF(((1, -2, 3), (-1, 2, -3)))
