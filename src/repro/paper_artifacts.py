"""Named artifacts from the paper's figures and examples (Section 4).

The hypergraph of Example 4.3 / Figure 4 is pinned down uniquely by the
constraints visible in Figures 5 and 6 and Examples 4.4/4.10/4.12 (an
exhaustive search over the hub-assignment variants admits exactly one
hypergraph with hw = 3, ghw = 2 for which both printed decompositions are
valid).  It is an 8-cycle v1..v8 with two central vertices v9, v10 hung
onto alternating cycle edges — the shape from [28], inspired by Adler [3].
"""

from __future__ import annotations

from .decomposition import Decomposition
from .hypergraph import Hypergraph

__all__ = [
    "example_4_3_hypergraph",
    "figure_5_hd",
    "figure_6a_ghd",
    "figure_6b_ghd",
]


def example_4_3_hypergraph() -> Hypergraph:
    """The hypergraph H₀ of Example 4.3 (Figure 4): hw = 3, ghw = 2.

    Its intersection width is 1 and its 3-multi-intersection width is 1;
    from c = 4 on, the c-multi-intersection width is 0 (as stated in
    Example 4.3).
    """
    return Hypergraph(
        {
            "e1": ["v1", "v2"],
            "e2": ["v2", "v3", "v9"],
            "e3": ["v3", "v4", "v10"],
            "e4": ["v4", "v5"],
            "e5": ["v5", "v6", "v9"],
            "e6": ["v6", "v7", "v10"],
            "e7": ["v7", "v8", "v9"],
            "e8": ["v8", "v1", "v10"],
        },
        name="Example4.3-H0",
    )


def figure_5_hd() -> Decomposition:
    """The width-3 HD of H₀ shown in Figure 5."""
    return Decomposition(
        [
            (
                "root",
                ["v1", "v2", "v3", "v6", "v7", "v9", "v10"],
                {"e1": 1.0, "e2": 1.0, "e6": 1.0},
            ),
            (
                "left",
                ["v3", "v4", "v5", "v6", "v9", "v10"],
                {"e3": 1.0, "e5": 1.0},
            ),
            (
                "right",
                ["v1", "v7", "v8", "v9", "v10"],
                {"e7": 1.0, "e8": 1.0},
            ),
        ],
        parent={"left": "root", "right": "root"},
        root="root",
    )


def figure_6a_ghd() -> Decomposition:
    """The width-2 GHD of Figure 6(a): valid, but *not* bag-maximal.

    Node u' = {v3,v6,v9,v10} can absorb v4 and v5 from B(λ_{u'}) without
    violating connectedness (Example 4.7); doing so makes it equal to its
    child, which :func:`repro.decomposition.prune_redundant_nodes` then
    removes — yielding Figure 6(b).
    """
    return Decomposition(
        [
            ("u0", ["v3", "v6", "v7", "v9", "v10"], {"e2": 1.0, "e6": 1.0}),
            ("u1", ["v3", "v7", "v8", "v9", "v10"], {"e3": 1.0, "e7": 1.0}),
            (
                "u2",
                ["v1", "v2", "v3", "v8", "v9", "v10"],
                {"e2": 1.0, "e8": 1.0},
            ),
            ("uprime", ["v3", "v6", "v9", "v10"], {"e3": 1.0, "e5": 1.0}),
            (
                "uprime_child",
                ["v3", "v4", "v5", "v6", "v9", "v10"],
                {"e3": 1.0, "e5": 1.0},
            ),
        ],
        parent={
            "u1": "u0",
            "u2": "u1",
            "uprime": "u0",
            "uprime_child": "uprime",
        },
        root="u0",
    )


def figure_6b_ghd() -> Decomposition:
    """The bag-maximal width-2 GHD of Figure 6(b).

    Node u0 has the special condition violation discussed in Example 4.4:
    e2 ∈ λ_{u0} while v2 ∈ e2 occurs below (in u2) but not in B_{u0}.
    """
    return Decomposition(
        [
            ("u0", ["v3", "v6", "v7", "v9", "v10"], {"e2": 1.0, "e6": 1.0}),
            ("u1", ["v3", "v7", "v8", "v9", "v10"], {"e3": 1.0, "e7": 1.0}),
            (
                "u2",
                ["v1", "v2", "v3", "v8", "v9", "v10"],
                {"e2": 1.0, "e8": 1.0},
            ),
            (
                "uprime",
                ["v3", "v4", "v5", "v6", "v9", "v10"],
                {"e3": 1.0, "e5": 1.0},
            ),
        ],
        parent={"u1": "u0", "u2": "u1", "uprime": "u0"},
        root="u0",
    )
