"""Integral edge covers ρ, transversals τ, and integrality gaps (§2.2, §6.2).

Minimum edge cover is set cover in disguise (universe = vertices to cover,
sets = edges), so it is NP-hard in general; the exact solver below is a
branch-and-bound with greedy upper bounds and LP-free lower bounds, fine
for the bag-sized instances produced by decompositions.

Section 6.2 uses the *integrality gaps*

    cigap(H) = ρ(H) / ρ*(H)      tigap(H) = τ(H) / τ*(H)

together with the Ding-Seymour-Winkler bound
``tigap(H) <= max(1, 2·vc(H)·log(11 τ*(H)))`` to approximate fhw by ghw
within O(log k) for bounded VC dimension.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..hypergraph import Hypergraph, Vertex, dual_hypergraph, vc_dimension
from .fractional import (
    FractionalCover,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
)

__all__ = [
    "exact_set_cover",
    "greedy_set_cover",
    "edge_cover_of",
    "greedy_edge_cover_of",
    "edge_cover_number",
    "transversality",
    "cover_integrality_gap",
    "transversal_integrality_gap",
    "dsw_gap_bound",
]


def exact_set_cover(
    universe: frozenset, sets: dict[str, frozenset], limit: int | None = None
) -> list[str] | None:
    """A minimum-cardinality set cover of ``universe``, or None.

    Branch and bound: branch on an uncovered element with the fewest
    candidate sets (fail-first), order candidates by coverage, prune with
    a simple counting lower bound.  ``limit`` aborts branches that exceed
    a target size (used by the width checks: "is there a cover of size
    <= k?").  Returns None when no cover exists within the limit (or at
    all, if some element is in no set).
    """
    relevant = {name: s & universe for name, s in sets.items() if s & universe}
    best: list[str] | None = None
    best_size = (limit + 1) if limit is not None else (len(relevant) + 1)

    greedy = greedy_set_cover(universe, relevant)
    if greedy is not None and len(greedy) < best_size:
        best, best_size = greedy, len(greedy)

    max_gain = max((len(s) for s in relevant.values()), default=0)

    def search(uncovered: frozenset, chosen: list[str], used: set[str]) -> None:
        nonlocal best, best_size
        if not uncovered:
            if len(chosen) < best_size:
                best, best_size = list(chosen), len(chosen)
            return
        # Counting lower bound: each further set covers <= max_gain elems.
        if max_gain and len(chosen) + math.ceil(len(uncovered) / max_gain) >= best_size:
            return
        # Fail-first: pick the uncovered element with fewest candidates.
        pivot: Vertex | None = None
        pivot_candidates: list[str] = []
        for v in uncovered:
            candidates = [
                name for name, s in relevant.items() if v in s and name not in used
            ]
            if not candidates:
                return  # dead end: v can no longer be covered
            if pivot is None or len(candidates) < len(pivot_candidates):
                pivot, pivot_candidates = v, candidates
                if len(candidates) == 1:
                    break
        pivot_candidates.sort(key=lambda n: -len(relevant[n] & uncovered))
        for name in pivot_candidates:
            chosen.append(name)
            used.add(name)
            search(uncovered - relevant[name], chosen, used)
            chosen.pop()
            used.remove(name)

    search(universe, [], set())
    if best is None:
        return None
    if limit is not None and len(best) > limit:
        return None
    return sorted(best)


def greedy_set_cover(
    universe: frozenset, sets: dict[str, frozenset]
) -> list[str] | None:
    """The classic ln(n)-approximate greedy set cover, or None if some
    element is uncoverable.  Deterministic (ties by name)."""
    uncovered = set(universe)
    chosen: list[str] = []
    relevant = {name: s & universe for name, s in sets.items()}
    while uncovered:
        if not relevant:
            return None
        name = max(
            sorted(relevant),
            key=lambda n: len(relevant[n] & uncovered),
        )
        gained = relevant[name] & uncovered
        if not gained:
            return None
        chosen.append(name)
        uncovered -= gained
    return chosen


def edge_cover_of(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    limit: int | None = None,
) -> FractionalCover | None:
    """A minimum integral edge cover (λ) of ``vertex_set`` as a 0/1 cover."""
    universe = frozenset(vertex_set)
    chosen = exact_set_cover(universe, hypergraph.edges, limit=limit)
    if chosen is None:
        return None
    return FractionalCover({name: 1.0 for name in chosen})


def greedy_edge_cover_of(
    hypergraph: Hypergraph, vertex_set: Iterable[Vertex]
) -> FractionalCover | None:
    """A greedy (ln-approximate) integral edge cover of ``vertex_set``.

    This is the integralization step of Theorem 6.23: replacing each γ_u
    by a greedy λ_u loses at most a cigap factor, which bounded VC
    dimension keeps at O(log ρ*).
    """
    chosen = greedy_set_cover(frozenset(vertex_set), hypergraph.edges)
    if chosen is None:
        return None
    return FractionalCover({name: 1.0 for name in chosen})


def edge_cover_number(hypergraph: Hypergraph) -> int:
    """``ρ(H)``: the (integral) edge cover number."""
    isolated = hypergraph.isolated_vertices()
    if isolated:
        raise ValueError(
            f"ρ undefined: isolated vertices {sorted(map(str, isolated))}"
        )
    cover = exact_set_cover(hypergraph.vertices, hypergraph.edges)
    assert cover is not None
    return len(cover)


def transversality(hypergraph: Hypergraph) -> int:
    """``τ(H)``: minimum size of a hitting set (Definition 6.22).

    Solved as set cover on the dual: choosing vertex v covers the edges
    containing v.
    """
    universe = frozenset(hypergraph.edge_names)
    sets = {
        f"v:{v}": frozenset(hypergraph.edges_of(v))
        for v in sorted(hypergraph.vertices, key=str)
    }
    chosen = exact_set_cover(universe, sets)
    if chosen is None:
        raise ValueError("τ undefined: hypergraph has an empty edge")
    return len(chosen)


def cover_integrality_gap(hypergraph: Hypergraph) -> float:
    """``cigap(H) = ρ(H)/ρ*(H)`` (Section 6.2)."""
    return edge_cover_number(hypergraph) / fractional_edge_cover_number(hypergraph)


def transversal_integrality_gap(hypergraph: Hypergraph) -> float:
    """``tigap(H) = τ(H)/τ*(H)`` (Section 6.2)."""
    return transversality(hypergraph) / fractional_vertex_cover_number(hypergraph)


def dsw_gap_bound(hypergraph: Hypergraph) -> float:
    """The Ding-Seymour-Winkler style bound used in Theorem 6.23:

        cigap(H) <= max(1, 2^{vc(H^d)} log(11 τ*(H^d)))
                 <= max(1, 2^{vc(H)+2} log(11 ρ*(H)))

    computed with the *actual* dual VC dimension when feasible (tighter),
    falling back to the ``vc(H)+2`` bound of Assouad.  Logs are base 2 to
    match the combinatorics literature the paper cites.
    """
    rho_star = fractional_edge_cover_number(hypergraph)
    try:
        vc_dual = vc_dimension(dual_hypergraph(hypergraph))
    except ValueError:
        vc_dual = vc_dimension(hypergraph) + 2
    return max(1.0, (2.0 * vc_dual) * math.log2(11.0 * rho_star))
