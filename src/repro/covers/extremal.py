"""Extremal values of linear objectives over bounded-weight covers.

The "only if" direction of Theorem 3.2 repeatedly argues about *all*
fractional covers of weight <= 2 of some vertex set: Lemma 3.5 says
complementary edges must carry equal weight, Lemma 3.6 says the support
must live on specific edge pairs, and Claims D-H say certain vertex sets
cannot be covered at all within weight 2.

All of these are linear statements, so each is certified by one or two
LPs over the polytope

    P = { γ >= 0 : γ covers the vertex set, weight(γ) <= budget }.

:func:`extremal_cover_value` maximizes/minimizes an arbitrary linear
objective over P; the certificate helpers phrase the paper's lemmas as
extremal queries (e.g. "max γ(e) over P is 0" = support confinement).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..hypergraph import Hypergraph, Vertex
from .linear_program import EPS, HAVE_SCIPY

__all__ = [
    "extremal_cover_value",
    "max_edge_weight_in_cover",
    "support_confined",
    "max_weight_difference",
]


def extremal_cover_value(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    budget: float,
    objective: Mapping[str, float],
    maximize: bool = True,
) -> float | None:
    """Max (or min) of ``sum objective[e]·γ(e)`` over weight-``budget``
    fractional covers of ``vertex_set``.

    Returns ``None`` when the polytope is empty, i.e. the vertex set has
    no fractional cover of weight <= budget at all — which is itself the
    certificate used by Claims D-H ("S ∪ {z1,z2,a1,a'1} cannot be covered
    with weight <= 2").

    Unlike the minimizing cover LPs (which fall back to the pure-Python
    simplex), these extremal queries — arbitrary objectives over a
    budget-bounded polytope — require scipy.
    """
    if not HAVE_SCIPY:  # pragma: no cover - exercised only on slim installs
        raise ImportError(
            "extremal cover certificates require scipy; "
            "install scipy or skip the hardness-certificate paths"
        )
    import numpy as np
    from scipy.optimize import linprog

    targets = sorted(frozenset(vertex_set), key=str)
    names = sorted(hypergraph.edge_names)
    index = {e: i for i, e in enumerate(names)}
    unknown = [e for e in objective if e not in index]
    if unknown:
        raise KeyError(f"objective mentions unknown edges: {unknown}")

    n = len(names)
    c = np.zeros(n)
    for e, coef in objective.items():
        c[index[e]] = -coef if maximize else coef

    rows = len(targets) + 1
    a_ub = np.zeros((rows, n))
    b_ub = np.zeros(rows)
    for r, v in enumerate(targets):
        touching = hypergraph.edges_of(v)
        if not touching:
            return None
        for e in touching:
            a_ub[r, index[e]] = -1.0
        b_ub[r] = -1.0
    a_ub[-1, :] = 1.0  # total weight <= budget
    b_ub[-1] = budget

    # Weight functions have range [0, 1] (Section 2.2); the upper bound
    # matters here because, unlike the minimizing cover LPs, a maximizing
    # objective would otherwise happily exceed 1 within the budget.
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * n, method="highs"
    )
    if not result.success:
        return None
    value = float(result.fun)
    return -value if maximize else value


def max_edge_weight_in_cover(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    budget: float,
    edge_name: str,
) -> float | None:
    """Max weight edge ``edge_name`` can carry in any budget-bounded cover."""
    return extremal_cover_value(
        hypergraph, vertex_set, budget, {edge_name: 1.0}, maximize=True
    )


def support_confined(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    budget: float,
    allowed_edges: Iterable[str],
    tol: float = 1e-6,
) -> bool:
    """True iff *every* cover of ``vertex_set`` within ``budget`` puts zero
    weight outside ``allowed_edges``.

    This is the computational content of the support-confinement steps in
    Lemma 3.1 ("only edges of E_A ∪ {{b1,b2}} may carry weight") and
    Lemma 3.6.  Certified by maximizing the total weight outside the
    allowed set: confinement holds iff that maximum is 0.
    """
    allowed = frozenset(allowed_edges)
    outside = {
        e: 1.0 for e in hypergraph.edge_names if e not in allowed
    }
    if not outside:
        return True
    value = extremal_cover_value(
        hypergraph, vertex_set, budget, outside, maximize=True
    )
    if value is None:
        return True  # empty polytope: vacuously confined
    return value <= tol


def max_weight_difference(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    budget: float,
    edge_a: str,
    edge_b: str,
) -> float | None:
    """Max of ``|γ(a) − γ(b)|`` over budget-bounded covers of the set.

    Lemma 3.5 asserts this is 0 for complementary edge pairs at nodes
    covering ``S ∪ {z1, z2}`` with weight <= 2.
    """
    up = extremal_cover_value(
        hypergraph, vertex_set, budget, {edge_a: 1.0, edge_b: -1.0}, True
    )
    down = extremal_cover_value(
        hypergraph, vertex_set, budget, {edge_a: -1.0, edge_b: 1.0}, True
    )
    if up is None or down is None:
        return None
    return max(up, down, 0.0)
