"""Fractional edge covers ρ* and fractional transversals τ* (Section 2.2).

An (edge-weight) function ``γ : E(H) -> [0,1]`` covers the vertex set

    B(γ) = { v : sum of γ(e) over edges e containing v  >= 1 }.

``ρ*(H)`` is the minimum weight of a γ with ``B(γ) = V(H)``; it is the LP
relaxation of the edge cover ILP and is computable in polynomial time.
By duality, ``ρ*(H) = τ*(H^d)`` (fractional transversality of the dual),
which Section 5 exploits to bound cover supports via Füredi's theorem.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..hypergraph import Hypergraph, Vertex, reduce_hypergraph
from .linear_program import EPS, solve_covering_lp

__all__ = [
    "FractionalCover",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "fractional_cover_of",
    "solve_fractional_cover",
    "covered_vertices",
    "cover_weight",
    "fractional_vertex_cover_number",
    "fractional_transversality",
    "minimal_support_cover",
    "cover_feasible_within",
]


@dataclass(frozen=True)
class FractionalCover:
    """A fractional edge cover: edge-name -> weight, zero weights omitted.

    The object is hypergraph-agnostic; pair it with the hypergraph it was
    computed for to interpret it (see :func:`covered_vertices`).
    """

    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned = {e: float(w) for e, w in self.weights.items() if w > EPS}
        object.__setattr__(self, "weights", cleaned)

    @property
    def weight(self) -> float:
        """Total weight ``sum_e γ(e)`` of the cover."""
        return sum(self.weights.values())

    @property
    def support(self) -> frozenset:
        """``supp(γ)``: edges with strictly positive weight."""
        return frozenset(self.weights)

    def __getitem__(self, edge_name: str) -> float:
        return self.weights.get(edge_name, 0.0)

    def is_integral(self, tol: float = EPS) -> bool:
        """True iff every weight is within ``tol`` of 0 or 1 (a λ function)."""
        return all(
            abs(w) <= tol or abs(w - 1.0) <= tol for w in self.weights.values()
        )

    def restricted(self, edge_names: Iterable[str]) -> "FractionalCover":
        """``γ|_S``: the restriction of γ to the given edges (Section 6.1)."""
        keep = set(edge_names)
        return FractionalCover(
            {e: w for e, w in self.weights.items() if e in keep}
        )

    def scaled_to_integral_part(self) -> "FractionalCover":
        """``γ|_S`` for ``S = {e : γ(e) = 1}`` — the integral part."""
        return FractionalCover(
            {e: w for e, w in self.weights.items() if abs(w - 1.0) <= EPS}
        )


def covered_vertices(
    hypergraph: Hypergraph, cover: FractionalCover | Mapping[str, float]
) -> frozenset:
    """``B(γ)``: vertices receiving total weight >= 1 (up to EPS)."""
    weights = cover.weights if isinstance(cover, FractionalCover) else cover
    totals: dict[Vertex, float] = {}
    for edge_name, w in weights.items():
        for v in hypergraph.edge(edge_name):
            totals[v] = totals.get(v, 0.0) + w
    return frozenset(v for v, t in totals.items() if t >= 1.0 - EPS)


def cover_weight(cover: FractionalCover | Mapping[str, float]) -> float:
    """Total weight of a cover given as object or plain mapping."""
    if isinstance(cover, FractionalCover):
        return cover.weight
    return sum(cover.values())


def solve_fractional_cover(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    allowed_edges: Iterable[str] | None = None,
    solver=None,
    cap: float | None = None,
) -> FractionalCover | None:
    """The shared cover-LP pipeline: build membership, solve, extract.

    One canonical implementation of "optimal fractional cover of a bag"
    — deterministic edge/vertex ordering, EPS weight filtering — shared
    by :func:`fractional_cover_of` and the engine's ``CoverOracle`` so
    the two can never diverge.  ``solver`` is any callable with the
    :func:`~repro.covers.linear_program.solve_covering_lp` signature
    (defaults to it); ``cap`` bounds every per-edge weight (used for
    purely fractional covers).
    """
    targets = sorted(frozenset(vertex_set), key=str)
    names = sorted(allowed_edges) if allowed_edges is not None else sorted(
        hypergraph.edge_names
    )
    index = {e: i for i, e in enumerate(names)}
    membership = [
        [index[e] for e in hypergraph.edges_of(v) if e in index]
        for v in targets
    ]
    solve = solve_covering_lp if solver is None else solver
    result = solve(
        membership,
        n_vars=len(names),
        upper_bounds=None if cap is None else [cap] * len(names),
    )
    if not result.feasible:
        return None
    return FractionalCover(
        {names[i]: w for i, w in enumerate(result.weights) if w > EPS}
    )


def fractional_cover_of(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    allowed_edges: Iterable[str] | None = None,
) -> FractionalCover | None:
    """An optimal fractional cover of ``vertex_set`` by edges of H.

    Each vertex in the set must receive total weight >= 1 from the edges
    (edges contribute with their *full* vertex sets, i.e. this covers a
    bag of a decomposition, condition (3')).  Returns ``None`` when some
    vertex lies in no allowed edge.
    """
    return solve_fractional_cover(hypergraph, vertex_set, allowed_edges)


def fractional_edge_cover(hypergraph: Hypergraph) -> FractionalCover:
    """An optimal fractional edge cover of all of ``V(H)``.

    Raises ``ValueError`` for hypergraphs with isolated vertices, where
    ρ* is undefined (assumption (1) of Section 5).
    """
    isolated = hypergraph.isolated_vertices()
    if isolated:
        raise ValueError(
            f"ρ* undefined: isolated vertices {sorted(map(str, isolated))}"
        )
    cover = fractional_cover_of(hypergraph, hypergraph.vertices)
    assert cover is not None  # no isolated vertices => feasible
    return cover


def fractional_edge_cover_number(hypergraph: Hypergraph) -> float:
    """``ρ*(H)``: the fractional edge cover number."""
    return fractional_edge_cover(hypergraph).weight


def fractional_vertex_cover_number(hypergraph: Hypergraph) -> float:
    """``τ*(H)``: minimum weight of a fractional vertex cover (Def. 5.3).

    A vertex-weight function w is a fractional vertex cover if every edge
    receives total weight >= 1 from its vertices.
    """
    if not hypergraph.num_edges:
        return 0.0
    vertices = sorted(hypergraph.vertices, key=str)
    index = {v: i for i, v in enumerate(vertices)}
    membership = [
        [index[v] for v in hypergraph.edge(e)] for e in hypergraph.edge_names
    ]
    result = solve_covering_lp(membership, n_vars=len(vertices))
    assert result.optimal is not None  # edges are non-empty => feasible
    return result.optimal


#: τ* is the fractional transversality (Definition 6.22) — same LP.
fractional_transversality = fractional_vertex_cover_number


def minimal_support_cover(
    hypergraph: Hypergraph, vertex_set: Iterable[Vertex]
) -> FractionalCover | None:
    """An optimal fractional cover of ``vertex_set`` with small support.

    Implements the originator construction of Lemma 5.6: build the induced
    subhypergraph on the target set, *reduce* it (fuse equal-type vertices,
    merge duplicate edges), solve the LP there — by Corollary 5.5 an
    optimal basic solution has support <= d·ρ* for degree-d hypergraphs —
    and push each reduced edge's weight back to a single originator edge
    of H.
    """
    targets = frozenset(vertex_set)
    if not targets:
        return FractionalCover({})
    sub = hypergraph.induced(targets)
    if sub.vertices != targets:
        return None  # some target vertex lies in no edge
    reduced, _vmap, _emap = reduce_hypergraph(sub)
    reduced_cover = fractional_cover_of(reduced, reduced.vertices)
    if reduced_cover is None:
        return None
    # Each reduced edge content corresponds to >= 1 originator in H whose
    # intersection with the targets equals it; pick one deterministically.
    weights: dict[str, float] = {}
    for reduced_name, w in reduced_cover.weights.items():
        content = reduced.edge(reduced_name)
        originators = sorted(
            e for e in hypergraph.edge_names
            if hypergraph.edge(e) & targets >= content
        )
        assert originators, "reduced edge must have an originator"
        chosen = originators[0]
        weights[chosen] = weights.get(chosen, 0.0) + w
    return FractionalCover(weights)


def cover_feasible_within(
    hypergraph: Hypergraph,
    vertex_set: Iterable[Vertex],
    budget: float,
    allowed_edges: Iterable[str] | None = None,
) -> bool:
    """True iff ``vertex_set`` admits a fractional cover of weight <= budget.

    The workhorse of the hardness certificates (Lemmas 3.5/3.6: certain
    vertex sets need weight > 2) and of the FHD search (condition 2.a of
    Algorithm 3).
    """
    cover = fractional_cover_of(hypergraph, vertex_set, allowed_edges)
    if cover is None:
        return False
    return cover.weight <= budget + EPS
