"""Dependency-free covering-LP solver: dense two-phase tableau simplex.

Solves the same problem shape as :func:`repro.covers.linear_program.
solve_covering_lp` — ``min c·x  s.t.  sum_{j in row} x_j >= 1,
0 <= x <= ub`` — without scipy/numpy.  Covering instances in this
library are bag-sized (tens of variables), so a textbook dense tableau
is plenty.  It serves two roles:

* the fallback used by the covers layer when scipy is not installed;
* the ``"purepython"`` engine backend, giving an independent solver to
  cross-check the scipy-HiGHS results against (see
  ``tests/test_engine.py``).

Structural variables come first, then one surplus per cover row and one
slack per upper-bound row; artificials complete the phase-1 basis for
the cover rows.  Bland's rule (lowest eligible index enters, lowest
basis index breaks ratio ties) guarantees termination.
"""

from __future__ import annotations

from .linear_program import CoveringLPResult

__all__ = ["simplex_covering_lp"]

#: Snap tolerance for solver artifacts, matching the scipy wrapper.
_SOLVER_TOL = 1e-7

_TOL = 1e-9


def _snap(value: float) -> float:
    if abs(value) < _SOLVER_TOL:
        return 0.0
    if abs(value - 1.0) < _SOLVER_TOL:
        return 1.0
    return float(value)


def simplex_covering_lp(
    membership: list[list[int]],
    n_vars: int,
    costs: list[float] | None = None,
    upper_bounds: list[float] | None = None,
) -> CoveringLPResult:
    """Solve one covering LP with the two-phase simplex (pure Python)."""
    if any(not row for row in membership):
        return CoveringLPResult(None, (0.0,) * n_vars, False)
    if not membership:
        return CoveringLPResult(0.0, (0.0,) * n_vars, True)

    cost_vec = [1.0] * n_vars if costs is None else [float(c) for c in costs]
    m_cover = len(membership)
    bound_rows = (
        []
        if upper_bounds is None
        else [(j, float(ub)) for j, ub in enumerate(upper_bounds)]
    )

    n_surplus = m_cover
    n_slack = len(bound_rows)
    n_art = m_cover
    n_total = n_vars + n_surplus + n_slack + n_art

    # Rows: [structural | surplus | slack | artificial | rhs]
    tableau: list[list[float]] = []
    basis: list[int] = []
    for i, row in enumerate(membership):
        coeffs = [0.0] * (n_total + 1)
        for j in set(row):
            coeffs[j] = 1.0
        coeffs[n_vars + i] = -1.0  # surplus: sum x - s = 1
        coeffs[n_vars + n_surplus + n_slack + i] = 1.0  # artificial
        coeffs[-1] = 1.0
        tableau.append(coeffs)
        basis.append(n_vars + n_surplus + n_slack + i)
    for r, (j, ub) in enumerate(bound_rows):
        coeffs = [0.0] * (n_total + 1)
        coeffs[j] = 1.0
        coeffs[n_vars + n_surplus + r] = 1.0  # slack: x + t = ub
        coeffs[-1] = max(ub, 0.0)
        tableau.append(coeffs)
        basis.append(n_vars + n_surplus + r)

    # Phase 1: minimize the sum of artificials.
    phase1_cost = [0.0] * (n_vars + n_surplus + n_slack) + [1.0] * n_art
    objective = _reduced_costs(tableau, basis, phase1_cost, n_total)
    _iterate(tableau, basis, objective, n_total)
    if objective[-1] < -_TOL:  # phase-1 optimum > 0
        return CoveringLPResult(None, (0.0,) * n_vars, False)

    _evict_artificials(tableau, basis, n_vars + n_surplus + n_slack)

    # Phase 2: minimize the true objective over non-artificial columns.
    phase2_cost = cost_vec + [0.0] * (n_surplus + n_slack + n_art)
    objective = _reduced_costs(tableau, basis, phase2_cost, n_total)
    _iterate(tableau, basis, objective, n_vars + n_surplus + n_slack)

    values = [0.0] * n_total
    for r, bv in enumerate(basis):
        values[bv] = tableau[r][-1]
    weights = tuple(_snap(values[j]) for j in range(n_vars))
    optimal = sum(c * w for c, w in zip(cost_vec, weights))
    return CoveringLPResult(float(optimal), weights, True)


def _reduced_costs(
    tableau: list[list[float]],
    basis: list[int],
    cost: list[float],
    n_total: int,
) -> list[float]:
    objective = list(cost) + [0.0]
    for r, bv in enumerate(basis):
        cb = objective[bv]
        if abs(cb) > _TOL:
            row = tableau[r]
            for j in range(n_total + 1):
                objective[j] -= cb * row[j]
    return objective


def _iterate(
    tableau: list[list[float]],
    basis: list[int],
    objective: list[float],
    n_enter: int,
) -> None:
    """Pivot to optimality; only columns < n_enter may enter."""
    while True:
        enter = -1
        for j in range(n_enter):  # Bland: lowest eligible index
            if objective[j] < -_TOL:
                enter = j
                break
        if enter < 0:
            return
        leave = -1
        best_ratio = float("inf")
        for r, row in enumerate(tableau):
            if row[enter] > _TOL:
                ratio = row[-1] / row[enter]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leave < 0 or basis[r] < basis[leave])
                ):
                    best_ratio = ratio
                    leave = r
        if leave < 0:  # unbounded: cannot happen for covering LPs
            return
        _pivot(tableau, basis, objective, leave, enter)


def _pivot(
    tableau: list[list[float]],
    basis: list[int],
    objective: list[float],
    row: int,
    col: int,
) -> None:
    pivot = tableau[row][col]
    tableau[row] = [v / pivot for v in tableau[row]]
    pivot_row = tableau[row]
    for r, vals in enumerate(tableau):
        if r != row and abs(vals[col]) > _TOL:
            factor = vals[col]
            tableau[r] = [v - factor * pv for v, pv in zip(vals, pivot_row)]
    factor = objective[col]
    if abs(factor) > _TOL:
        for j in range(len(objective)):
            objective[j] -= factor * pivot_row[j]
    basis[row] = col


def _evict_artificials(
    tableau: list[list[float]], basis: list[int], n_struct: int
) -> None:
    """Pivot zero-valued artificials out of the basis where possible."""
    for r, bv in enumerate(basis):
        if bv < n_struct:
            continue
        for j in range(n_struct):
            if abs(tableau[r][j]) > _TOL:
                pivot = tableau[r][j]
                tableau[r] = [v / pivot for v in tableau[r]]
                pivot_row = tableau[r]
                for rr, vals in enumerate(tableau):
                    if rr != r and abs(vals[j]) > _TOL:
                        factor = vals[j]
                        tableau[rr] = [
                            v - factor * pv for v, pv in zip(vals, pivot_row)
                        ]
                basis[r] = j
                break
