"""Thin wrapper around ``scipy.optimize.linprog`` for covering LPs.

All covering problems in the paper (fractional edge covers ρ*, fractional
vertex covers / transversals τ*) have the shape

    minimize   c·x
    subject to A x >= 1   (one constraint per element to cover)
               x >= 0

This module centralizes the solver call, tolerance handling and solution
extraction so the cover modules stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # gated: the engine's pure-Python backend works without scipy
    import numpy as np
    from scipy.optimize import linprog

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only on slim installs
    np = None
    linprog = None
    HAVE_SCIPY = False

__all__ = [
    "EPS",
    "HAVE_SCIPY",
    "CoveringLPResult",
    "solve_covering_lp",
    "leq",
    "geq",
    "close",
]

#: Comparison tolerance for LP-derived weights throughout the library.
EPS = 1e-9

#: Looser tolerance for HiGHS primal feasibility artifacts.
_SOLVER_TOL = 1e-7


def leq(a: float, b: float, tol: float = EPS) -> bool:
    """``a <= b`` up to tolerance."""
    return a <= b + tol


def geq(a: float, b: float, tol: float = EPS) -> bool:
    """``a >= b`` up to tolerance."""
    return a + tol >= b


def close(a: float, b: float, tol: float = EPS) -> bool:
    """``a == b`` up to tolerance."""
    return abs(a - b) <= tol


@dataclass(frozen=True)
class CoveringLPResult:
    """Outcome of a covering LP.

    Attributes
    ----------
    optimal:
        The minimum total weight, or ``None`` when infeasible.
    weights:
        Per-variable weights (indexed like the input columns), cleaned so
        that values within ``EPS`` of 0 or 1 are snapped.
    feasible:
        Whether the LP admits any solution at all (it is infeasible iff
        some element lies in no set).
    """

    optimal: float | None
    weights: tuple[float, ...]
    feasible: bool

    @property
    def support(self) -> tuple[int, ...]:
        """Indices of variables with strictly positive weight."""
        return tuple(i for i, w in enumerate(self.weights) if w > EPS)


def solve_covering_lp(
    membership: list[list[int]],
    n_vars: int,
    costs: list[float] | None = None,
    upper_bounds: list[float] | None = None,
) -> CoveringLPResult:
    """Solve ``min c·x  s.t.  sum_{j in row} x_j >= 1, 0 <= x``.

    Parameters
    ----------
    membership:
        One row per element to cover; each row lists the variable indices
        whose sets contain that element.
    n_vars:
        Total number of variables (sets).
    costs:
        Per-variable objective coefficients; defaults to all ones.
    upper_bounds:
        Optional per-variable upper bounds.  The paper notes weights never
        need to exceed 1 for minimum covers, but bounds are occasionally
        useful for constrained checks (e.g. fixing integral parts).
    """
    if any(not row for row in membership):
        return CoveringLPResult(None, (0.0,) * n_vars, False)
    if not membership:
        return CoveringLPResult(0.0, (0.0,) * n_vars, True)
    if not HAVE_SCIPY:  # pragma: no cover - exercised only on slim installs
        from .simplex import simplex_covering_lp

        return simplex_covering_lp(
            membership, n_vars, costs=costs, upper_bounds=upper_bounds
        )

    c = np.ones(n_vars) if costs is None else np.asarray(costs, dtype=float)
    # Build the sparse-ish constraint matrix densely; instances here are
    # small (bags of decompositions), so dense is simplest and fast.
    a_ub = np.zeros((len(membership), n_vars))
    for row_idx, row in enumerate(membership):
        for var_idx in row:
            a_ub[row_idx, var_idx] = -1.0  # linprog uses A_ub x <= b_ub
    b_ub = -np.ones(len(membership))
    if upper_bounds is None:
        bounds = [(0, None)] * n_vars
    else:
        bounds = [(0, ub) for ub in upper_bounds]

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        return CoveringLPResult(None, (0.0,) * n_vars, False)

    weights = []
    for w in result.x:
        if abs(w) < _SOLVER_TOL:
            w = 0.0
        elif abs(w - 1.0) < _SOLVER_TOL:
            w = 1.0
        weights.append(float(w))
    return CoveringLPResult(float(result.fun), tuple(weights), True)
