"""repro — General and Fractional Hypertree Decompositions: Hard and Easy
Cases (Fischl, Gottlob, Pichler; PODS 2018).

A complete reproduction of the paper's systems:

* hypergraphs, [C]-components, duality, structural restrictions
  (BIP / BMIP / BDP / VC dimension)                     — :mod:`repro.hypergraph`
* (fractional) edge covers, transversals, LP certificates — :mod:`repro.covers`
* HD / GHD / FHD objects, validators, transformations,
  block stitching                                        — :mod:`repro.decomposition`
* Check(HD,k), Check(GHD,k), Check(FHD,k), exact oracles,
  the Section 6 approximation schemes                    — :mod:`repro.algorithms`
* the reduce → split → solve → stitch instance pipeline
  behind every width query (:class:`WidthSolver`), plus
  batched multi-instance serving (:func:`solve_many`)    — :mod:`repro.pipeline`
* a crash-tolerant persistent result store (settled
  verdicts, witnesses and oracle caches survive restarts) — :mod:`repro.store`
* the always-on ``repro serve`` daemon: HTTP front-end
  with admission control and request coalescing           — :mod:`repro.serve`
* a second exact engine: CNF-encoded width checks with a
  bundled CDCL core, raced against branch-and-bound in
  ``solver="portfolio"`` mode                            — :mod:`repro.sat`
* the Theorem 3.2 NP-hardness reduction + certificates   — :mod:`repro.hardness`
* conjunctive queries and CSPs (the applications)        — :mod:`repro.cqcsp`

Quickstart::

    from repro import Hypergraph, hypertree_width, fractional_hypertree_width

    h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    hw, hd = hypertree_width(h)            # 2 and a witness HD
    fhw, fhd = fractional_hypertree_width(h)   # 1.5 and a witness FHD
"""

from .algorithms import (
    FHWApproximationResult,
    check_fhd,
    check_ghd,
    check_hd,
    fhw_approximation,
    frac_decomp,
    fractional_hypertree_decomposition_bounded_degree,
    fractional_hypertree_width,
    fractional_hypertree_width_exact,
    generalized_hypertree_decomposition,
    generalized_hypertree_width,
    generalized_hypertree_width_exact,
    hypertree_decomposition,
    hypertree_width,
    integralize,
    treewidth_exact,
)
from .covers import (
    FractionalCover,
    edge_cover_number,
    fractional_edge_cover,
    fractional_edge_cover_number,
)
from .cqcsp import (
    CSP,
    ConjunctiveQuery,
    QueryPlanner,
    Relation,
    answer_query,
    parse_cq,
)
from .decomposition import Decomposition, is_fhd, is_ghd, is_hd, validate
from .hardness import CNF, build_reduction
from .hypergraph import (
    Hypergraph,
    degree,
    intersection_width,
    multi_intersection_width,
    vc_dimension,
)
from .paper_artifacts import (
    example_4_3_hypergraph,
    figure_5_hd,
    figure_6a_ghd,
    figure_6b_ghd,
)
from .pipeline import (
    BatchRequest,
    BatchResult,
    BatchScheduler,
    BatchStats,
    PipelineStats,
    WidthSolver,
    solve_many,
    solve_width,
)
from .store import ResultStore

#: Single source of truth for the package version: ``pyproject.toml``
#: reads this attribute at build time (``[tool.setuptools.dynamic]``)
#: and ``tests/test_docs.py`` pins the agreement, so the version can
#: never fork between the package, the build metadata and the docs.
__version__ = "1.7.0"

__all__ = [
    "__version__",
    "WidthSolver",
    "PipelineStats",
    "solve_width",
    "solve_many",
    "BatchRequest",
    "BatchResult",
    "BatchScheduler",
    "BatchStats",
    "ResultStore",
    "Hypergraph",
    "degree",
    "intersection_width",
    "multi_intersection_width",
    "vc_dimension",
    "FractionalCover",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "edge_cover_number",
    "Decomposition",
    "validate",
    "is_ghd",
    "is_hd",
    "is_fhd",
    "hypertree_decomposition",
    "hypertree_width",
    "check_hd",
    "generalized_hypertree_decomposition",
    "generalized_hypertree_width",
    "generalized_hypertree_width_exact",
    "check_ghd",
    "fractional_hypertree_decomposition_bounded_degree",
    "fractional_hypertree_width",
    "fractional_hypertree_width_exact",
    "check_fhd",
    "treewidth_exact",
    "frac_decomp",
    "fhw_approximation",
    "FHWApproximationResult",
    "integralize",
    "CNF",
    "build_reduction",
    "ConjunctiveQuery",
    "parse_cq",
    "Relation",
    "QueryPlanner",
    "answer_query",
    "CSP",
    "example_4_3_hypergraph",
    "figure_5_hd",
    "figure_6a_ghd",
    "figure_6b_ghd",
]
