"""The worker side of the remote executor: ``repro worker``.

A worker is the inverse of a server: it *dials back* to the driver's
:class:`~repro.dist.registry.WorkerRegistry` (``--connect HOST:PORT``),
announces its capacity in a ``hello`` frame, and then executes whatever
``task`` frames arrive on a local thread pool — each one the same plain
:func:`~repro.pipeline.solve.run_block_task` payload a thread or
process pool would run.  All scheduling intelligence (the settle
protocol, bounds seeding, store write-back, failure isolation) stays on
the driver; a worker is deliberately as dumb as a pool thread.

Lifecycle::

    connecting -> active -> (idle >= --idle-timeout) -> bye -> exit
                    |                                          ^
                    +-- driver shutdown / connection lost ------+

Cancellation mirrors the in-process pools: a ``cancel`` frame dequeues
the task if it has not started (acknowledged with a ``cancelled``
frame, exactly like ``Future.cancel`` succeeding), and otherwise sets
the task's cooperative abort event so an abortable engine (the SAT
twins) stops mid-solve — this is how the race-gating of portfolio mode
still kills queued twins across the wire.  Either way the driver has
already resolved its future; late results for cancelled tasks are
discarded on arrival.

Every task produces exactly one reply frame (``result``, ``error`` or
``cancelled``) unless the worker dies — the registry's invariant for
in-flight accounting and requeue-on-death.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..pipeline.solve import _ABORTABLE, run_block_task
from .protocol import ProtocolError, recv_message, send_message

__all__ = ["WorkerClient", "spawn_worker"]


class _ActiveTask:
    """One accepted task: its pool future and optional abort event."""

    __slots__ = ("future", "abort")

    def __init__(self, future=None, abort=None):
        self.future = future
        self.abort = abort


class WorkerClient:
    """One worker process's connection to a driver registry.

    Parameters
    ----------
    host, port : str, int
        The driver registry's listening endpoint.
    jobs : int, optional
        Concurrent tasks this worker executes (default 1); announced
        in the ``hello`` frame so the registry never over-dispatches.
    idle_timeout : float or None, optional
        Seconds without any active or arriving task after which the
        worker says ``bye`` and exits cleanly (default 300; ``None``
        or 0 disables auto-shutdown).
    heartbeat_interval : float, optional
        Seconds between unsolicited heartbeat frames (default 2).
    connect_timeout : float, optional
        Seconds to keep redialing a refused/unreachable endpoint
        before giving up (default 10).  A worker often races its
        driver at startup; retrying inside this window makes the
        launch order irrelevant.
    runner : callable, optional
        The task entry point, ``runner(solver, hypergraph, params)``
        (default :func:`~repro.pipeline.solve.run_block_task`); tests
        substitute instrumented runners here.
    """

    def __init__(
        self,
        host: str,
        port: int,
        jobs: int = 1,
        idle_timeout: float | None = 300.0,
        heartbeat_interval: float = 2.0,
        connect_timeout: float = 10.0,
        runner=None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.jobs = max(1, int(jobs or 1))
        self.idle_timeout = idle_timeout or None
        self.heartbeat_interval = max(0.1, float(heartbeat_interval))
        self.connect_timeout = max(0.0, float(connect_timeout))
        self._runner = runner if runner is not None else run_block_task
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._active: dict[str, _ActiveTask] = {}
        self._executed = 0
        self._last_active = time.monotonic()
        self._stop = threading.Event()
        self._idle_exit = False

    # ------------------------------------------------------------------
    # Outbound frames (one lock: task threads + heartbeat + main loop)
    # ------------------------------------------------------------------
    def _send(self, message: dict) -> None:
        sock = self._sock
        if sock is None:
            return
        with self._lock:
            send_message(sock, message)

    def _send_heartbeat(self) -> None:
        self._send(
            {
                "type": "heartbeat",
                "in_flight": len(self._active),
                "executed": self._executed,
            }
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _execute(self, task_id: str, solver: str, hypergraph, params: dict):
        try:
            value = self._runner(solver, hypergraph, params)
            reply = {"type": "result", "task": task_id, "value": value}
        except BaseException as exc:  # one reply per task, whatever happens
            reply = {"type": "error", "task": task_id, "error": exc}
        with self._lock:
            self._active.pop(task_id, None)
            self._executed += 1
            self._last_active = time.monotonic()
        try:
            self._send(reply)
        except (ProtocolError, TypeError, AttributeError, ValueError):
            # The value or exception does not pickle: degrade to a
            # plain error the driver can always decode.
            fallback = reply.get("error", reply.get("value"))
            try:
                self._send(
                    {
                        "type": "error",
                        "task": task_id,
                        "error": RuntimeError(
                            f"unpicklable task outcome: "
                            f"{type(fallback).__name__}: {fallback!r:.200}"
                        ),
                    }
                )
            except OSError:
                pass
        except OSError:
            pass  # driver gone; the registry requeues on our death

    def _start_task(self, pool: ThreadPoolExecutor, message: dict) -> None:
        task_id = message.get("task")
        solver = message.get("solver")
        params = dict(message.get("params") or {})
        abort = None
        if solver in _ABORTABLE and "abort" not in params:
            abort = threading.Event()
            params["abort"] = abort
        state = _ActiveTask(abort=abort)
        # Register under the lock so the task thread's pop (which also
        # takes the lock) cannot run before registration completes.
        with self._lock:
            self._last_active = time.monotonic()
            self._active[task_id] = state
            state.future = pool.submit(
                self._execute, task_id, solver, message.get("hypergraph"), params
            )

    def _cancel_task(self, task_id: str) -> None:
        with self._lock:
            state = self._active.get(task_id)
            if state is None:
                return  # already finished; the reply frame is in flight
            if state.future is not None and state.future.cancel():
                # Dequeued before starting: acknowledge so the registry
                # frees the slot (a cancelled task sends no result).
                self._active.pop(task_id, None)
                self._last_active = time.monotonic()
                dequeued = True
            else:
                dequeued = False
                if state.abort is not None:
                    state.abort.set()  # running engine stops cooperatively
        if dequeued:
            try:
                self._send({"type": "cancelled", "task": task_id})
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Heartbeats + idle auto-shutdown
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                idle_for = time.monotonic() - self._last_active
                busy = bool(self._active)
            if self.idle_timeout and not busy and idle_for >= self.idle_timeout:
                self._idle_exit = True
                try:
                    self._send({"type": "bye"})
                except OSError:
                    pass
                sock = self._sock
                if sock is not None:
                    try:  # unblocks the main recv loop
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                return
            try:
                self._send_heartbeat()
            except OSError:
                return

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket | None:
        """Connect, redialing refused endpoints for ``connect_timeout``."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            remaining = max(0.5, deadline - time.monotonic())
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=remaining
                )
            except OSError as exc:
                if time.monotonic() >= deadline:
                    print(
                        f"repro worker: cannot connect to "
                        f"{self.host}:{self.port}: {exc}",
                        file=sys.stderr,
                    )
                    return None
                time.sleep(min(0.5, max(0.05, deadline - time.monotonic())))

    def run(self) -> int:
        """Connect, serve tasks until shutdown or idle timeout; exit code."""
        sock = self._dial()
        if sock is None:
            return 1
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._last_active = time.monotonic()
        code = 0
        pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-worker"
        )
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="repro-worker-heartbeat", daemon=True
        )
        try:
            self._send(
                {"type": "hello", "jobs": self.jobs, "pid": os.getpid()}
            )
            heartbeat.start()
            while True:
                message = recv_message(sock)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "task":
                    self._start_task(pool, message)
                elif kind == "cancel":
                    self._cancel_task(message.get("task"))
                elif kind == "ping":
                    self._send_heartbeat()
                elif kind == "shutdown":
                    break
                # unknown frame types are ignored (forward compatibility)
        except ProtocolError:
            code = 0 if self._idle_exit else 1
        except OSError:
            code = 0 if self._idle_exit else 0  # driver went away: clean exit
        finally:
            self._stop.set()
            pool.shutdown(wait=False, cancel_futures=True)
            try:
                sock.close()
            except OSError:
                pass
            self._sock = None
        return code


def spawn_worker(
    address: str,
    jobs: int = 1,
    idle_timeout: float | None = 60.0,
    bootstrap: str | None = None,
):
    """Start a loopback worker subprocess dialing ``address``.

    Convenience for tests and benchmarks: runs ``repro worker
    --connect address`` under the current interpreter with ``src`` on
    ``PYTHONPATH``, output discarded.  ``bootstrap`` replaces the CLI
    entry with custom code (it receives ``HOST``, ``PORT``, ``JOBS``
    and ``IDLE`` as pre-bound variables) — fault-injection tests use
    this to wrap the task runner.  Returns the ``subprocess.Popen``.
    """
    import subprocess

    from .protocol import parse_endpoint

    host, port = parse_endpoint(address)
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(os.environ)
    path = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not path else src_dir + os.pathsep + path
    if bootstrap is None:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            address,
            "--jobs",
            str(jobs),
            "--idle-timeout",
            str(idle_timeout if idle_timeout is not None else 0),
        ]
    else:
        prelude = (
            f"HOST = {host!r}\nPORT = {port!r}\nJOBS = {int(jobs)!r}\n"
            f"IDLE = {idle_timeout!r}\n"
        )
        argv = [sys.executable, "-c", prelude + bootstrap]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
