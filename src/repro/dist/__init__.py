"""Distributed block solve: a TCP worker fleet behind ``executor="remote"``.

The package splits the remote backend along its trust boundary:

* :mod:`repro.dist.protocol` — length-prefixed, CRC-checked pickle
  framing (the ``RPW1`` twin of the store log's ``RPS1`` discipline);
* :mod:`repro.dist.worker` — the ``repro worker`` process: dials back
  to the driver, runs :func:`~repro.pipeline.solve.run_block_task`
  payloads on a local pool, honors cooperative cancellation, and
  self-terminates after a configurable idle timeout;
* :mod:`repro.dist.registry` — the driver's fleet bookkeeping: accept
  loop, per-worker readers, health polling, least-loaded dispatch with
  per-worker in-flight accounting, requeue-on-death;
* :mod:`repro.dist.executor` — :class:`RemoteExecutor`, the
  ``concurrent.futures`` face the schedulers consume unchanged.

Every scheduler reaches the backend the same way:
``make_pool("remote", jobs)`` wraps the process-wide **default
registry** (created lazily on first use, listening on
``REPRO_WORKER_LISTEN`` or an ephemeral loopback port) in a fresh
:class:`RemoteExecutor`.  Long-lived owners — ``repro serve``, tests,
benchmarks — manage a registry explicitly via :func:`get_registry` /
:func:`set_registry` / :func:`close_registry` instead.
"""

from __future__ import annotations

import os
import threading

from .executor import RemoteExecutor
from .protocol import ProtocolError, parse_endpoint, recv_message, send_message
from .registry import WorkerConnection, WorkerRegistry
from .worker import WorkerClient, spawn_worker

__all__ = [
    "RemoteExecutor",
    "WorkerRegistry",
    "WorkerConnection",
    "WorkerClient",
    "spawn_worker",
    "ProtocolError",
    "send_message",
    "recv_message",
    "parse_endpoint",
    "get_registry",
    "set_registry",
    "close_registry",
]

#: Environment variable naming the default registry's listen endpoint.
LISTEN_ENV = "REPRO_WORKER_LISTEN"

_default_registry: WorkerRegistry | None = None
_registry_lock = threading.Lock()


def get_registry(listen: str | None = None) -> WorkerRegistry:
    """The process-wide default registry, created on first use.

    Parameters
    ----------
    listen : str, optional
        ``HOST:PORT`` to bind when the registry does not exist yet
        (default: ``$REPRO_WORKER_LISTEN``, else an ephemeral loopback
        port).  Ignored — with the existing endpoint kept — when a
        default registry is already running.
    """
    global _default_registry
    with _registry_lock:
        if _default_registry is None or _default_registry.closed:
            endpoint = listen or os.environ.get(LISTEN_ENV) or "127.0.0.1:0"
            host, port = parse_endpoint(endpoint)
            _default_registry = WorkerRegistry(host=host, port=port)
        return _default_registry


def set_registry(registry: WorkerRegistry | None) -> WorkerRegistry | None:
    """Install ``registry`` as the process default; the previous one.

    The previous registry is returned un-closed (tests restore it);
    pass None to clear, making the next :func:`get_registry` create a
    fresh one.
    """
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


def close_registry() -> None:
    """Close and clear the default registry, if any."""
    global _default_registry
    with _registry_lock:
        registry = _default_registry
        _default_registry = None
    if registry is not None:
        registry.close()
