"""A ``concurrent.futures`` executor backed by the worker fleet.

:class:`RemoteExecutor` implements exactly the surface the batch drive
loop consumes — ``submit`` / ``wait`` / ``cancel`` on plain
:class:`~concurrent.futures.Future` objects — so
:meth:`BatchScheduler._drive <repro.pipeline.batch.BatchScheduler>`,
:func:`~repro.pipeline.solve.iterative_width_search` and
:meth:`BlockScheduler.map <repro.pipeline.solve.BlockScheduler>` run on
it unchanged, selected by ``executor="remote"``.

Placement and failure semantics:

* ``run_block_task`` payloads queue on the driver and dispatch through
  :meth:`WorkerRegistry.dispatch <repro.dist.registry.WorkerRegistry>`
  (least-loaded worker with a free slot) as capacity allows; anything
  else ``submit`` receives runs on a local thread pool.
* A remote future never enters RUNNING — it resolves straight from
  PENDING — so ``Future.cancel()`` always succeeds before completion,
  exactly like cancelling a queued pool task.  The cancellation is
  then *forwarded*: a done-callback sends a cancel frame, which the
  worker answers by dequeuing the task or setting its cooperative
  abort event.  Late results for cancelled tasks are discarded.
* When a worker dies, the registry reports each of its in-flight
  tasks via :meth:`_task_lost`; the task requeues at the front and
  redispatches onto survivors (``requeued_tasks`` counts these).
* With **zero** registered workers, queued tasks drain to the local
  pool instead — ``executor="remote"`` degrades to roughly
  ``executor="thread"``, it never deadlocks.

The executor is a view onto a shared :class:`WorkerRegistry`:
``shutdown`` detaches from the registry and stops the local fallback
pool but leaves the registry (and its workers) running for the next
batch.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from concurrent.futures import Executor, Future, InvalidStateError

from ..pipeline.solve import run_block_task

__all__ = ["RemoteExecutor"]

_EXECUTOR_IDS = itertools.count(1)


class _RemoteTask:
    """One submitted ``run_block_task`` payload and its future."""

    __slots__ = ("task_id", "future", "args", "dispatched")

    def __init__(self, task_id: str, future: Future, args: tuple):
        self.task_id = task_id
        self.future = future
        self.args = args
        self.dispatched = False


class RemoteExecutor(Executor):
    """Run block tasks on a registry's worker fleet.

    Parameters
    ----------
    registry : WorkerRegistry
        The fleet to dispatch through (shared across executors; not
        closed by :meth:`shutdown`).
    jobs : int, optional
        Width of the local *fallback* thread pool used when no worker
        is registered (default 1).  Remote concurrency is bounded by
        the fleet's announced capacity, not by ``jobs``.

    Attributes
    ----------
    tasks_remote : int
        Tasks dispatched to workers (including re-dispatches).
    tasks_local : int
        Tasks that ran on the local fallback pool.
    requeued_tasks : int
        Tasks requeued because their worker died mid-flight.
    """

    def __init__(self, registry, jobs: int = 1) -> None:
        self.registry = registry
        self.jobs = max(1, int(jobs or 1))
        self._lock = threading.Lock()
        self._tasks: dict[str, _RemoteTask] = {}
        self._queue: deque[str] = deque()
        self._counter = itertools.count(1)
        self._eid = next(_EXECUTOR_IDS)
        self._local = None
        self._is_shutdown = False
        self._pumping = False
        self._pump_again = False
        self.tasks_remote = 0
        self.tasks_local = 0
        self.requeued_tasks = 0
        self._workers_used: set[int] = set()
        registry.attach(self)

    # ------------------------------------------------------------------
    # Executor surface
    # ------------------------------------------------------------------
    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule a call; ``run_block_task`` payloads go to the fleet.

        Anything else runs on the local fallback pool (the drive loops
        only ever submit ``run_block_task`` here, but the Executor
        contract stays total).
        """
        future: Future = Future()
        with self._lock:
            if self._is_shutdown:
                raise RuntimeError(
                    "cannot schedule new futures after shutdown"
                )
        if fn is run_block_task and not kwargs and len(args) == 3:
            task_id = f"t{self._eid}-{next(self._counter)}"
            task = _RemoteTask(task_id, future, args)
            with self._lock:
                self._tasks[task_id] = task
                self._queue.append(task_id)

            def _watch_cancel(fut, task_id=task_id):
                if fut.cancelled():
                    # Promote CANCELLED to CANCELLED_AND_NOTIFIED: a pool
                    # worker would do this when dequeuing the task, and
                    # concurrent.futures.wait() only treats the notified
                    # state as done.  Without it a cancelled remote
                    # future parks wait() forever.
                    try:
                        fut.set_running_or_notify_cancel()
                    except InvalidStateError:
                        pass  # already notified elsewhere
                    self._forward_cancel(task_id)

            future.add_done_callback(_watch_cancel)
            self._pump()
        else:
            # Not a block-task payload: run it on the local pool (the
            # drive loops only ever submit run_block_task here, but the
            # Executor contract stays total).
            self._run_local(
                _RemoteTask("", future, ()), fn=fn, args=args, kwargs=kwargs
            )
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Stop accepting work and detach from the registry.

        The registry (and its workers) stay up for the next executor;
        only the local fallback pool is torn down here.
        """
        with self._lock:
            self._is_shutdown = True
            queued = (
                [self._tasks[t].future for t in self._queue if t in self._tasks]
                if cancel_futures
                else []
            )
        for future in queued:
            future.cancel()
        if wait:
            self._wait_all()
        self.registry.detach(self)
        local = self._local
        if local is not None:
            local.shutdown(wait=wait)

    def _wait_all(self) -> None:
        from concurrent.futures import wait as cf_wait

        while True:
            with self._lock:
                pending = [
                    t.future for t in self._tasks.values() if not t.future.done()
                ]
            if not pending:
                return
            cf_wait(pending, timeout=0.2)
            self._pump()  # belt and braces: redispatch anything stalled

    # ------------------------------------------------------------------
    # Stats (folded into BatchStats by the batch drive loop)
    # ------------------------------------------------------------------
    def remote_stats(self) -> dict:
        """Counters of this executor's run, JSON-ready."""
        with self._lock:
            return {
                "tasks_remote": self.tasks_remote,
                "tasks_local": self.tasks_local,
                "requeued_tasks": self.requeued_tasks,
                "workers_used": len(self._workers_used),
            }

    # ------------------------------------------------------------------
    # Dispatch pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Dispatch queued tasks while the fleet has capacity.

        Runs in whatever thread noticed capacity (submit, a registry
        reader, the reaper); a single-flight guard collapses concurrent
        pumps into one pass plus a rerun, keeping dispatch order stable
        without holding any lock across the socket write.
        """
        with self._lock:
            if self._pumping:
                self._pump_again = True
                return
            self._pumping = True
        while True:
            progressed = self._pump_once()
            with self._lock:
                if progressed and self._queue:
                    continue
                if self._pump_again:
                    self._pump_again = False
                    continue
                self._pumping = False
                return

    def _pump_once(self) -> bool:
        """One pass over the queue; whether anything left the queue."""
        progressed = False
        while True:
            with self._lock:
                if not self._queue:
                    return progressed
                task_id = self._queue.popleft()
                task = self._tasks.get(task_id)
            if task is None or task.future.cancelled():
                progressed = True
                continue
            solver, hypergraph, params = task.args
            conn = self.registry.dispatch(
                task_id,
                self,
                {
                    "type": "task",
                    "task": task_id,
                    "solver": solver,
                    "hypergraph": hypergraph,
                    "params": params,
                },
            )
            if conn is not None:
                with self._lock:
                    task.dispatched = True
                    self.tasks_remote += 1
                    self._workers_used.add(conn.wid)
                progressed = True
                continue
            if self.registry.worker_count() == 0:
                # Degrade, never deadlock: no fleet means the local
                # fallback pool runs the task.
                self._run_local(task)
                progressed = True
                continue
            # Fleet is saturated: requeue at the front and wait for the
            # next capacity notification.
            with self._lock:
                self._queue.appendleft(task_id)
            return progressed

    # ------------------------------------------------------------------
    # Local fallback
    # ------------------------------------------------------------------
    def _ensure_local(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._local is None:
                self._local = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-remote-fallback",
                )
            return self._local

    def _run_local(self, task: _RemoteTask, fn=None, args=None, kwargs=None):
        pool = self._ensure_local()
        with self._lock:
            self.tasks_local += 1

        def call() -> None:
            try:
                running = task.future.set_running_or_notify_cancel()
            except InvalidStateError:
                # Cancelled and already notified by _watch_cancel.
                running = False
            if not running:
                self._forget(task.task_id)
                return
            try:
                if fn is None:
                    value = run_block_task(*task.args)
                else:
                    value = fn(*args, **(kwargs or {}))
            except BaseException as exc:
                self._forget(task.task_id)
                task.future.set_exception(exc)
            else:
                self._forget(task.task_id)
                task.future.set_result(value)

        pool.submit(call)

    def _forget(self, task_id: str) -> None:
        if task_id:
            with self._lock:
                self._tasks.pop(task_id, None)

    # ------------------------------------------------------------------
    # Registry callbacks
    # ------------------------------------------------------------------
    def _deliver(self, task_id: str, kind: str, payload) -> None:
        """A worker answered ``task_id`` (result / error / cancelled)."""
        with self._lock:
            task = self._tasks.pop(task_id, None)
        if task is None:
            return  # cancelled (or already resolved): late reply, drop
        future = task.future
        if future.cancelled():
            return
        try:
            if kind == "result":
                future.set_result(payload)
            elif kind == "error":
                exc = (
                    payload
                    if isinstance(payload, BaseException)
                    else RuntimeError(f"remote task failed: {payload!r}")
                )
                future.set_exception(exc)
            elif kind == "cancelled" and not future.cancelled():
                # The cancel normally originates here (the future is
                # already cancelled); resolve it if it somehow is not.
                future.cancel()
        except InvalidStateError:  # pragma: no cover - benign race
            pass

    def _task_lost(self, task_id: str) -> None:
        """``task_id``'s worker died: requeue onto survivors (or local)."""
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                return
            if task.future.cancelled() or task.future.done():
                self._tasks.pop(task_id, None)
                return
            task.dispatched = False
            self.requeued_tasks += 1
            self._queue.appendleft(task_id)
        # The registry notifies capacity right after reaping, which
        # pumps this queue; nothing more to do here.

    def _forward_cancel(self, task_id: str) -> None:
        """The driver cancelled ``task_id``'s future: propagate."""
        with self._lock:
            task = self._tasks.pop(task_id, None)
            if task is None:
                return
            dispatched = task.dispatched
            try:
                self._queue.remove(task_id)
            except ValueError:
                pass
        if dispatched:
            self.registry.cancel(task_id)
