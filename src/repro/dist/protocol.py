"""Wire protocol of the distributed block-solve backend.

One frame per message, mirroring the ``RPS1`` framing discipline of the
result-store log (:mod:`repro.store.log`) — length-prefixed, CRC-checked,
refuse-absurd-lengths::

    frame   := MAGIC(4) | length(4, big-endian) | crc32(4) | payload
    payload := pickle (protocol :data:`pickle.HIGHEST_PROTOCOL`)

The payload is a plain dict with a ``"type"`` tag.  Messages a worker
sends to the driver:

* ``{"type": "hello", "jobs": N, "pid": P}`` — registration, first
  frame on the connection;
* ``{"type": "heartbeat", "in_flight": N, "executed": N}`` — liveness
  (periodic, and in reply to every ``ping``);
* ``{"type": "result", "task": id, "value": ...}`` — a finished task;
* ``{"type": "error", "task": id, "error": Exception}`` — a failed one;
* ``{"type": "cancelled", "task": id}`` — a task dequeued before it
  started, in reply to ``cancel``;
* ``{"type": "bye"}`` — clean goodbye (idle auto-shutdown).

Messages the driver sends to a worker:

* ``{"type": "task", "task": id, "solver": s, "hypergraph": h,
  "params": {...}}`` — one :func:`~repro.pipeline.solve.run_block_task`
  payload;
* ``{"type": "cancel", "task": id}`` — dequeue the task, or set its
  cooperative abort event if it is already running;
* ``{"type": "ping"}`` — liveness probe (answered by a heartbeat);
* ``{"type": "shutdown"}`` — drain and exit.

Unlike the store log, both frame directions carry *pickles*, because
task payloads are live :class:`~repro.hypergraph.Hypergraph` objects
and results are live decompositions.  Pickle over a socket is code
execution by design, so the transport is for **trusted networks only**
— loopback fleets and private cluster links, exactly like a process
pool's pipes.  The framing still protects against every *accidental*
failure mode: torn writes, truncation and bit rot all fail the CRC and
surface as a :class:`ProtocolError` instead of a garbage unpickle.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "send_message",
    "recv_message",
    "parse_endpoint",
]

#: Per-frame header: magic, payload length, payload CRC32.
MAGIC = b"RPW1"
_HEADER = struct.Struct(">4sII")

#: Refuse absurd frame sizes (a corrupt length field would otherwise
#: make the reader buffer gigabytes before failing the CRC).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A structurally invalid frame: bad magic, length or CRC.

    The connection is unusable after this — there is no way to resync
    a pickle stream mid-frame — so both sides drop it on sight.
    """


def send_message(sock: socket.socket, message: dict) -> None:
    """Pickle ``message`` and write it as one frame.

    Pickling happens before any byte hits the socket, so an unpicklable
    message (raising ``pickle.PicklingError`` / ``TypeError``) never
    leaves a torn frame behind; callers may catch and retry with a
    simpler payload.  Socket failures propagate as ``OSError``.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    header = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload))
    sock.sendall(header + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or None on a clean EOF at a boundary.

    EOF in the *middle* of the requested span is a torn frame and
    raises :class:`ProtocolError`.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; the unpickled message, or None on clean EOF.

    Raises
    ------
    ProtocolError
        On bad magic, an impossible length, a CRC mismatch, a torn
        frame, or a payload that does not unpickle to a dict.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the limit")
    payload = _recv_exact(sock, length)
    if payload is None or zlib.crc32(payload) != crc:
        raise ProtocolError("frame CRC mismatch")
    try:
        message = pickle.loads(payload)
    except Exception as exc:  # unpickling is all-or-nothing
        raise ProtocolError(f"frame payload does not unpickle: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload is {type(message).__name__}, expected dict"
        )
    return message


def parse_endpoint(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` into ``(host, port)``.

    Raises
    ------
    ValueError
        If the address has no ``:`` or a non-integer port.
    """
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT; got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"port must be an integer; got {port!r}") from None
