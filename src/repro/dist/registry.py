"""The driver side of the worker fleet: :class:`WorkerRegistry`.

The registry owns one listening TCP socket that workers dial back to
(``repro worker --connect HOST:PORT``).  Each accepted connection gets
a reader thread; a shared health thread pings every worker and reaps
the unresponsive.  The registry itself schedules nothing — it offers
:class:`~repro.dist.executor.RemoteExecutor` three primitives:

* :meth:`dispatch` — least-loaded placement of one task frame, bounded
  by each worker's announced ``jobs`` capacity (per-worker in-flight
  accounting);
* :meth:`cancel` — forward a cancel frame to wherever a task went;
* callbacks — ``_deliver`` routes every ``result`` / ``error`` /
  ``cancelled`` frame back to the executor that submitted the task,
  ``_task_lost`` fires for each in-flight task of a dead worker (the
  executor requeues it onto survivors), and ``_pump`` pokes attached
  executors whenever capacity appears (a worker joined, a slot freed).

Locking discipline: the registry lock is never held while calling into
an executor, and executors never call registry methods while holding
their own lock — each component's lock only guards its own state, so
the reader threads, the health thread and driver threads cannot
deadlock across the two.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

from .protocol import ProtocolError, recv_message, send_message

__all__ = ["WorkerRegistry", "WorkerConnection"]


class WorkerConnection:
    """One registered worker: its socket, capacity and in-flight tasks."""

    def __init__(self, wid: int, sock: socket.socket, addr, jobs: int, pid):
        self.wid = wid
        self.sock = sock
        self.addr = addr
        self.jobs = max(1, int(jobs or 1))
        self.pid = pid
        self.in_flight: set[str] = set()
        self.executed = 0
        self.last_seen = time.monotonic()
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, message: dict) -> bool:
        """Write one frame; False (and mark dead) on any failure."""
        if not self.alive:
            return False
        try:
            with self._send_lock:
                send_message(self.sock, message)
            return True
        except (OSError, ProtocolError):
            self.alive = False
            return False

    def describe(self) -> dict:
        """JSON-ready summary (``repro serve`` stats, tests)."""
        return {
            "id": self.wid,
            "addr": f"{self.addr[0]}:{self.addr[1]}",
            "pid": self.pid,
            "jobs": self.jobs,
            "in_flight": len(self.in_flight),
            "executed": self.executed,
        }


class WorkerRegistry:
    """Accept, track and health-check a fleet of dial-back workers.

    Parameters
    ----------
    host : str, optional
        Listening interface (default loopback).
    port : int, optional
        Listening port; 0 (default) picks an ephemeral one — read the
        resolved endpoint from :attr:`address`.
    ping_interval : float, optional
        Seconds between health pings (default 2).
    worker_timeout : float, optional
        Seconds of silence after which a worker is declared dead and
        its in-flight tasks requeue (default 10; heartbeats flow every
        ``ping_interval`` even while a worker is busy, so only a hung
        or vanished process trips this).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ping_interval: float = 2.0,
        worker_timeout: float = 10.0,
    ) -> None:
        self.ping_interval = max(0.1, float(ping_interval))
        self.worker_timeout = max(self.ping_interval, float(worker_timeout))
        self._lock = threading.Lock()
        self._joined = threading.Condition(self._lock)
        self._workers: dict[int, WorkerConnection] = {}
        self._routes: dict[str, tuple[object, WorkerConnection]] = {}
        self._executors: set = set()
        self._ids = itertools.count(1)
        self._closed = False
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, int(port)))
        server.listen(64)
        self._server = server
        self.host, self.port = server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-registry-accept", daemon=True
        )
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-registry-health", daemon=True
        )
        self._stop = threading.Event()
        self._accept_thread.start()
        self._health_thread.start()

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The resolved ``HOST:PORT`` workers should dial."""
        return f"{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed registry stays closed)."""
        return self._closed

    def worker_count(self) -> int:
        """Number of currently registered, live workers."""
        with self._lock:
            return sum(1 for c in self._workers.values() if c.alive)

    def total_capacity(self) -> int:
        """Sum of the live workers' announced job slots."""
        with self._lock:
            return sum(c.jobs for c in self._workers.values() if c.alive)

    def workers(self) -> list[dict]:
        """JSON-ready per-worker summaries."""
        with self._lock:
            return [c.describe() for c in self._workers.values()]

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers registered; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._joined:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return False
                self._joined.wait(remaining)
        return True

    def attach(self, executor) -> None:
        """Register an executor for capacity-change notifications."""
        with self._lock:
            self._executors.add(executor)

    def detach(self, executor) -> None:
        """Stop notifying ``executor`` (inverse of :meth:`attach`)."""
        with self._lock:
            self._executors.discard(executor)

    # ------------------------------------------------------------------
    # Dispatch / cancel (called by executors; registry lock only)
    # ------------------------------------------------------------------
    def dispatch(self, task_id: str, executor, message: dict):
        """Send one task frame to the least-loaded worker with a free
        slot; the chosen :class:`WorkerConnection`, or None when the
        fleet has no capacity right now (the executor keeps the task
        queued and retries on the next capacity notification)."""
        while True:
            with self._lock:
                candidates = [
                    c
                    for c in self._workers.values()
                    if c.alive and len(c.in_flight) < c.jobs
                ]
                if not candidates:
                    return None
                conn = min(
                    candidates, key=lambda c: (len(c.in_flight), c.wid)
                )
                conn.in_flight.add(task_id)
                self._routes[task_id] = (executor, conn)
            if conn.send(message):
                return conn
            # The worker died under us: roll back this task's route
            # (so _reap does not double-requeue it) and try another.
            with self._lock:
                conn.in_flight.discard(task_id)
                self._routes.pop(task_id, None)
            self._reap(conn)

    def cancel(self, task_id: str) -> None:
        """Forward a cancel frame to the worker running ``task_id``.

        Best-effort: the route stays until the worker acknowledges
        (``cancelled`` frame) or replies anyway (late ``result`` /
        ``error``, discarded by the executor) — either frame frees the
        slot, and a dead worker frees it through :meth:`_reap`.
        """
        with self._lock:
            route = self._routes.get(task_id)
        if route is not None:
            route[1].send({"type": "cancel", "task": task_id})

    # ------------------------------------------------------------------
    # Connection serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, addr = self._server.accept()
            except OSError:
                return  # closed
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            threading.Thread(
                target=self._serve_worker,
                args=(sock, addr),
                name=f"repro-registry-worker-{addr[1]}",
                daemon=True,
            ).start()

    def _serve_worker(self, sock: socket.socket, addr) -> None:
        try:
            hello = recv_message(sock)
        except (ProtocolError, OSError):
            hello = None
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            try:
                sock.close()
            except OSError:
                pass
            return
        conn = WorkerConnection(
            wid=next(self._ids),
            sock=sock,
            addr=addr,
            jobs=hello.get("jobs", 1),
            pid=hello.get("pid"),
        )
        with self._joined:
            if self._closed:
                conn.alive = False
            else:
                self._workers[conn.wid] = conn
                self._joined.notify_all()
        if not conn.alive:
            try:
                sock.close()
            except OSError:
                pass
            return
        self._notify_capacity()
        try:
            while True:
                message = recv_message(sock)
                if message is None:
                    break
                conn.last_seen = time.monotonic()
                kind = message.get("type")
                if kind in ("result", "error", "cancelled"):
                    task_id = message.get("task")
                    with self._lock:
                        route = self._routes.pop(task_id, None)
                        conn.in_flight.discard(task_id)
                    if route is not None:
                        payload = (
                            message.get("value")
                            if kind == "result"
                            else message.get("error")
                        )
                        route[0]._deliver(task_id, kind, payload)
                    self._notify_capacity()  # a slot just freed
                elif kind == "heartbeat":
                    conn.executed = message.get("executed", conn.executed)
                elif kind == "bye":
                    break
        except (ProtocolError, OSError):
            pass
        finally:
            self._reap(conn)

    def _health_loop(self) -> None:
        while not self._stop.wait(self.ping_interval):
            now = time.monotonic()
            with self._lock:
                conns = list(self._workers.values())
            for conn in conns:
                if now - conn.last_seen > self.worker_timeout:
                    conn.alive = False
                if conn.alive:
                    conn.send({"type": "ping"})
                if not conn.alive:
                    self._reap(conn)

    def _reap(self, conn: WorkerConnection) -> None:
        """Forget a dead worker; requeue its in-flight tasks."""
        with self._lock:
            if self._workers.pop(conn.wid, None) is None:
                return  # already reaped by another thread
            conn.alive = False
            lost = [
                (task_id, executor)
                for task_id, (executor, c) in self._routes.items()
                if c is conn
            ]
            for task_id, _executor in lost:
                del self._routes[task_id]
        try:
            conn.sock.close()
        except OSError:
            pass
        for task_id, executor in lost:
            executor._task_lost(task_id)
        self._notify_capacity()

    def _notify_capacity(self) -> None:
        """Poke every attached executor to (re)dispatch queued tasks."""
        with self._lock:
            executors = list(self._executors)
        for executor in executors:
            executor._pump()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, tell workers to shut down, drop connections."""
        with self._joined:
            if self._closed:
                return
            self._closed = True
            self._joined.notify_all()
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._workers.values())
        for conn in conns:
            conn.send({"type": "shutdown"})
            self._reap(conn)

    def __enter__(self) -> "WorkerRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
