"""Stitch layer: lift per-block decompositions back to the original.

The reduce → split → solve pipeline (:mod:`repro.pipeline`) produces one
decomposition per biconnected block of a reduced hypergraph.  This
module reassembles them:

* :func:`reroot` — re-root a decomposition tree (conditions (1)-(3) of
  Definitions 2.4/2.6 are root-independent; the HD special condition is
  not, which is why hw queries split into connected components only);
* :func:`stitch_blocks` — join block decompositions along the block-cut
  forest: a child block is re-rooted at a node containing the shared
  articulation vertex and attached below a parent-block node containing
  it, so every vertex's occurrence set stays a connected subtree;
* :func:`replay_reductions` — replay reduction undo records (reverse
  order) to restore fused twin vertices and re-attach degree-1 leaves.

Both stitching steps preserve width: attached leaves carry single-edge
covers of weight 1, never above any width bound (every width is >= 1),
and twin restoration leaves covers untouched.  Callers re-validate the
final decomposition against the *original* hypergraph, so stitching is
never trusted blindly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..covers import FractionalCover
from ..hypergraph import Vertex
from .base import Decomposition

__all__ = ["TreeBuilder", "reroot", "stitch_blocks", "replay_reductions"]


class TreeBuilder:
    """A mutable decomposition under assembly.

    Thin dict-of-nodes representation used by the stitch operations and
    by the reduction undo records (which call :meth:`add_to_bags_with`,
    :meth:`find_node_containing` and :meth:`attach_leaf` on it).
    """

    def __init__(self, decomposition: Decomposition | None = None) -> None:
        self.bags: dict[str, frozenset] = {}
        self.covers: dict[str, FractionalCover] = {}
        self.parent: dict[str, str] = {}
        self.root: str | None = None
        self.order: list[str] = []
        self._fresh = 0
        if decomposition is not None:
            self.add_decomposition(decomposition)

    def add_decomposition(
        self,
        decomposition: Decomposition,
        prefix: str = "",
        attach_to: str | None = None,
    ) -> list[str]:
        """Copy a decomposition in (ids prefixed), optionally attached.

        Returns the new ids in the source's node order.  The copied root
        becomes the global root when the builder is empty and
        ``attach_to`` is None; otherwise it hangs below ``attach_to``
        (or below the current global root when ``attach_to`` is None).
        """
        new_ids = []
        for nid in decomposition.node_ids:
            new_id = f"{prefix}{nid}"
            if new_id in self.bags:
                raise ValueError(f"node id clash while stitching: {new_id!r}")
            self.bags[new_id] = decomposition.bag(nid)
            self.covers[new_id] = decomposition.cover(nid)
            par = decomposition.parent(nid)
            if par is not None:
                self.parent[new_id] = f"{prefix}{par}"
            new_ids.append(new_id)
            self.order.append(new_id)
        copied_root = f"{prefix}{decomposition.root}"
        if self.root is None and attach_to is None:
            self.root = copied_root
        else:
            self.parent[copied_root] = (
                attach_to if attach_to is not None else self.root
            )
        return new_ids

    # -- queries -------------------------------------------------------
    def find_node_containing(
        self, vertices: Iterable[Vertex], within: Iterable[str] | None = None
    ) -> str:
        """The first node (insertion order) whose bag contains ``vertices``."""
        wanted = frozenset(vertices)
        candidates = self.order if within is None else within
        for nid in candidates:
            if wanted <= self.bags[nid]:
                return nid
        raise ValueError(
            f"no node contains {sorted(map(str, wanted))} — "
            "stitch invariant violated"
        )

    # -- mutations -----------------------------------------------------
    def attach_leaf(
        self,
        bag: Iterable[Vertex],
        cover: FractionalCover | Mapping[str, float],
        parent_id: str,
    ) -> str:
        """Add a fresh leaf below ``parent_id``; returns its id."""
        self._fresh += 1
        new_id = f"stitch{self._fresh}"
        while new_id in self.bags:  # pragma: no cover - defensive
            self._fresh += 1
            new_id = f"stitch{self._fresh}"
        if not isinstance(cover, FractionalCover):
            cover = FractionalCover(dict(cover))
        self.bags[new_id] = frozenset(bag)
        self.covers[new_id] = cover
        self.parent[new_id] = parent_id
        self.order.append(new_id)
        return new_id

    def add_to_bags_with(
        self, anchor: Vertex, additions: Iterable[Vertex]
    ) -> None:
        """Add ``additions`` to every bag containing ``anchor``."""
        extra = frozenset(additions)
        for nid, bag in self.bags.items():
            if anchor in bag:
                self.bags[nid] = bag | extra

    def freeze(self) -> Decomposition:
        if self.root is None:
            raise ValueError("empty stitch: no decompositions added")
        nodes = [(nid, self.bags[nid], self.covers[nid]) for nid in self.order]
        return Decomposition(nodes, parent=self.parent, root=self.root)


def reroot(decomposition: Decomposition, new_root: str) -> Decomposition:
    """The same tree re-rooted at ``new_root``.

    Bags and covers are untouched; only parent pointers along the old
    root path flip.  Safe for tree decompositions, GHDs and FHDs (their
    conditions are root-independent) — *not* for the HD special
    condition, which is why hw never takes this path.
    """
    if new_root == decomposition.root:
        return decomposition
    path = decomposition.path_between(decomposition.root, new_root)
    parent = {
        nid: decomposition.parent(nid)
        for nid in decomposition.node_ids
        if decomposition.parent(nid) is not None
    }
    for above, below in zip(path, path[1:]):
        del parent[below]
        parent[above] = below
    nodes = [
        (nid, decomposition.bag(nid), decomposition.cover(nid))
        for nid in decomposition.node_ids
    ]
    return Decomposition(nodes, parent=parent, root=new_root)


def stitch_blocks(
    entries: Sequence[tuple[Decomposition, int | None, Vertex | None]],
) -> Decomposition:
    """Join per-block decompositions along the block-cut forest.

    ``entries[i]`` is ``(decomposition, parent_index, cut_vertex)`` for
    block i: a non-root block is re-rooted at a node containing
    ``cut_vertex`` and attached below a node of block ``parent_index``
    containing it; root blocks beyond the first attach below the global
    root (their vertex sets are disjoint from everything else, so any
    attachment point preserves all conditions, including the HD special
    condition).
    """
    if not entries:
        raise ValueError("nothing to stitch")
    if len(entries) == 1:
        return entries[0][0]

    children: dict[int, list[int]] = {}
    roots = []
    for i, (_d, parent, _a) in enumerate(entries):
        if parent is None:
            roots.append(i)
        else:
            children.setdefault(parent, []).append(i)
    if not roots:
        raise ValueError("block forest has no root")

    builder = TreeBuilder()
    block_ids: dict[int, list[str]] = {}
    queue: list[int] = list(roots)
    placed = 0
    while queue:
        i = queue.pop(0)
        decomposition, parent, cut_vertex = entries[i]
        if parent is None:
            block_ids[i] = builder.add_decomposition(decomposition, f"b{i}.")
        else:
            local_root = next(
                nid
                for nid in decomposition.node_ids
                if cut_vertex in decomposition.bag(nid)
            )
            rerooted = reroot(decomposition, local_root)
            attach = builder.find_node_containing(
                (cut_vertex,), within=block_ids[parent]
            )
            block_ids[i] = builder.add_decomposition(
                rerooted, f"b{i}.", attach_to=attach
            )
        placed += 1
        queue.extend(children.get(i, ()))
    if placed != len(entries):
        raise ValueError("block forest is not well-founded (cycle?)")
    return builder.freeze()


def replay_reductions(decomposition: Decomposition, undo: Sequence) -> Decomposition:
    """Replay reduction undo records (reverse order) onto a decomposition.

    Each record's ``replay(tree)`` turns a decomposition valid for the
    hypergraph state after its rule fired into one valid for the state
    before it; replaying all of them yields a decomposition of the
    original hypergraph.  See :mod:`repro.pipeline.reduce`.
    """
    if not undo:
        return decomposition
    tree = TreeBuilder(decomposition)
    for record in reversed(undo):
        record.replay(tree)
    return tree.freeze()
