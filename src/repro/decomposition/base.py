"""Decomposition trees: the shared data structure for HDs, GHDs and FHDs.

A decomposition of a hypergraph ``H`` is a rooted tree whose nodes ``u``
each carry a *bag* ``B_u ⊆ V(H)`` and a *cover* (edge-weight function
``λ_u`` or ``γ_u``).  Definitions 2.4-2.6 of the paper differ only in the
cover's codomain ({0,1} vs [0,1]) and extra conditions; a single class
stores all three kinds and the validators in
:mod:`repro.decomposition.validation` decide which conditions hold.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..covers import FractionalCover
from ..hypergraph import Vertex

__all__ = ["Decomposition", "DecompositionNode"]


class DecompositionNode:
    """One node of a decomposition: an id, a bag, and a cover."""

    __slots__ = ("node_id", "bag", "cover")

    def __init__(
        self,
        node_id: str,
        bag: Iterable[Vertex],
        cover: FractionalCover | Mapping[str, float],
    ) -> None:
        self.node_id = str(node_id)
        self.bag = frozenset(bag)
        if not isinstance(cover, FractionalCover):
            cover = FractionalCover(dict(cover))
        self.cover = cover

    def __repr__(self) -> str:
        bag = ",".join(sorted(map(str, self.bag)))
        return f"Node({self.node_id}: {{{bag}}}, w={self.cover.weight:.3g})"


class Decomposition:
    """A rooted decomposition tree.

    Parameters
    ----------
    nodes:
        Triples ``(node_id, bag, cover)``; covers may be plain mappings
        ``{edge_name: weight}``.
    parent:
        ``{child_id: parent_id}`` for every non-root node.
    root:
        The root id; inferred when exactly one node has no parent.

    The tree structure is validated at construction (single root,
    connected, acyclic).  Bags and covers are *not* validated here — use
    :func:`repro.decomposition.validation.validate`.
    """

    def __init__(
        self,
        nodes: Sequence[tuple[str, Iterable[Vertex], FractionalCover | Mapping[str, float]]],
        parent: Mapping[str, str],
        root: str | None = None,
    ) -> None:
        self._nodes: dict[str, DecompositionNode] = {}
        for node_id, bag, cover in nodes:
            node_id = str(node_id)
            if node_id in self._nodes:
                raise ValueError(f"duplicate node id {node_id!r}")
            self._nodes[node_id] = DecompositionNode(node_id, bag, cover)

        self._parent: dict[str, str] = {
            str(c): str(p) for c, p in parent.items()
        }
        for child, par in self._parent.items():
            if child not in self._nodes or par not in self._nodes:
                raise ValueError(f"parent map mentions unknown node: {child}->{par}")

        roots = [nid for nid in self._nodes if nid not in self._parent]
        if root is not None:
            root = str(root)
            if root not in self._nodes:
                raise ValueError(f"unknown root {root!r}")
            if root in self._parent:
                raise ValueError(f"declared root {root!r} has a parent")
        else:
            if len(roots) != 1:
                raise ValueError(f"tree must have exactly one root, found {roots}")
            root = roots[0]
        if len(roots) != 1:
            raise ValueError(f"forest given, not a tree: roots {roots}")
        self._root = root

        self._children: dict[str, tuple[str, ...]] = {nid: () for nid in self._nodes}
        for child, par in self._parent.items():
            self._children[par] = self._children[par] + (child,)
        # Reject cycles: walking up from every node must reach the root.
        for nid in self._nodes:
            seen = {nid}
            cur = nid
            while cur in self._parent:
                cur = self._parent[cur]
                if cur in seen:
                    raise ValueError("parent map contains a cycle")
                seen.add(cur)
            if cur != self._root:
                raise ValueError("tree is not connected")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_node(
        cls,
        bag: Iterable[Vertex],
        cover: FractionalCover | Mapping[str, float],
        node_id: str = "root",
    ) -> "Decomposition":
        """A one-node decomposition."""
        return cls([(node_id, bag, cover)], parent={}, root=node_id)

    @classmethod
    def path(
        cls,
        nodes: Sequence[tuple[str, Iterable[Vertex], FractionalCover | Mapping[str, float]]],
    ) -> "Decomposition":
        """A path-shaped decomposition rooted at the first node.

        Used e.g. for the Table 1 GHD of the hardness reduction, whose
        tree is the path u_C, u_B, u_A, u_min⊖1, ..., u'_C (Figure 2).
        """
        if not nodes:
            raise ValueError("path needs at least one node")
        parent = {
            str(nodes[i][0]): str(nodes[i - 1][0]) for i in range(1, len(nodes))
        }
        return cls(nodes, parent=parent, root=str(nodes[0][0]))

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> str:
        return self._root

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: str) -> DecompositionNode:
        return self._nodes[node_id]

    def bag(self, node_id: str) -> frozenset:
        return self._nodes[node_id].bag

    def cover(self, node_id: str) -> FractionalCover:
        return self._nodes[node_id].cover

    def parent(self, node_id: str) -> str | None:
        return self._parent.get(node_id)

    def children(self, node_id: str) -> tuple[str, ...]:
        return self._children[node_id]

    def preorder(self) -> list[str]:
        """Node ids root-first (parents before children)."""
        order: list[str] = []
        stack = [self._root]
        while stack:
            nid = stack.pop()
            order.append(nid)
            stack.extend(reversed(self._children[nid]))
        return order

    def subtree_nodes(self, node_id: str) -> list[str]:
        """All node ids in the subtree ``T_u`` rooted at ``node_id``."""
        out: list[str] = []
        stack = [node_id]
        while stack:
            nid = stack.pop()
            out.append(nid)
            stack.extend(self._children[nid])
        return out

    def subtree_vertices(self, node_id: str) -> frozenset:
        """``V(T_u)``: union of bags over the subtree rooted at node_id."""
        out: set = set()
        for nid in self.subtree_nodes(node_id):
            out.update(self._nodes[nid].bag)
        return frozenset(out)

    def nodes_containing(self, vertex: Vertex) -> frozenset:
        """``nodes({v})``: ids of nodes whose bag contains ``vertex``."""
        return frozenset(
            nid for nid, node in self._nodes.items() if vertex in node.bag
        )

    def nodes_intersecting(self, vertex_set: Iterable[Vertex]) -> frozenset:
        """``nodes(V')``: ids of nodes whose bag meets ``vertex_set``."""
        vs = frozenset(vertex_set)
        return frozenset(
            nid for nid, node in self._nodes.items() if node.bag & vs
        )

    def path_between(self, u: str, v: str) -> list[str]:
        """Node ids on the unique tree path from u to v, inclusive.

        The path descends from u to the lowest common ancestor and then
        ascends to v (so the returned sequence starts at u and ends at v).
        """
        ancestors_u: list[str] = [u]
        cur: str | None = u
        while (cur := self._parent.get(cur)) is not None:
            ancestors_u.append(cur)
        index = {nid: i for i, nid in enumerate(ancestors_u)}
        up_from_v: list[str] = []
        cur = v
        while cur not in index:
            up_from_v.append(cur)
            cur = self._parent[cur]
        meet = cur
        return ancestors_u[: index[meet] + 1] + list(reversed(up_from_v))

    # ------------------------------------------------------------------
    # Measures and exports
    # ------------------------------------------------------------------
    def width(self) -> float:
        """Maximum cover weight over all nodes (the decomposition width)."""
        return max(node.cover.weight for node in self._nodes.values())

    def is_integral(self) -> bool:
        """True iff every node's cover is a 0/1 function (GHD/HD shape)."""
        return all(node.cover.is_integral() for node in self._nodes.values())

    def replace_node(
        self,
        node_id: str,
        bag: Iterable[Vertex] | None = None,
        cover: FractionalCover | Mapping[str, float] | None = None,
    ) -> "Decomposition":
        """A copy with one node's bag and/or cover replaced."""
        nodes = []
        for nid, node in self._nodes.items():
            if nid == node_id:
                nodes.append(
                    (
                        nid,
                        node.bag if bag is None else bag,
                        node.cover if cover is None else cover,
                    )
                )
            else:
                nodes.append((nid, node.bag, node.cover))
        return Decomposition(nodes, parent=self._parent, root=self._root)

    def as_dict(self) -> dict:
        """A plain-data export (ids, bags, covers, parents) for logging."""
        return {
            "root": self._root,
            "nodes": {
                nid: {
                    "bag": sorted(map(str, node.bag)),
                    "cover": dict(node.cover.weights),
                }
                for nid, node in self._nodes.items()
            },
            "parent": dict(self._parent),
        }

    def __repr__(self) -> str:
        return (
            f"Decomposition(nodes={len(self._nodes)}, "
            f"width={self.width():.3g}, root={self._root!r})"
        )
