"""Validators for every decomposition condition defined in the paper.

These checks are deliberately independent of the search algorithms: every
decomposition an algorithm returns is re-validated here, so algorithmic
soundness never rests on the search code being right.

Conditions covered (paper references in parentheses):

* condition (1): every edge is contained in some bag       (Def. 2.4)
* condition (2): connectedness of each vertex's nodes       (Def. 2.4)
* condition (3)/(3'): bags are covered by their λ/γ         (Def. 2.4/2.6)
* condition (4): the special condition of HDs               (Def. 2.5)
* weak special condition                                    (Def. 6.3)
* c-bounded fractional part                                 (Def. 6.2)
* strictness: B_u = B(γ_u) = ∪ supp(γ_u)                    (Def. 5.18)
* fractional normal form (FNF)                              (Def. 5.20)
* bag-maximality                                            (Def. 4.5)
"""

from __future__ import annotations

from ..covers import EPS, covered_vertices
from ..hypergraph import Hypergraph, components
from .base import Decomposition

__all__ = [
    "violations",
    "validate",
    "is_tree_decomposition",
    "is_ghd",
    "is_hd",
    "is_fhd",
    "check_edge_coverage",
    "check_connectedness",
    "check_bag_covers",
    "check_special_condition",
    "check_weak_special_condition",
    "check_fractional_part_bounded",
    "is_strict",
    "is_bag_maximal",
    "check_fnf",
    "treecomp",
]

_KINDS = ("tree", "ghd", "hd", "fhd")


def check_edge_coverage(hypergraph: Hypergraph, decomp: Decomposition) -> list[str]:
    """Condition (1): for each edge e there is a node u with e ⊆ B_u."""
    problems = []
    bags = [decomp.bag(nid) for nid in decomp.node_ids]
    for name in hypergraph.edge_names:
        e = hypergraph.edge(name)
        if not any(e <= bag for bag in bags):
            problems.append(f"edge {name!r} is not contained in any bag")
    return problems


def check_connectedness(hypergraph: Hypergraph, decomp: Decomposition) -> list[str]:
    """Condition (2): {u : v ∈ B_u} induces a connected subtree, ∀v.

    Checked by a single preorder sweep: a vertex's occurrence set is
    connected iff it has exactly one 'topmost' node (a node whose parent
    does not contain the vertex).
    """
    problems = []
    tops: dict = {}
    for nid in decomp.preorder():
        bag = decomp.bag(nid)
        par = decomp.parent(nid)
        parent_bag = decomp.bag(par) if par is not None else frozenset()
        for v in bag:
            if v not in parent_bag:
                tops[v] = tops.get(v, 0) + 1
    for v, count in sorted(tops.items(), key=lambda kv: str(kv[0])):
        if count > 1:
            problems.append(
                f"vertex {v!r} occurs in {count} disconnected subtrees"
            )
    # Also surface bag vertices that are not hypergraph vertices at all.
    for nid in decomp.node_ids:
        stray = decomp.bag(nid) - hypergraph.vertices
        if stray:
            problems.append(
                f"node {nid}: bag contains non-vertices {sorted(map(str, stray))}"
            )
    return problems


def check_bag_covers(
    hypergraph: Hypergraph, decomp: Decomposition, integral: bool
) -> list[str]:
    """Condition (3)/(3'): B_u ⊆ B(λ_u) resp. B(γ_u); λ must be 0/1."""
    problems = []
    for nid in decomp.node_ids:
        cover = decomp.cover(nid)
        unknown = cover.support - frozenset(hypergraph.edge_names)
        if unknown:
            problems.append(
                f"node {nid}: cover uses unknown edges {sorted(unknown)}"
            )
            continue
        if integral and not cover.is_integral():
            problems.append(f"node {nid}: cover is not integral (λ needed)")
        covered = covered_vertices(hypergraph, cover)
        missing = decomp.bag(nid) - covered
        if missing:
            problems.append(
                f"node {nid}: bag vertices not covered: {sorted(map(str, missing))}"
            )
    return problems


def check_special_condition(
    hypergraph: Hypergraph, decomp: Decomposition
) -> list[str]:
    """Condition (4) of HDs: B(λ_u) ∩ V(T_u) ⊆ B_u for every node u."""
    problems = []
    for nid in decomp.node_ids:
        b_lambda = covered_vertices(hypergraph, decomp.cover(nid))
        offenders = (b_lambda & decomp.subtree_vertices(nid)) - decomp.bag(nid)
        if offenders:
            problems.append(
                f"node {nid}: special condition violated by "
                f"{sorted(map(str, offenders))}"
            )
    return problems


def check_weak_special_condition(
    hypergraph: Hypergraph, decomp: Decomposition
) -> list[str]:
    """Definition 6.3: for S = {e : γ_u(e) = 1}, B(γ_u|S) ∩ V(T_u) ⊆ B_u."""
    problems = []
    for nid in decomp.node_ids:
        integral_part = decomp.cover(nid).scaled_to_integral_part()
        b_s = covered_vertices(hypergraph, integral_part)
        offenders = (b_s & decomp.subtree_vertices(nid)) - decomp.bag(nid)
        if offenders:
            problems.append(
                f"node {nid}: weak special condition violated by "
                f"{sorted(map(str, offenders))}"
            )
    return problems


def check_fractional_part_bounded(
    hypergraph: Hypergraph, decomp: Decomposition, c: int
) -> list[str]:
    """Definition 6.2: |B(γ_u|R)| <= c for R = {e : γ_u(e) < 1}, ∀u."""
    problems = []
    for nid in decomp.node_ids:
        cover = decomp.cover(nid)
        fractional_part = {
            e: w for e, w in cover.weights.items() if w < 1.0 - EPS
        }
        covered = covered_vertices(hypergraph, fractional_part)
        if len(covered) > c:
            problems.append(
                f"node {nid}: fractional part covers {len(covered)} > {c} vertices"
            )
    return problems


def is_strict(hypergraph: Hypergraph, decomp: Decomposition) -> bool:
    """Definition 5.18: B_u = B(γ_u) = ∪ supp(γ_u) at every node."""
    for nid in decomp.node_ids:
        cover = decomp.cover(nid)
        support_union = hypergraph.vertices_of(cover.support)
        covered = covered_vertices(hypergraph, cover)
        if not (decomp.bag(nid) == covered == support_union):
            return False
    return True


def is_bag_maximal(hypergraph: Hypergraph, decomp: Decomposition) -> bool:
    """Definition 4.5: no vertex of B(γ_u) \\ B_u can join B_u without
    breaking connectedness.

    Adding v to B_u preserves connectedness iff u already touches the
    (possibly empty) subtree of nodes containing v — i.e. u is in it or
    adjacent to it.
    """
    for nid in decomp.node_ids:
        extra = covered_vertices(hypergraph, decomp.cover(nid)) - decomp.bag(nid)
        for v in extra:
            occurrences = decomp.nodes_containing(v)
            if not occurrences:
                return False  # v occurs nowhere: adding it is always safe
            neighbourhood = set(occurrences)
            for occ in occurrences:
                par = decomp.parent(occ)
                if par is not None:
                    neighbourhood.add(par)
                neighbourhood.update(decomp.children(occ))
            if nid in neighbourhood:
                return False
    return True


def treecomp(
    hypergraph: Hypergraph, decomp: Decomposition, node_id: str
) -> frozenset:
    """``treecomp(s)`` for decompositions in FNF (Section 6.1).

    Root: all of V(H).  Other nodes s with parent r: the unique
    [B_r]-component C_r with V(T_s) = C_r ∪ (B_r ∩ B_s).  Raises
    ``ValueError`` when no such unique component exists (i.e. the
    decomposition is not in FNF at s).
    """
    par = decomp.parent(node_id)
    if par is None:
        return hypergraph.vertices
    subtree_vs = decomp.subtree_vertices(node_id)
    parent_bag = decomp.bag(par)
    matches = [
        comp
        for comp in components(hypergraph, parent_bag)
        if subtree_vs == comp | (parent_bag & decomp.bag(node_id))
    ]
    if len(matches) != 1:
        raise ValueError(
            f"node {node_id}: no unique [B_r]-component matches V(T_s) "
            f"(found {len(matches)}); decomposition not in FNF"
        )
    return matches[0]


def check_fnf(hypergraph: Hypergraph, decomp: Decomposition) -> list[str]:
    """Definition 5.20 (fractional normal form), conditions 1-3."""
    problems = []
    for nid in decomp.node_ids:
        par = decomp.parent(nid)
        if par is None:
            continue
        parent_bag = decomp.bag(par)
        subtree_vs = decomp.subtree_vertices(nid)
        comps = components(hypergraph, parent_bag)
        matches = [
            comp
            for comp in comps
            if subtree_vs == comp | (parent_bag & decomp.bag(nid))
        ]
        if len(matches) != 1:
            problems.append(
                f"node {nid}: FNF condition 1 fails "
                f"({len(matches)} matching [B_r]-components)"
            )
            continue
        comp = matches[0]
        if not (decomp.bag(nid) & comp):
            problems.append(f"node {nid}: FNF condition 2 fails (B_s ∩ C_r = ∅)")
        covered = covered_vertices(hypergraph, decomp.cover(nid))
        if not ((covered & parent_bag) <= decomp.bag(nid)):
            problems.append(
                f"node {nid}: FNF condition 3 fails (B(γ_s) ∩ B_r ⊄ B_s)"
            )
    return problems


def violations(
    hypergraph: Hypergraph,
    decomp: Decomposition,
    kind: str = "ghd",
    width: float | None = None,
) -> list[str]:
    """All violated conditions for the requested decomposition kind.

    ``kind`` is one of ``"tree"`` (conditions 1+2 only), ``"ghd"``,
    ``"hd"``, ``"fhd"``.  If ``width`` is given, exceeding it is also
    reported.
    """
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}")
    problems = check_edge_coverage(hypergraph, decomp)
    problems += check_connectedness(hypergraph, decomp)
    if kind in ("ghd", "hd"):
        problems += check_bag_covers(hypergraph, decomp, integral=True)
    elif kind == "fhd":
        problems += check_bag_covers(hypergraph, decomp, integral=False)
    if kind == "hd":
        problems += check_special_condition(hypergraph, decomp)
    if width is not None and decomp.width() > width + EPS:
        problems.append(
            f"width {decomp.width():.6g} exceeds requested bound {width:.6g}"
        )
    return problems


def validate(
    hypergraph: Hypergraph,
    decomp: Decomposition,
    kind: str = "ghd",
    width: float | None = None,
) -> None:
    """Raise ``ValueError`` listing all violations, or return silently."""
    problems = violations(hypergraph, decomp, kind=kind, width=width)
    if problems:
        raise ValueError(
            f"invalid {kind.upper()}:\n  " + "\n  ".join(problems)
        )


def is_tree_decomposition(hypergraph: Hypergraph, decomp: Decomposition) -> bool:
    """Conditions (1) and (2) only (λ/γ ignored)."""
    return not violations(hypergraph, decomp, kind="tree")


def is_ghd(
    hypergraph: Hypergraph, decomp: Decomposition, width: float | None = None
) -> bool:
    """Whether ``decomp`` is a valid generalized hypertree decomposition
    of ``hypergraph`` (of width <= ``width``, when given)."""
    return not violations(hypergraph, decomp, kind="ghd", width=width)


def is_hd(
    hypergraph: Hypergraph, decomp: Decomposition, width: float | None = None
) -> bool:
    """Whether ``decomp`` is a valid hypertree decomposition
    of ``hypergraph`` (of width <= ``width``, when given)."""
    return not violations(hypergraph, decomp, kind="hd", width=width)


def is_fhd(
    hypergraph: Hypergraph, decomp: Decomposition, width: float | None = None
) -> bool:
    """Whether ``decomp`` is a valid fractional hypertree decomposition
    of ``hypergraph`` (of width <= ``width``, when given)."""
    return not violations(hypergraph, decomp, kind="fhd", width=width)
