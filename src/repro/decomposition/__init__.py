"""Decomposition data structures, validators and transformations
(Definitions 2.4-2.6, 4.5, 5.18, 5.20, 6.2, 6.3 and Appendix A)."""

from .base import Decomposition, DecompositionNode
from .io import (
    decomposition_from_json,
    decomposition_to_dot,
    decomposition_to_json,
)
from .stitch import (
    TreeBuilder,
    replay_reductions,
    reroot,
    stitch_blocks,
)
from .transform import (
    make_bag_maximal,
    normalize,
    project_to_original,
    prune_redundant_nodes,
    repair_special_violations,
    special_condition_violations,
)
from .validation import (
    check_bag_covers,
    check_connectedness,
    check_edge_coverage,
    check_fnf,
    check_fractional_part_bounded,
    check_special_condition,
    check_weak_special_condition,
    is_bag_maximal,
    is_fhd,
    is_ghd,
    is_hd,
    is_strict,
    is_tree_decomposition,
    treecomp,
    validate,
    violations,
)

__all__ = [
    "Decomposition",
    "decomposition_to_json",
    "decomposition_from_json",
    "decomposition_to_dot",
    "DecompositionNode",
    "violations",
    "validate",
    "is_tree_decomposition",
    "is_ghd",
    "is_hd",
    "is_fhd",
    "check_edge_coverage",
    "check_connectedness",
    "check_bag_covers",
    "check_special_condition",
    "check_weak_special_condition",
    "check_fractional_part_bounded",
    "check_fnf",
    "is_strict",
    "is_bag_maximal",
    "treecomp",
    "make_bag_maximal",
    "prune_redundant_nodes",
    "normalize",
    "special_condition_violations",
    "repair_special_violations",
    "project_to_original",
    "TreeBuilder",
    "reroot",
    "stitch_blocks",
    "replay_reductions",
]
