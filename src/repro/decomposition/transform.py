"""Decomposition transformations from the paper.

* :func:`make_bag_maximal` — Lemma 4.6: exhaustively add vertices from
  ``B(γ_u) \\ B_u`` to bags while connectedness allows.
* :func:`prune_redundant_nodes` — drop nodes whose bag is contained in the
  parent's bag (the clean-up step of Example 4.7).
* :func:`normalize` — Theorem A.3: transform any (F)HD/GHD into
  (fractional) normal form of the same width.
* :func:`repair_special_violations` — the subedge repair of Example 4.4:
  turn a GHD of H into an HD of an edge-augmented H'.
* :func:`project_to_original` — map covers of an augmented hypergraph back
  to originator edges of H (the GHD ⇠ HD direction of Theorem 4.11).
"""

from __future__ import annotations

from collections.abc import Mapping

from ..covers import FractionalCover, covered_vertices
from ..hypergraph import Hypergraph, components
from .base import Decomposition

__all__ = [
    "make_bag_maximal",
    "prune_redundant_nodes",
    "normalize",
    "special_condition_violations",
    "repair_special_violations",
    "project_to_original",
]


class _MutableTree:
    """Mutable scratch representation used by the transformations."""

    def __init__(self, decomp: Decomposition) -> None:
        self.root = decomp.root
        self.bag: dict[str, frozenset] = {
            nid: decomp.bag(nid) for nid in decomp.node_ids
        }
        self.cover: dict[str, FractionalCover] = {
            nid: decomp.cover(nid) for nid in decomp.node_ids
        }
        self.parent: dict[str, str] = {
            nid: decomp.parent(nid)
            for nid in decomp.node_ids
            if decomp.parent(nid) is not None
        }
        self._fresh = 0

    def children(self, nid: str) -> list[str]:
        return [c for c, p in self.parent.items() if p == nid]

    def subtree(self, nid: str) -> list[str]:
        out = [nid]
        stack = [nid]
        while stack:
            cur = stack.pop()
            for c in self.children(cur):
                out.append(c)
                stack.append(c)
        return out

    def subtree_vertices(self, nid: str) -> frozenset:
        vs: set = set()
        for n in self.subtree(nid):
            vs.update(self.bag[n])
        return frozenset(vs)

    def remove_node(self, nid: str) -> None:
        par = self.parent.pop(nid)
        for c in self.children(nid):
            self.parent[c] = par
        del self.bag[nid]
        del self.cover[nid]

    def remove_subtree(self, nid: str) -> None:
        for n in self.subtree(nid):
            self.bag.pop(n)
            self.cover.pop(n)
            self.parent.pop(n, None)

    def fresh_id(self, base: str) -> str:
        self._fresh += 1
        return f"{base}#{self._fresh}"

    def freeze(self) -> Decomposition:
        nodes = [(nid, self.bag[nid], self.cover[nid]) for nid in self.bag]
        return Decomposition(nodes, parent=dict(self.parent), root=self.root)


def make_bag_maximal(
    hypergraph: Hypergraph, decomp: Decomposition
) -> Decomposition:
    """A bag-maximal decomposition of the same width (Lemma 4.6).

    Repeatedly picks a node u and a vertex ``v ∈ B(γ_u) \\ B_u`` whose
    addition to ``B_u`` keeps the connectedness condition — i.e. u lies in
    or adjacent to the subtree of nodes already containing v — and adds it.
    Covers are untouched, so the width is unchanged.
    """
    tree = _MutableTree(decomp)
    covered: dict[str, frozenset] = {
        nid: covered_vertices(hypergraph, tree.cover[nid]) for nid in tree.bag
    }
    changed = True
    while changed:
        changed = False
        occurrences: dict = {}
        for nid, bag in tree.bag.items():
            for v in bag:
                occurrences.setdefault(v, set()).add(nid)
        for nid in list(tree.bag):
            candidates = covered[nid] - tree.bag[nid]
            for v in sorted(candidates, key=str):
                occ = occurrences.get(v, set())
                if occ:
                    neighbourhood = set(occ)
                    for o in occ:
                        if o in tree.parent:
                            neighbourhood.add(tree.parent[o])
                        neighbourhood.update(tree.children(o))
                    if nid not in neighbourhood:
                        continue
                tree.bag[nid] = tree.bag[nid] | {v}
                occurrences.setdefault(v, set()).add(nid)
                changed = True
    return tree.freeze()


def prune_redundant_nodes(
    hypergraph: Hypergraph, decomp: Decomposition
) -> Decomposition:
    """Remove non-root nodes whose bag is contained in the parent's bag.

    Safe: edge coverage moves to the parent, and connectedness cannot
    break because every bag vertex of the removed node also sits in the
    parent.  (Example 4.7 uses this after bag-maximization.)
    """
    tree = _MutableTree(decomp)
    changed = True
    while changed:
        changed = False
        for nid in list(tree.bag):
            par = tree.parent.get(nid)
            if par is not None and tree.bag[nid] <= tree.bag[par]:
                tree.remove_node(nid)
                changed = True
                break
    return tree.freeze()


def normalize(
    hypergraph: Hypergraph, decomp: Decomposition, max_rounds: int | None = None
) -> Decomposition:
    """Transform into (fractional) normal form — Theorem A.3 / Def. 5.20.

    Width is preserved; bags only ever shrink (except for FNF condition 3,
    which adds vertices of ``B(γ_s) ∩ B_r`` already covered by γ_s).
    Works for HDs, GHDs and FHDs alike.
    """
    tree = _MutableTree(decomp)
    budget = max_rounds if max_rounds is not None else (
        10 * (len(decomp) + 1) * (hypergraph.num_vertices + 1) + 100
    )

    queue = [tree.root]
    while queue:
        r = queue.pop(0)
        stable = False
        while not stable:
            budget -= 1
            if budget < 0:
                raise RuntimeError("normalization did not converge (bug)")
            stable = True
            for s in tree.children(r):
                if _normalize_child(hypergraph, tree, r, s):
                    stable = False
                    break
        # FNF condition 3: pull parent-bag vertices covered by γ_s into B_s.
        for s in tree.children(r):
            covered = covered_vertices(hypergraph, tree.cover[s])
            tree.bag[s] = tree.bag[s] | (covered & tree.bag[r])
        queue.extend(tree.children(r))
    return tree.freeze()


def _normalize_child(
    hypergraph: Hypergraph, tree: _MutableTree, r: str, s: str
) -> bool:
    """One normalization step on child s of r; True if the tree changed."""
    bag_r = tree.bag[r]
    subtree_vs = tree.subtree_vertices(s)
    comps = [
        c for c in components(hypergraph, bag_r) if c & subtree_vs
    ]

    satisfies_cond1 = (
        len(comps) == 1
        and subtree_vs == comps[0] | (bag_r & tree.bag[s])
    )
    if satisfies_cond1:
        if not (tree.bag[s] & comps[0]):
            # Condition 2 violated => B_s ⊆ B_r: splice s out.
            tree.remove_node(s)
            return True
        return False

    if not comps:
        # V(T_s) ⊆ B_r: the whole subtree is redundant.
        tree.remove_subtree(s)
        return True

    # Condition 1 violated: split T_s into one tree per component.
    old_nodes = tree.subtree(s)
    for comp in comps:
        members = [n for n in old_nodes if tree.bag[n] & comp]
        if not members:
            continue
        member_set = set(members)
        clone: dict[str, str] = {}
        for n in members:
            clone[n] = tree.fresh_id(n)
        for n in members:
            new_id = clone[n]
            tree.bag[new_id] = tree.bag[n] & (comp | bag_r)
            tree.cover[new_id] = tree.cover[n]
            old_parent = tree.parent.get(n)
            if n == s or old_parent not in member_set:
                # nodes(C) induces a subtree of T_s, so a member whose tree
                # parent is outside the member set is that subtree's root.
                tree.parent[new_id] = r
            else:
                tree.parent[new_id] = clone[old_parent]
    tree.remove_subtree(s)
    return True


def special_condition_violations(
    hypergraph: Hypergraph, decomp: Decomposition
) -> list[tuple[str, str, frozenset]]:
    """All SCVs: triples (node, edge in supp(λ_u), offending vertices).

    An SCV is a node u, an edge e with λ_u(e) = 1 and vertices
    ``v ∈ e ∩ V(T_u) \\ B_u`` (Section 4).
    """
    out = []
    for nid in decomp.node_ids:
        subtree_vs = decomp.subtree_vertices(nid)
        for edge_name in decomp.cover(nid).support:
            e = hypergraph.edge(edge_name)
            offenders = (e & subtree_vs) - decomp.bag(nid)
            if offenders:
                out.append((nid, edge_name, offenders))
    return out


def repair_special_violations(
    hypergraph: Hypergraph, decomp: Decomposition
) -> tuple[Hypergraph, Decomposition]:
    """Repair all SCVs of a GHD by swapping edges for subedges (Ex. 4.4).

    Every offending cover edge e at node u is replaced by the subedge
    ``e ∩ B_u``, which is added to the hypergraph (named ``sub:<e>:<n>``).
    Returns the augmented hypergraph H' and a decomposition that is an HD
    of H' of the same width.
    """
    new_edges: dict[str, frozenset] = {}

    def subedge_name(content: frozenset) -> str:
        label = "sub:" + "|".join(sorted(map(str, content)))
        new_edges[label] = content
        return label

    nodes = []
    for nid in decomp.node_ids:
        bag = decomp.bag(nid)
        subtree_vs = decomp.subtree_vertices(nid)
        weights: dict[str, float] = {}
        for edge_name, w in decomp.cover(nid).weights.items():
            e = hypergraph.edge(edge_name)
            if (e & subtree_vs) - bag:
                trimmed = e & bag
                if trimmed:
                    name = subedge_name(trimmed)
                    weights[name] = weights.get(name, 0.0) + w
            else:
                weights[edge_name] = weights.get(edge_name, 0.0) + w
        nodes.append((nid, bag, FractionalCover(weights)))

    augmented = hypergraph.with_edges(new_edges)
    repaired = Decomposition(
        nodes,
        parent={
            nid: decomp.parent(nid)
            for nid in decomp.node_ids
            if decomp.parent(nid) is not None
        },
        root=decomp.root,
    )
    return augmented, repaired


def project_to_original(
    original: Hypergraph,
    augmented: Hypergraph,
    decomp: Decomposition,
    originator_map: Mapping[str, str] | None = None,
) -> Decomposition:
    """Replace augmented-only cover edges by originators from ``original``.

    Every cover edge that exists only in the augmented hypergraph must be
    a subedge of some original edge; its weight moves to one such
    originator (smallest by name, or per ``originator_map``).  Bags are
    unchanged, so the result is a GHD/FHD of the original hypergraph of
    the same width (the easy direction of Theorem 4.11 / Theorem 5.22).
    """
    original_names = frozenset(original.edge_names)
    nodes = []
    for nid in decomp.node_ids:
        weights: dict[str, float] = {}
        for edge_name, w in decomp.cover(nid).weights.items():
            if edge_name in original_names:
                target = edge_name
            elif originator_map is not None and edge_name in originator_map:
                target = originator_map[edge_name]
            else:
                content = augmented.edge(edge_name)
                candidates = sorted(
                    e for e in original_names if content <= original.edge(e)
                )
                if not candidates:
                    raise ValueError(
                        f"edge {edge_name!r} has no originator in the original"
                    )
                target = candidates[0]
            weights[target] = weights.get(target, 0.0) + w
        nodes.append((nid, decomp.bag(nid), FractionalCover(weights)))
    return Decomposition(
        nodes,
        parent={
            nid: decomp.parent(nid)
            for nid in decomp.node_ids
            if decomp.parent(nid) is not None
        },
        root=decomp.root,
    )
