"""Decomposition serialization: JSON round trips and Graphviz export.

Downstream systems want to persist and display decompositions; this
module provides a stable JSON schema (mirroring
:meth:`repro.decomposition.Decomposition.as_dict`) and a DOT rendering
whose nodes show bags and covers.
"""

from __future__ import annotations

import json

from ..covers import FractionalCover
from .base import Decomposition

__all__ = [
    "decomposition_to_json",
    "decomposition_from_json",
    "decomposition_to_dot",
]


def decomposition_to_json(decomposition: Decomposition, indent: int = 2) -> str:
    """Serialize a decomposition to JSON (stable key order)."""
    return json.dumps(decomposition.as_dict(), indent=indent, sort_keys=True)


def decomposition_from_json(text: str) -> Decomposition:
    """Parse a decomposition serialized by :func:`decomposition_to_json`.

    Raises ``ValueError`` on malformed payloads (missing keys, bag or
    cover of the wrong shape, broken tree structure).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    for key in ("root", "nodes", "parent"):
        if key not in payload:
            raise ValueError(f"missing key {key!r} in decomposition JSON")
    nodes = []
    for node_id, entry in payload["nodes"].items():
        if "bag" not in entry or "cover" not in entry:
            raise ValueError(f"node {node_id!r} lacks bag/cover")
        cover = FractionalCover(
            {str(e): float(w) for e, w in entry["cover"].items()}
        )
        nodes.append((node_id, frozenset(entry["bag"]), cover))
    return Decomposition(
        nodes, parent=dict(payload["parent"]), root=payload["root"]
    )


def decomposition_to_dot(
    decomposition: Decomposition, title: str = "decomposition"
) -> str:
    """Render as Graphviz DOT: one box per node with bag and cover."""
    lines = [f'digraph "{title}" {{', "  node [shape=box, fontsize=10];"]
    for nid in decomposition.preorder():
        bag = ",".join(sorted(map(str, decomposition.bag(nid))))
        cover = ", ".join(
            f"{e}:{w:g}"
            for e, w in sorted(decomposition.cover(nid).weights.items())
        )
        label = f"{nid}\\n{{{bag}}}\\n[{cover}]"
        lines.append(f'  "{nid}" [label="{label}"];')
    for nid in decomposition.node_ids:
        parent = decomposition.parent(nid)
        if parent is not None:
            lines.append(f'  "{parent}" -> "{nid}";')
    lines.append("}")
    return "\n".join(lines)
