"""The always-on decomposition daemon behind ``repro serve``.

One asyncio event loop accepts HTTP/1.1 connections (hand-rolled over
``asyncio.start_server`` — the standard library's ``http.server`` is
thread-per-request and its asyncio story needs third-party packages,
which this repo does not take).  Solves run on a bounded thread pool;
the event loop itself never blocks on a solve.

Three serving policies live here, each load-bearing for the test
harness in ``tests/test_serve.py`` and benchmark E23:

* **Admission control** — at most ``max_in_flight`` solves run
  concurrently and at most ``max_queue`` more distinct computations
  may wait.  Beyond that, new work is refused with HTTP 429
  immediately (cheap rejection beats unbounded queueing); once
  :meth:`DecompositionServer.stop` begins draining, new work gets 503
  while admitted solves finish.
* **Request coalescing** — requests are identified by
  :func:`~.protocol.request_key` (canonical hypergraph hash, kind,
  solver mode, parameter fingerprint).  N concurrent identical
  requests share ONE scheduler run and all N receive its answer; the
  ``coalesced`` counter and the single ``solves`` increment prove it.
* **Persistent store** — every solve runs through
  :class:`~repro.pipeline.batch.BatchScheduler` with the server's
  :class:`~repro.store.ResultStore`, so verdicts survive restarts and
  a restarted daemon answers a repeat-heavy workload with zero LP
  solves and zero exact check tasks (``lp_solves`` / ``tasks_run`` in
  ``GET /stats`` stay flat — asserted by E23).

Failure isolation is per computation: a request whose solve raises
resolves to HTTP 422 for its callers (including coalesced ones —
they asked for the same computation) and disturbs nothing else.

``POST /query`` rides the same machinery end-to-end: a conjunctive
query's *plan* (the decomposition of its hypergraph, resolved by
:class:`~repro.cqcsp.planner.QueryPlanner`) is a computation like any
other — admission-controlled, coalesced on the plan key, persisted in
the store — while Yannakakis execution over the request's own
relations always runs per request.  A restarted daemon therefore
serves repeated query shapes *plan-warm*: zero LP solves, zero exact
check tasks, answers byte-identical to the cold run (asserted by
benchmark E24).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..cqcsp.planner import QueryPlanner
from ..pipeline.batch import BatchScheduler
from ..pipeline.solve import EXECUTORS
from ..store import ResultStore
from .protocol import (
    ProtocolError,
    answer_payload,
    query_answer_payload,
    query_key,
    query_request_from_payload,
    request_from_payload,
    request_key,
)

__all__ = ["DecompositionServer", "ServerStats"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request body; a declared Content-Length above this is
#: refused with 413 before a single body byte is buffered.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Seconds a client gets to deliver its complete request (line, headers
#: and body).  Covers only the *read* — solves may run far longer.
DEFAULT_READ_TIMEOUT = 30.0


class _BadRequest(Exception):
    """A request refused while reading it; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServerStats:
    """Lifetime counters of one :class:`DecompositionServer`.

    Attributes
    ----------
    requests : int
        Solve requests received (including rejected ones).
    answers : int
        Requests answered with a solve result (HTTP 200).
    errors : int
        Requests whose computation failed (HTTP 422).
    coalesced : int
        Requests that joined an already-in-flight identical
        computation instead of starting their own.
    rejected_busy : int
        Requests refused with 429 (admission control full).
    rejected_draining : int
        Requests refused with 503 (server shutting down).
    solves : int
        Scheduler runs actually executed — with K identical
        concurrent requests this increments once, not K times.
    store_instance_hits, store_blocks_seeded : int
        Store activity summed over all scheduler runs.
    lp_solves, tasks_run : int
        Engine LP solves and exact check tasks summed over all runs —
        solve requests and plan solves alike; both stay at 0 when a
        warm store answers everything (E23 / E24).
    queries : int
        Query requests received on ``POST /query`` (including
        rejected ones).
    query_answers : int
        Query requests answered with an answer set (HTTP 200).
    plans_computed : int
        Plan computations resolved — with K identical concurrent
        queries this increments once, not K times (they coalesce on
        the plan key), and an in-memory plan-cache replay still
        counts as one resolution.
    plan_store_hits : int
        Plan solves answered by a persistent store record instead of
        running the exact engines (the plan-warm path E24 measures).
    """

    requests: int = 0
    answers: int = 0
    errors: int = 0
    coalesced: int = 0
    rejected_busy: int = 0
    rejected_draining: int = 0
    solves: int = 0
    store_instance_hits: int = 0
    store_blocks_seeded: int = 0
    lp_solves: int = 0
    tasks_run: int = 0
    queries: int = 0
    query_answers: int = 0
    plans_computed: int = 0
    plan_store_hits: int = 0

    def as_dict(self) -> dict:
        """The counters as a JSON-ready dictionary."""
        return {
            "requests": self.requests,
            "answers": self.answers,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "rejected_busy": self.rejected_busy,
            "rejected_draining": self.rejected_draining,
            "solves": self.solves,
            "store_instance_hits": self.store_instance_hits,
            "store_blocks_seeded": self.store_blocks_seeded,
            "lp_solves": self.lp_solves,
            "tasks_run": self.tasks_run,
            "queries": self.queries,
            "query_answers": self.query_answers,
            "plans_computed": self.plans_computed,
            "plan_store_hits": self.plan_store_hits,
        }


class DecompositionServer:
    """Asyncio HTTP front-end over the batch scheduler.

    Parameters
    ----------
    host, port : str, int
        Listen address.  ``port=0`` (the default) picks a free port;
        read :attr:`port` after :meth:`start`.
    store : ResultStore or str or None
        Persistent result store (or its directory).  ``None`` serves
        from memoryless schedulers — coalescing still works, restarts
        start cold.
    fsync : bool
        Passed to the store when opened from a path: fsync every
        appended record.
    jobs : int
        Worker count *inside* each scheduler run (per-solve
        parallelism; across-solve parallelism is ``max_in_flight``).
    executor : str
        Pool type of every scheduler run — one of
        :data:`~repro.pipeline.solve.EXECUTORS`.  ``"remote"`` makes
        the daemon own a :class:`~repro.dist.registry.WorkerRegistry`
        (the process-wide default one, bound to ``listen``): block
        tasks of every admitted solve dispatch to whatever ``repro
        worker`` processes have dialed in, degrading to a local pool
        while none have.
    listen : str or None
        ``HOST:PORT`` the worker registry binds when
        ``executor="remote"`` (default: the ``REPRO_WORKER_LISTEN``
        environment variable, else an ephemeral loopback port); read
        the resolved endpoint from ``registry.address``.
    solver, bounds, preprocess : str
        Scheduler configuration applied to every request (requests may
        still override ``solver`` individually).
    max_in_flight : int
        Concurrent scheduler runs (thread-pool width).
    max_queue : int
        Additional distinct computations allowed to wait; beyond
        ``max_in_flight + max_queue`` new computations get HTTP 429.
    max_body : int
        Largest accepted request body in bytes; a Content-Length above
        it is refused with 413 before any body byte is buffered, so a
        client cannot make the daemon allocate gigabytes.
    read_timeout : float or None
        Seconds a client gets to deliver its complete request; slower
        clients get 408 and the connection is closed, so held-open
        sockets cannot pin file descriptors indefinitely.  Only the
        read is bounded — admitted solves may run arbitrarily long.
        ``None`` disables the limit (tests only).

    Endpoints: ``POST /solve``, ``POST /query``, ``GET /stats``,
    ``GET /healthz``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: ResultStore | str | None = None,
        fsync: bool = False,
        jobs: int | None = None,
        executor: str = "thread",
        listen: str | None = None,
        solver: str = "bb",
        bounds: str = "portfolio",
        preprocess: str = "full",
        max_in_flight: int = 4,
        max_queue: int = 32,
        max_body: int = DEFAULT_MAX_BODY,
        read_timeout: float | None = DEFAULT_READ_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self._owns_store = store is not None and not isinstance(
            store, ResultStore
        )
        self.store = (
            ResultStore(store, fsync=fsync) if self._owns_store else store
        )
        self.jobs = jobs
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}; got {executor!r}"
            )
        self.executor = executor
        self.registry = None
        if executor == "remote":
            # The daemon owns (the process default) worker registry so
            # every scheduler run shares one fleet; `repro worker
            # --connect <registry.address>` joins it at any time.
            from ..dist import get_registry

            self.registry = get_registry(listen=listen)
        self.solver = solver
        self.bounds = bounds
        self.preprocess = preprocess
        self.max_in_flight = max(1, int(max_in_flight))
        self.max_queue = max(0, int(max_queue))
        self.max_body = max(0, int(max_body))
        self.read_timeout = read_timeout
        self.stats = ServerStats()
        # Plans are served by one planner so the in-memory plan LRU is
        # shared across requests; it reuses the server's store, solver
        # and pool configuration for its plan solves.
        self.planner = QueryPlanner(
            self.store,
            solver=self.solver,
            bounds=self.bounds,
            preprocess=self.preprocess,
            jobs=self.jobs,
            executor=self.executor,
        )
        self._pending: dict[tuple, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_in_flight, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain and shut down: finish admitted solves, refuse new ones."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pending:
            await asyncio.gather(
                *self._pending.values(), return_exceptions=True
            )
        self._executor.shutdown(wait=True)
        if self._owns_store and self.store is not None:
            self.store.close()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, payload = await self._handle_request(reader)
            body = json.dumps(payload).encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - racing close
                pass

    async def _handle_request(self, reader) -> tuple[int, dict]:
        # Only the *read* is time- and size-bounded here; the solve in
        # _route may legitimately run far longer than any read timeout.
        try:
            read = self._read_request(reader)
            if self.read_timeout is not None:
                read = asyncio.wait_for(read, self.read_timeout)
            method, path, body = await read
        except asyncio.TimeoutError:
            return 408, {"error": "timed out reading the request"}
        except _BadRequest as exc:
            return exc.status, {"error": str(exc)}
        except ValueError:  # StreamReader line longer than its limit
            return 400, {"error": "request line or header too long"}
        return await self._route(method, path, body)

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _BadRequest(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(400, "bad Content-Length") from None
        if length < 0:
            raise _BadRequest(400, "bad Content-Length")
        if length > self.max_body:
            raise _BadRequest(
                413, f"request body exceeds {self.max_body} bytes"
            )
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, {"ok": True, "draining": self._draining}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self._stats_payload()
        if path in ("/solve", "/query"):
            if method != "POST":
                return 405, {"error": "POST only"}
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"request body is not JSON: {exc}"}
            if path == "/solve":
                return await self._solve(payload)
            return await self._query(payload)
        return 404, {"error": f"unknown path {path!r}"}

    def _stats_payload(self) -> dict:
        return {
            "server": self.stats.as_dict(),
            "store": (
                None if self.store is None else self.store.stats.as_dict()
            ),
            "workers": (
                None
                if self.registry is None
                else {
                    "address": self.registry.address,
                    "count": self.registry.worker_count(),
                    "capacity": self.registry.total_capacity(),
                    "workers": self.registry.workers(),
                }
            ),
            "config": {
                "jobs": self.jobs,
                "executor": self.executor,
                "solver": self.solver,
                "bounds": self.bounds,
                "preprocess": self.preprocess,
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "store": (
                    None if self.store is None else str(self.store.path)
                ),
            },
            "pending": len(self._pending),
        }

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    async def _solve(self, payload) -> tuple[int, dict]:
        self.stats.requests += 1
        try:
            request = request_from_payload(payload)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        key = request_key(request, self.solver)
        future = self._pending.get(key)
        coalesced = future is not None
        if coalesced:
            self.stats.coalesced += 1
        else:
            if self._draining:
                self.stats.rejected_draining += 1
                return 503, {"error": "server is draining"}
            if len(self._pending) >= self.max_in_flight + self.max_queue:
                self.stats.rejected_busy += 1
                return 429, {"error": "too many computations in flight"}
            future = asyncio.get_running_loop().create_future()
            self._pending[key] = future
            asyncio.get_running_loop().create_task(
                self._run_pending(key, request, future)
            )
        try:
            answer, from_store = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.errors += 1
            return 422, {
                "error": f"{type(exc).__name__}: {exc}",
                "kind": request.kind,
                "label": request.name,
                "coalesced": coalesced,
            }
        self.stats.answers += 1
        return 200, {
            "ok": True,
            "kind": request.kind,
            "label": request.name,
            "answer": answer,
            "coalesced": coalesced,
            "from_store": from_store,
        }

    async def _run_pending(self, key, request, future) -> None:
        """Execute one admitted computation and resolve its future."""
        loop = asyncio.get_running_loop()
        try:
            answer, stats = await loop.run_in_executor(
                self._executor, self._run_batch, request
            )
        except Exception as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # consumed here; waiters re-raise a copy
        else:
            self.stats.solves += 1
            self.stats.store_instance_hits += stats.store_instance_hits
            self.stats.store_blocks_seeded += stats.store_blocks_seeded
            self.stats.lp_solves += stats.lp_solves
            self.stats.tasks_run += stats.tasks_run
            if not future.cancelled():
                future.set_result(
                    (answer, stats.store_instance_hits > 0)
                )
        finally:
            self._pending.pop(key, None)

    def _run_batch(self, request):
        """One scheduler run for one computation (worker thread).

        A method (not a closure) so the test harness can wrap it — the
        concurrency tests gate it on an event to make coalescing
        windows deterministic.
        """
        scheduler = BatchScheduler(
            jobs=self.jobs,
            preprocess=self.preprocess,
            executor=self.executor,
            solver=self.solver,
            bounds=self.bounds,
            store=self.store,
        )
        result = scheduler.submit(request)
        stats = scheduler.run()
        if result.error is not None:
            raise result.error
        return answer_payload(request.kind, result.value), stats

    # ------------------------------------------------------------------
    # Query answering (decompositions as cached plans)
    # ------------------------------------------------------------------
    async def _query(self, payload) -> tuple[int, dict]:
        """Answer one CQ: coalesce on the plan key, execute per request.

        Planning and execution are deliberately split: the plan (the
        query-shape solve) coalesces and caches exactly like ``/solve``
        computations, while execution always runs per request — two
        queries of one shape may carry different relations *and
        different query semantics* (head, constants, argument order),
        so the shared plan is rebound to each request's own query
        before Yannakakis runs; only the decomposition is shared.
        """
        self.stats.queries += 1
        try:
            query, database, label = query_request_from_payload(payload)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        label = label or query.name
        key = query_key(query, self.solver)
        future = self._pending.get(key)
        coalesced = future is not None
        if coalesced:
            self.stats.coalesced += 1
        else:
            if self._draining:
                self.stats.rejected_draining += 1
                return 503, {"error": "server is draining"}
            if len(self._pending) >= self.max_in_flight + self.max_queue:
                self.stats.rejected_busy += 1
                return 429, {"error": "too many computations in flight"}
            future = asyncio.get_running_loop().create_future()
            self._pending[key] = future
            asyncio.get_running_loop().create_task(
                self._run_pending_plan(key, query, future)
            )
        try:
            plan, info = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.errors += 1
            return 422, {
                "error": f"{type(exc).__name__}: {exc}",
                "label": label,
                "stage": "plan",
                "coalesced": coalesced,
            }
        try:
            answer = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._run_query, query, plan, database
            )
        except Exception as exc:
            self.stats.errors += 1
            return 422, {
                "error": f"{type(exc).__name__}: {exc}",
                "label": label,
                "stage": "execute",
                "coalesced": coalesced,
            }
        self.stats.query_answers += 1
        response = {
            "ok": True,
            "label": label,
            "coalesced": coalesced,
            "plan_from_store": info.from_store,
            "plan_cached": info.cache_hit,
        }
        response.update(answer)
        return 200, response

    async def _run_pending_plan(self, key, query, future) -> None:
        """Resolve one admitted plan computation (mirrors _run_pending)."""
        loop = asyncio.get_running_loop()
        try:
            plan, info = await loop.run_in_executor(
                self._executor, self._run_plan, query
            )
        except Exception as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # consumed here; waiters re-raise a copy
        else:
            self.stats.plans_computed += 1
            self.stats.plan_store_hits += 1 if info.from_store else 0
            self.stats.lp_solves += info.lp_solves
            self.stats.tasks_run += info.tasks_run
            if not future.cancelled():
                future.set_result((plan, info))
        finally:
            self._pending.pop(key, None)

    def _run_plan(self, query):
        """One plan resolution for one query shape (worker thread).

        A method (not a closure) for the same reason as
        :meth:`_run_batch`: the concurrency tests gate it to hold the
        coalescing window open deterministically.
        """
        return self.planner.plan_detailed(query)

    def _run_query(self, query, plan, database):
        """One Yannakakis execution (worker thread), wire-encoded.

        ``plan`` may have been computed for (and is bound to) a
        coalesced sibling's query of the same shape — the coalescing
        key identifies the *plan*, not the query.  Rebinding makes
        execution run THIS request's head, constants and argument
        order over the shared decomposition; without it, a coalesced
        request got HTTP 200 with the sibling's answers.
        """
        return query_answer_payload(
            self.planner.execute(plan.rebound(query), database)
        )
