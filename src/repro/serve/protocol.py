"""Wire protocol of the ``repro serve`` daemon.

Everything on the wire is JSON over HTTP/1.1 — no dependency beyond
the standard library on either side.  A solve request posts::

    {"hypergraph": {"edges": {"ab": ["a", "b"], ...},
                    "vertices": [...],          # optional isolated ones
                    "name": "query-17"},        # optional
     "kind": "ghw",                             # any BATCH_KINDS entry
     "params": {"k": 2, ...},                   # optional solver params
     "solver": "sat",                           # optional mode override
     "label": "q17"}                            # optional display name

and receives the same answer encoding the persistent store uses for
instance records (:mod:`repro.store`): ``{"width", "witness"}`` for
width kinds, ``{"accepted", "witness"}`` for check kinds and
``{"lower", "width", "witness"}`` for bounds — so a response can be
re-validated client-side with
:func:`repro.store.checked_witness` if desired.

:func:`request_key` is the coalescing identity: two requests with the
same canonical hypergraph hash, kind, effective solver mode and
parameter fingerprint are *the same computation* and share one
scheduler run server-side.

A query request (``POST /query``) posts a CQ plus its relations::

    {"query": "q(x, z) :- r(x, y), r(y, z).",
     "relations": {"r": {"attributes": ["a", "b"],
                         "rows": [[1, 2], [2, 3]]}},
     "label": "two-hop"}                        # optional display name

and receives ``{"width", "answers": {"attributes", "rows"}, "cost",
"satisfied"}``.  Its coalescing identity (:func:`query_key`) covers
only the *plan* — the query-shape solve — because two queries with
the same shape but different data must share the decomposition work,
never the answers.
"""

from __future__ import annotations

from ..cqcsp import parse_cq, relation_from_payload
from ..cqcsp.planner import plan_key
from ..hypergraph import Hypergraph
from ..pipeline.batch import _KIND_TABLE, BATCH_KINDS, BatchRequest
from ..pipeline.solve import SOLVER_MODES
from ..store import params_fingerprint

__all__ = [
    "ProtocolError",
    "hypergraph_to_payload",
    "hypergraph_from_payload",
    "request_from_payload",
    "request_to_payload",
    "request_key",
    "answer_payload",
    "query_request_from_payload",
    "query_key",
    "query_answer_payload",
]


class ProtocolError(ValueError):
    """A malformed request payload (mapped to HTTP 400)."""


def hypergraph_to_payload(hypergraph: Hypergraph) -> dict:
    """Encode a hypergraph as the wire's plain-JSON shape."""
    payload: dict = {
        "edges": {
            name: sorted(map(str, vs))
            for name, vs in hypergraph.edges.items()
        }
    }
    isolated = hypergraph.isolated_vertices()
    if isolated:
        payload["vertices"] = sorted(map(str, isolated))
    if hypergraph.name:
        payload["name"] = hypergraph.name
    return payload


def hypergraph_from_payload(obj) -> Hypergraph:
    """Decode the wire shape back into a :class:`Hypergraph`.

    Raises
    ------
    ProtocolError
        On any malformed shape — wrong types, empty edges, missing
        keys.  Vertices arrive as strings (the wire is JSON), which is
        also what keeps store keys and witnesses round-trippable.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("hypergraph must be a JSON object")
    edges = obj.get("edges")
    if not isinstance(edges, dict) or not edges:
        raise ProtocolError("hypergraph needs a non-empty 'edges' object")
    for name, vs in edges.items():
        if not isinstance(vs, (list, tuple)) or not vs:
            raise ProtocolError(f"edge {name!r} must be a non-empty list")
        if not all(isinstance(v, str) for v in vs):
            raise ProtocolError(f"edge {name!r} has non-string vertices")
    declared = obj.get("vertices", [])
    if not isinstance(declared, (list, tuple)) or not all(
        isinstance(v, str) for v in declared
    ):
        raise ProtocolError("'vertices' must be a list of strings")
    name = obj.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("'name' must be a string")
    try:
        return Hypergraph(edges, vertices=declared, name=name)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def request_from_payload(obj) -> BatchRequest:
    """Decode one solve request; raises :class:`ProtocolError`."""
    if not isinstance(obj, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(obj) - {"hypergraph", "kind", "params", "solver", "label"}
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    hypergraph = hypergraph_from_payload(obj.get("hypergraph"))
    kind = obj.get("kind", "ghw")
    if kind not in BATCH_KINDS:
        raise ProtocolError(f"kind must be one of {BATCH_KINDS}; got {kind!r}")
    params = obj.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    solver = obj.get("solver")
    if solver is not None and solver not in SOLVER_MODES:
        raise ProtocolError(
            f"solver must be one of {SOLVER_MODES}; got {solver!r}"
        )
    label = obj.get("label")
    if label is not None and not isinstance(label, str):
        raise ProtocolError("'label' must be a string")
    return BatchRequest(
        hypergraph, kind=kind, params=params, label=label, solver=solver
    )


def request_to_payload(request: BatchRequest) -> dict:
    """Encode a :class:`~repro.pipeline.batch.BatchRequest` for the wire."""
    payload: dict = {
        "hypergraph": hypergraph_to_payload(request.hypergraph),
        "kind": request.kind,
    }
    if request.params:
        payload["params"] = dict(request.params)
    if request.solver is not None:
        payload["solver"] = request.solver
    if request.label is not None:
        payload["label"] = request.label
    return payload


def request_key(request: BatchRequest, default_solver: str) -> tuple:
    """The coalescing identity of a request.

    Built from the canonical (process-stable) hypergraph hash, the
    request kind, the *effective* solver mode and the parameter
    fingerprint — exactly the dimensions the result store keys on, so
    coalesced requests are also the ones that would share a store
    record.
    """
    return (
        request.hypergraph.canonical_hash(),
        request.kind,
        request.solver if request.solver is not None else default_solver,
        params_fingerprint(request.params),
    )


def query_request_from_payload(obj) -> tuple:
    """Decode one query request into ``(query, database, label)``.

    Raises :class:`ProtocolError` (mapped to HTTP 400) on unknown
    fields, an unparseable CQ, or malformed relations — before any
    planning or execution happens.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(obj) - {"query", "relations", "label"}
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    text = obj.get("query")
    if not isinstance(text, str):
        raise ProtocolError("'query' must be a CQ string")
    try:
        query = parse_cq(text)
    except ValueError as exc:
        raise ProtocolError(f"cannot parse query: {exc}") from exc
    relations = obj.get("relations")
    if not isinstance(relations, dict) or not relations:
        raise ProtocolError("'relations' must be a non-empty object")
    database = {}
    for name, payload in relations.items():
        try:
            database[name] = relation_from_payload(name, payload)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    label = obj.get("label")
    if label is not None and not isinstance(label, str):
        raise ProtocolError("'label' must be a string")
    return query, database, label


def query_key(query, default_solver: str) -> tuple:
    """The coalescing identity of a query request — its *plan*.

    A tagged :func:`repro.cqcsp.planner.plan_key`: canonical query-
    hypergraph hash × plan kind × solver × params fingerprint.  The
    data is deliberately absent — N concurrent queries of one shape
    share one plan solve and then each execute on their own relations.
    The key identifies the *plan* only: distinct queries (different
    head, constants or argument order over the same hypergraph) also
    coalesce, which is safe because the server rebinds the shared plan
    to each request's own parsed query before executing — a coalesced
    caller never runs a sibling's query.  The tag keeps plan futures
    distinct from ``/solve`` futures in the server's single pending
    map (their resolved values differ).
    """
    return ("query-plan",) + plan_key(query, default_solver)


def query_answer_payload(result) -> dict:
    """Encode a :class:`~repro.cqcsp.planner.QueryResult` for the wire.

    Rows are sorted deterministically, so equal answer sets encode
    byte-identically — the property benchmark E24 asserts between cold
    and plan-warm serving.
    """
    from ..cqcsp import relation_to_payload

    return {
        "width": result.plan.width,
        "answers": relation_to_payload(result.answers),
        "cost": result.cost,
        "satisfied": result.satisfied,
    }


def answer_payload(kind: str, value) -> dict:
    """Encode a resolved batch value in the store's instance schema."""
    mode = _KIND_TABLE[kind][2]
    if mode == "check":
        return {
            "accepted": value is not None,
            "witness": None if value is None else value.as_dict(),
        }
    if kind == "bounds":
        lower, width, witness = value
        return {
            "lower": float(lower),
            "width": float(width),
            "witness": witness.as_dict(),
        }
    width, witness = value
    return {"width": width, "witness": witness.as_dict()}
