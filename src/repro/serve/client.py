"""Blocking client helper for the ``repro serve`` daemon.

Thin on purpose: one :class:`http.client.HTTPConnection` per call (so
one client object is safe to share across threads — the concurrency
stress tests hammer a single instance), JSON in, JSON out, and a
:class:`ServeError` carrying the HTTP status and the server's error
payload on any non-200 answer.
"""

from __future__ import annotations

import http.client
import json

from collections.abc import Mapping

from ..cqcsp import ConjunctiveQuery, Relation, relation_to_payload
from ..hypergraph import Hypergraph
from ..pipeline.batch import BatchRequest
from .protocol import request_to_payload

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-200 answer from the daemon.

    Attributes
    ----------
    status : int
        The HTTP status (400 protocol error, 422 failed computation,
        429 admission refused, 503 draining).
    payload : dict
        The server's JSON error body (``{"error": ...}``).
    """

    def __init__(self, status: int, payload: dict) -> None:
        error = (
            payload.get("error", "") if isinstance(payload, dict) else ""
        )
        super().__init__(f"HTTP {status}: {error}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Call a running decomposition daemon.

    Parameters
    ----------
    host, port : str, int
        The daemon's listen address.
    timeout : float, optional
        Per-call socket timeout in seconds (default 300 — solves can
        legitimately take a while; admission rejections return fast).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            data = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if data else {}
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            if response.status != 200:
                raise ServeError(response.status, payload)
            return payload
        finally:
            connection.close()

    def solve(
        self,
        hypergraph: Hypergraph,
        kind: str = "ghw",
        params: dict | None = None,
        label: str | None = None,
        solver: str | None = None,
    ) -> dict:
        """Solve one width query on the daemon.

        Returns the full response payload: ``{"ok", "kind", "label",
        "answer", "coalesced", "from_store"}`` with the answer in the
        store's instance-record schema.

        Raises
        ------
        ServeError
            On any non-200 status — inspect ``.status`` to tell
            admission rejections (429/503) from computation failures
            (422) and malformed requests (400).
        """
        request = BatchRequest(
            hypergraph,
            kind=kind,
            params=dict(params or {}),
            label=label,
            solver=solver,
        )
        return self._call("POST", "/solve", request_to_payload(request))

    def query(
        self,
        query: str | ConjunctiveQuery,
        relations: Mapping[str, object],
        label: str | None = None,
    ) -> dict:
        """Answer one conjunctive query on the daemon.

        ``query`` is CQ text (or a :class:`ConjunctiveQuery`, sent as
        its text form); ``relations`` maps relation names to
        :class:`~repro.cqcsp.Relation` objects or pre-encoded
        ``{"attributes", "rows"}`` payloads.  Returns the full
        response: ``{"ok", "label", "width", "answers", "cost",
        "satisfied", "coalesced", "plan_from_store", "plan_cached"}``.

        Raises
        ------
        ServeError
            On any non-200 status, same taxonomy as :meth:`solve`.
        """
        encoded = {
            name: (
                relation_to_payload(rel)
                if isinstance(rel, Relation)
                else rel
            )
            for name, rel in relations.items()
        }
        body: dict = {"query": str(query), "relations": encoded}
        if label is not None:
            body["label"] = label
        return self._call("POST", "/query", body)

    def stats(self) -> dict:
        """The daemon's ``GET /stats`` payload (server/store/config)."""
        return self._call("GET", "/stats")

    def health(self) -> dict:
        """The daemon's ``GET /healthz`` payload."""
        return self._call("GET", "/healthz")
