"""Always-on serving: the ``repro serve`` daemon and its client.

The batch layer (:mod:`repro.pipeline.batch`) amortizes work within
one process invocation; this package keeps that process *alive*.  An
asyncio HTTP front-end (standard library only) accepts width queries,
admission-controls them (bounded in-flight work, fast 429/503
rejections), coalesces identical concurrent requests into one
scheduler run, and persists every settled verdict through
:mod:`repro.store` — so a restarted daemon answers a repeat-heavy
workload with zero LP solves and zero exact check tasks (benchmark
E23, ``benchmarks/bench_e23_warm_restart.py``).

Quickstart (server)::

    repro serve --store /var/lib/repro --port 8765

Quickstart (client)::

    from repro.serve import ServeClient
    client = ServeClient(port=8765)
    answer = client.solve(h, kind="ghw")["answer"]

See :mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.server` for admission/coalescing semantics, and
``docs/architecture.md`` for how the pieces fit the pipeline.
"""

from .client import ServeClient, ServeError
from .protocol import (
    ProtocolError,
    answer_payload,
    hypergraph_from_payload,
    hypergraph_to_payload,
    request_from_payload,
    request_key,
    request_to_payload,
)
from .server import DecompositionServer, ServerStats

__all__ = [
    "DecompositionServer",
    "ServerStats",
    "ServeClient",
    "ServeError",
    "ProtocolError",
    "answer_payload",
    "hypergraph_from_payload",
    "hypergraph_to_payload",
    "request_from_payload",
    "request_key",
    "request_to_payload",
]
