"""E09 — Example 5.1: optimal fractional covers may need unbounded support.

The family H_n (star + one big edge) has iwidth 1 yet its unique optimal
fractional cover puts 1/n on each star edge and 1 − 1/n on the big edge:
weight 2 − 1/n with support n + 1.  This regenerates the series and also
confirms Corollary 5.5's counterweight: the support is <= d · ρ* with
d = degree(H_n) = n (so "unbounded support" and Füredi's bound coexist).
"""

from _tables import emit

from repro.covers import fractional_edge_cover, minimal_support_cover
from repro.hypergraph import degree, intersection_width
from repro.hypergraph.generators import unbounded_support_family


def series_rows() -> list[tuple]:
    rows = []
    for n in (2, 3, 5, 8, 12):
        h = unbounded_support_family(n)
        cover = fractional_edge_cover(h)
        small = minimal_support_cover(h, h.vertices)
        rows.append(
            (
                n,
                intersection_width(h),
                round(cover.weight, 6),
                round(2 - 1 / n, 6),
                len(cover.support),
                len(small.support),
                degree(h) * cover.weight,
            )
        )
    return rows


def test_e09_example_5_1_series(benchmark):
    rows = benchmark(series_rows)
    for n, iwidth, weight, expected, support, small_support, bound in rows:
        assert iwidth == 1
        assert abs(weight - expected) < 1e-6
        assert support == n + 1  # unbounded in n
        assert small_support <= bound + 1e-9  # Corollary 5.5
    emit(
        "E09 / Example 5.1: weight 2 - 1/n with support n + 1",
        ["n", "iwidth", "ρ*", "2-1/n", "|supp| optimal", "|supp| reduced", "d·ρ* bound"],
        rows,
    )


def test_e09_weights_match_paper(benchmark):
    """γ(star_i) = 1/n and γ(big) = 1 - 1/n exactly."""
    n = 6
    h = unbounded_support_family(n)
    cover = benchmark(fractional_edge_cover, h)
    for i in range(1, n + 1):
        assert abs(cover[f"star{i}"] - 1 / n) < 1e-6
    assert abs(cover["big"] - (1 - 1 / n)) < 1e-6


if __name__ == "__main__":
    emit(
        "E09 series",
        ["n", "iw", "ρ*", "2-1/n", "supp", "supp-", "d·ρ*"],
        series_rows(),
    )
