"""E17 — end of Section 3: lifting the hardness from width 2 to 2 + ℓ.

The paper sketches the lift as "add a clique of 2ℓ fresh vertices and
connect each to every old vertex".  The exact-oracle measurements here
reproduce it *and surface a subtlety the sketch glosses over*:

* **ghw shifts by exactly ℓ** on all tested bases — integral covers
  cannot split connector edges, so the fresh clique costs the full ℓ;
* **fhw shifts by exactly ℓ on some bases (triangle) but by less on
  others (C4: Δ = 0.5 at ℓ = 1)**: a connector edge {v_i, w} covers one
  fresh *and* one old vertex, and odd cycles through fresh and old
  vertices admit 1/2-weight covers that amortize the fresh cost against
  the old bag.  The same leak affects the rational window lift.

EXPERIMENTS.md discusses the consequences for the "easily extended"
remark (the reduction's own hypergraphs have enough slack that the
NP-hardness conclusion survives; a generic width-shift theorem would
need a leak-free gadget).
"""

from _tables import emit, emit_engine_stats, measure_engine

from repro.algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
)
from repro.hardness import lift_by_clique, lift_by_cycle_windows
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import cycle


def bases():
    return [
        ("triangle", Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})),
        ("C4", cycle(4)),
    ]


def integral_rows() -> list[tuple]:
    rows = []
    for label, h in bases():
        fhw0, _a = fractional_hypertree_width_exact(h)
        ghw0, _b = generalized_hypertree_width_exact(h)
        lifted = lift_by_clique(h, 1)
        fhw1, _c = fractional_hypertree_width_exact(lifted)
        ghw1, _d = generalized_hypertree_width_exact(lifted)
        rows.append(
            (
                f"{label} + K2",
                round(fhw0, 3),
                round(fhw1, 3),
                round(fhw1 - fhw0, 3),
                ghw0,
                ghw1,
                ghw1 - ghw0,
            )
        )
    return rows


def rational_rows() -> list[tuple]:
    rows = []
    for r, q in ((3, 2), (5, 3)):
        base = bases()[0][1]
        fhw0, _a = fractional_hypertree_width_exact(base)
        lifted = lift_by_cycle_windows(base, r=r, q=q)
        fhw1, _b = fractional_hypertree_width_exact(lifted)
        rows.append(
            (
                f"triangle + cyc({r},{q})",
                round(fhw0, 4),
                round(fhw1, 4),
                round(fhw1 - fhw0, 4),
                round(r / q, 4),
            )
        )
    return rows


def test_e17_integral_lift(benchmark):
    rows = benchmark(integral_rows)
    by_label = {row[0]: row for row in rows}
    for label, _f0, _f1, dfhw, _g0, _g1, dghw in rows:
        assert dghw == 1, f"{label}: Δghw = {dghw} != 1"
        assert 0 < dfhw <= 1 + 1e-6, f"{label}: Δfhw = {dfhw} out of (0, 1]"
    # The leak, reproduced exactly: triangle shifts fully, C4 by half.
    assert abs(by_label["triangle + K2"][3] - 1.0) < 1e-6
    assert abs(by_label["C4 + K2"][3] - 0.5) < 1e-6
    emit(
        "E17 / integral lift by K_2 (ℓ = 1): ghw shifts exactly, fhw leaks",
        ["instance", "fhw before", "fhw after", "Δfhw", "ghw before", "ghw after", "Δghw"],
        rows,
    )


def test_e17_rational_lift(benchmark):
    rows = benchmark(rational_rows)
    for label, _f0, _f1, delta, claimed in rows:
        assert 0 < delta <= claimed + 1e-6, (
            f"{label}: Δfhw = {delta} outside (0, r/q]"
        )
    emit(
        "E17 / rational lifts: Δfhw vs the advertised r/q",
        ["instance", "fhw before", "fhw after", "Δfhw measured", "r/q advertised"],
        rows,
    )


def engine_cache_stats() -> dict[str, dict]:
    """LP-solve counts for the E17 integral-lift workload, cached vs not.

    The elimination DP memoizes bag costs per run regardless, so the
    engine cache's contribution here is the *cross-phase* sharing: the
    witness-rebuild covers and the fhw-vs-ghw passes re-read bags the
    DP already solved.  (The headline >= 2x cache reduction lives in
    bench_e12's Algorithm 4 workload, where repeated Check probes on
    one hypergraph share a single oracle.)
    """
    workload = lambda: integral_rows()
    return {
        "cached": measure_engine(workload),
        "uncached": measure_engine(workload, cache_size=0),
    }


def test_e17_engine_cache_shares_across_phases(benchmark):
    stats = benchmark(engine_cache_stats)
    cached, uncached = stats["cached"], stats["uncached"]
    solves_cached = cached["lp_solves"] + cached["set_cover_solves"]
    solves_uncached = uncached["lp_solves"] + uncached["set_cover_solves"]
    assert solves_uncached > solves_cached, (
        f"cache should cut cover solves: "
        f"{solves_uncached} uncached vs {solves_cached} cached"
    )
    assert cached["hit_rate"] > 0.15
    emit_engine_stats(
        "E17 / engine cache: cover-solve counts on the integral-lift workload",
        stats,
    )


def test_e17_fresh_structure_cost(benchmark):
    """In isolation the added gadgets do cost exactly ℓ resp. r/q —
    the leak is an interaction with the old vertices, not a bug in the
    gadgets themselves."""
    from repro.covers import fractional_edge_cover_number

    def isolated_costs():
        seed = Hypergraph({"e": ["old"]})
        lifted = lift_by_cycle_windows(seed, r=5, q=2)
        fresh = lifted.induced([f"lift{i}" for i in range(1, 6)])
        windows = fresh.restrict_edges(
            [n for n in fresh.edge_names if n.startswith("liftwin")]
        )
        from repro.hypergraph.generators import clique

        return (
            fractional_edge_cover_number(windows),
            fractional_edge_cover_number(clique(4)),
        )

    window_cost, clique_cost = benchmark(isolated_costs)
    assert abs(window_cost - 2.5) < 1e-6
    assert abs(clique_cost - 2.0) < 1e-6
    emit(
        "E17 / gadget costs in isolation",
        ["gadget", "ρ*", "advertised"],
        [
            ("cyc(5,2) windows", round(window_cost, 4), "5/2"),
            ("K4 clique (ℓ=2)", round(clique_cost, 4), "2"),
        ],
    )


if __name__ == "__main__":
    emit(
        "E17 integral",
        ["inst", "f0", "f1", "Δf", "g0", "g1", "Δg"],
        integral_rows(),
    )
    emit("E17 rational", ["inst", "f0", "f1", "Δ", "r/q"], rational_rows())
    emit_engine_stats("E17 engine cache (cached vs uncached)", engine_cache_stats())
