"""E10 — Theorem 5.2/5.22: Check(FHD,k) is tractable under the BDP.

On degree-bounded instances with known fractional widths, the strict-HD
reduction accepts at k = fhw(H) and rejects just below it, agreeing with
the exact elimination oracle in every case.
"""

from _tables import emit

from repro.algorithms import (
    check_fhd,
    fractional_hypertree_decomposition_bounded_degree,
    fractional_hypertree_width_exact,
)
from repro.hypergraph import Hypergraph, degree
from repro.hypergraph.generators import cycle, grid, path_hypergraph


def instances() -> list[tuple[str, Hypergraph]]:
    return [
        ("triangle", Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})),
        ("C5", cycle(5)),
        ("C6", cycle(6)),
        ("path(4,3,1)", path_hypergraph(4, 3, 1)),
        ("grid(2,3)", grid(2, 3)),
    ]


def agreement_rows() -> list[tuple]:
    rows = []
    for label, h in instances():
        exact, _w = fractional_hypertree_width_exact(h)
        accept = fractional_hypertree_decomposition_bounded_degree(
            h, exact + 1e-6
        )
        reject_below = (
            (not check_fhd(h, exact - 0.05)) if exact > 1.05 else True
        )
        rows.append(
            (
                label,
                degree(h),
                round(exact, 4),
                accept is not None,
                round(accept.width(), 4) if accept else None,
                reject_below,
            )
        )
    return rows


def test_e10_bdp_check_agrees_with_oracle(benchmark):
    rows = benchmark(agreement_rows)
    for label, _d, exact, accepted, width, rejected in rows:
        assert accepted, f"{label}: should accept at fhw"
        assert width <= exact + 1e-6
        assert rejected, f"{label}: should reject below fhw"
    emit(
        "E10 / Thm 5.2: Check(FHD,k) under bounded degree vs exact fhw",
        ["instance", "degree", "exact fhw", "accepts at fhw", "witness width", "rejects below"],
        rows,
    )


def test_e10_triangle_native_width(benchmark):
    """The triangle's strict FHD realizes the fractional optimum 1.5."""
    t = instances()[0][1]
    d = benchmark(
        fractional_hypertree_decomposition_bounded_degree, t, 1.5
    )
    assert d is not None
    assert abs(d.width() - 1.5) < 1e-9
    # Some node carries the full triangle with the γ ≡ 1/2 cover.
    assert any(
        len(d.bag(nid)) == 3 and abs(d.cover(nid).weight - 1.5) < 1e-9
        for nid in d.node_ids
    )


if __name__ == "__main__":
    emit(
        "E10 agreement",
        ["inst", "deg", "fhw", "accept", "w", "reject<"],
        agreement_rows(),
    )
