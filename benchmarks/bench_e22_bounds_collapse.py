"""E22 (ablation) — the bounds pre-pass collapsing the k-search.

The exact ``Check(X, k)`` solves dominate every width query; the
bounds pre-pass (``pipeline/bounds.py``) brackets each block with a
near-linear ordering portfolio (upper bound + witness) and the
Lemma 2.8 clique cover (lower bound) before the first exact task is
generated.  Blocks whose bounds meet are answered by the re-validated
heuristic witness and never reach an exact engine; the rest start
their k-climb at the lower bound and stop speculating above the upper.

This ablation counts the exact Check tasks with and without the
pre-pass over the E15 HyperBench-style corpus plus the E21 dense race
corpus, asserting the acceptance criterion: **>= 2x fewer exact
tasks, byte-identical widths**.

Corpora:

* **full** — the E15 suite (``hyperbench_like_suite(seed=0)``) plus
  the E21 dense instances; the headline >= 2x assertion lives here.
* **smoke** — a small subset for CI: the same parity + reduction
  checks with a lighter >= 1.5x floor (tiny corpora leave less slack).

Run ``python benchmarks/bench_e22_bounds_collapse.py`` for the full
ablation, or ``--corpus smoke`` for the CI check.
"""

import random
import time

from _tables import emit

from repro import engine
from repro.pipeline import BatchRequest, last_batch_stats, solve_many
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    hyperbench_like_suite,
    random_csp_hypergraph,
    triangle_cascade,
)

#: The two bounds modes under comparison (clique-only sits between).
MODES = ("portfolio", "none")


def _e21_dense() -> list[tuple]:
    return [
        ("K7", clique(7)),
        ("csp(9,16)", random_csp_hypergraph(9, 16, arity=3, rng=random.Random(3))),
        ("csp(10,18)", random_csp_hypergraph(10, 18, arity=3, rng=random.Random(4))),
        ("C12", cycle(12)),
        ("C14", cycle(14)),
        ("K5", clique(5)),
        ("K6", clique(6)),
        ("C9", cycle(9)),
        ("grid(3,3)", grid(3, 3)),
        ("tri4", triangle_cascade(4)),
    ]


def build_requests(corpus: str = "full") -> list[BatchRequest]:
    """The ghw request list for one named corpus."""
    if corpus == "full":
        suite = hyperbench_like_suite(seed=0, n_cq=20, n_csp=6)
        named = [(f"hb{i:02d}", h) for i, h in enumerate(suite)]
        named += _e21_dense()
    elif corpus == "smoke":
        suite = hyperbench_like_suite(seed=0, n_cq=6, n_csp=2)
        named = [(f"hb{i:02d}", h) for i, h in enumerate(suite)]
        named += [("K5", clique(5)), ("tri3", triangle_cascade(3))]
    else:
        raise ValueError(f"unknown corpus {corpus!r}")
    return [BatchRequest(h, "ghw", label=label) for label, h in named]


def run_mode(requests, bounds: str, jobs: int):
    """One timed ``solve_many`` pass from cold caches."""
    engine.clear_context_registry()
    start = time.perf_counter()
    results = solve_many(requests, jobs=jobs, bounds=bounds)
    elapsed = time.perf_counter() - start
    widths = []
    for request, handle in zip(requests, results):
        assert handle.ok, f"bounds={bounds}/{request.label}: {handle.error!r}"
        widths.append(handle.value[0])
    return widths, elapsed, last_batch_stats()


def collapse(jobs: int = 1, corpus: str = "full") -> dict:
    """Run the corpus with and without the bounds pre-pass.

    Returns a ``{"metrics": ..., "timings": ...}`` report (the shape
    ``tools/record_bench.py`` records as ``BENCH_E22.json``) after
    asserting that both modes return identical widths on every
    instance.
    """
    requests = build_requests(corpus)
    widths, seconds, stats = {}, {}, {}
    for mode in MODES:
        widths[mode], seconds[mode], stats[mode] = run_mode(
            requests, mode, jobs
        )
    for request, on_w, off_w in zip(
        requests, widths["portfolio"], widths["none"]
    ):
        assert on_w == off_w, (
            f"{request.label}: bounds=portfolio says {on_w}, "
            f"bounds=none says {off_w}"
        )
    on, off = stats["portfolio"], stats["none"]
    return {
        "metrics": {
            "corpus": corpus,
            "jobs": jobs,
            "requests": len(requests),
            "blocks": on.blocks,
            "ghw_histogram": {
                str(w): widths["none"].count(w)
                for w in sorted(set(widths["none"]))
            },
            "tasks": {
                mode: {
                    "run": stats[mode].tasks_run,
                    "cancelled": stats[mode].tasks_cancelled,
                }
                for mode in MODES
            },
            "bounds": {
                "ks_pruned": on.bounds_ks_pruned,
                "checks_avoided": on.bounds_checks_avoided,
                "blocks_decided": on.bounds_blocks_decided,
                "anytime_answers": on.anytime_answers,
            },
            "task_reduction": round(
                off.tasks_run / max(1, on.tasks_run), 2
            ),
        },
        "timings": {
            **{f"{mode}_seconds": round(seconds[mode], 4) for mode in MODES},
            "bounds_seconds": round(on.bounds_seconds, 4),
        },
    }


def emit_report(report: dict) -> None:
    metrics, timings = report["metrics"], report["timings"]
    emit(
        f"E22 / bounds pre-pass collapse: {metrics['requests']} ghw "
        f"requests, {metrics['blocks']} blocks "
        f"({metrics['corpus']} corpus, jobs={metrics['jobs']})",
        ["bounds mode", "exact tasks", "cancelled", "wall"],
        [
            (
                mode,
                metrics["tasks"][mode]["run"],
                metrics["tasks"][mode]["cancelled"],
                f"{timings[f'{mode}_seconds']:.3f}s",
            )
            for mode in MODES
        ],
    )
    bounds = metrics["bounds"]
    emit(
        f"E22 / pre-pass effect ({metrics['task_reduction']}x fewer "
        f"exact tasks, identical widths)",
        ["counter", "value"],
        [
            ("blocks decided by bounds", bounds["blocks_decided"]),
            ("k-values pruned", bounds["ks_pruned"]),
            ("exact checks avoided", bounds["checks_avoided"]),
            ("anytime answers", bounds["anytime_answers"]),
            ("bounds pass wall", f"{timings['bounds_seconds']:.3f}s"),
        ],
    )


def _reduction_floor(corpus: str) -> float:
    return 2.0 if corpus == "full" else 1.5


def test_e22_bounds_collapse(benchmark):
    report = benchmark.pedantic(
        lambda: collapse(jobs=1, corpus="full"), rounds=1, iterations=1
    )
    metrics = report["metrics"]
    assert metrics["task_reduction"] >= _reduction_floor("full"), (
        f"bounds pre-pass only cut exact tasks "
        f"{metrics['task_reduction']}x (< 2x): "
        f"{metrics['tasks']['none']['run']} -> "
        f"{metrics['tasks']['portfolio']['run']}"
    )
    assert metrics["bounds"]["blocks_decided"] > 0
    emit_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--corpus", choices=("full", "smoke"), default="full"
    )
    args = parser.parse_args()
    report = collapse(jobs=args.jobs, corpus=args.corpus)
    emit_report(report)
    metrics = report["metrics"]
    floor = _reduction_floor(args.corpus)
    assert metrics["task_reduction"] >= floor, (
        f"bounds pre-pass only cut exact tasks "
        f"{metrics['task_reduction']}x (< {floor}x)"
    )
    print(
        f"\nOK: identical widths; {metrics['task_reduction']}x fewer "
        f"exact Check tasks with the bounds pre-pass"
    )
