"""Shared table formatting for the experiment benchmarks.

Every ``bench_eXX`` module regenerates one paper artifact (table, figure,
example or quantitative lemma) and prints it in a fixed-width table so the
run log doubles as the reproduction record (EXPERIMENTS.md quotes these).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "emit"]


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Fixed-width table with a title rule, ready for the bench log."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        "",
        f"== {title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print a rendered table (kept separate so modules stay testable)."""
    print(render_table(title, headers, rows))
