"""Shared table formatting for the experiment benchmarks.

Every ``bench_eXX`` module regenerates one paper artifact (table, figure,
example or quantitative lemma) and prints it in a fixed-width table so the
run log doubles as the reproduction record (EXPERIMENTS.md quotes these).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "render_table",
    "emit",
    "emit_engine_stats",
    "measure_engine",
    "emit_pipeline_stats",
]


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Fixed-width table with a title rule, ready for the bench log."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        "",
        f"== {title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print a rendered table (kept separate so modules stay testable)."""
    print(render_table(title, headers, rows))


def measure_engine(work, cache_size: int | None = None) -> dict:
    """Run ``work()`` against a cold engine and return its LP/cache stats.

    Clears the shared context registry (so no caches are pre-warmed),
    optionally pins the cover-oracle cache size (0 disables caching),
    runs the thunk, and returns the aggregate engine statistics —
    lp_solves, set_cover_solves, cache_hits/misses and hit_rate — for
    benchmark tables.  The previous cache size is restored afterwards.
    """
    from repro import engine

    previous = engine.engine_config().cache_size
    engine.clear_context_registry()
    if cache_size is not None:
        engine.configure(cache_size=cache_size)
    engine.reset_stats()
    try:
        work()
        return engine.stats()
    finally:
        engine.configure(cache_size=previous)
        engine.clear_context_registry()
        engine.reset_stats()


def emit_pipeline_stats(title: str, stats_by_label: dict) -> None:
    """One row per labelled :class:`repro.pipeline.PipelineStats`.

    Reports the reduce/split/solve/stitch pipeline per stage: what the
    reduction removed, how many blocks the split found, task counts and
    wall-clock per stage.
    """
    headers = [
        "run",
        "V removed",
        "E removed",
        "blocks",
        "block sizes",
        "tasks",
        "reduce",
        "split",
        "solve",
        "stitch",
    ]
    rows = [
        (
            label,
            s.vertices_removed,
            s.edges_removed,
            s.blocks,
            " ".join(f"{v}v/{e}e" for v, e in s.block_sizes) or "-",
            s.tasks_run,
            f"{s.reduce_seconds * 1000:.2f}ms",
            f"{s.split_seconds * 1000:.2f}ms",
            f"{s.solve_seconds * 1000:.2f}ms",
            f"{s.stitch_seconds * 1000:.2f}ms",
        )
        for label, s in stats_by_label.items()
    ]
    emit(title, headers, rows)


def emit_engine_stats(title: str, stats_by_label: dict[str, dict]) -> None:
    """Print one engine-stats row per label (e.g. cached vs uncached)."""
    headers = ["run", "LP solves", "set covers", "hits", "misses", "hit rate"]
    rows = [
        (
            label,
            s["lp_solves"],
            s["set_cover_solves"],
            s["cache_hits"],
            s["cache_misses"],
            s["hit_rate"],
        )
        for label, s in stats_by_label.items()
    ]
    emit(title, headers, rows)
