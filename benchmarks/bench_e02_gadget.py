"""E02 — Figure 1 / Lemma 3.1: the gadget H₀ forces its decomposition.

LP-certifies the cover-theoretic half of Lemma 3.1 on gadget instances of
growing M-size: every width-2 cover of each 4-clique is support-confined
to the paper's edge sets, so the forced bags B_uA, B_uB, B_uC exist.
"""

from _tables import emit

from repro.covers import cover_feasible_within, support_confined
from repro.hardness import gadget_hypergraph

CLIQUES = {
    "uA:{a1,a2,b1,b2}": (
        ("a1", "a2", "b1", "b2"),
        ("gA1", "gA2", "gA3", "gA4", "gA5", "gB5"),
    ),
    "uB:{b1,b2,c1,c2}": (
        ("b1", "b2", "c1", "c2"),
        ("gB1", "gB2", "gB3", "gB4", "gB5", "gB6"),
    ),
    "uC:{c1,c2,d1,d2}": (
        ("c1", "c2", "d1", "d2"),
        ("gC1", "gC2", "gC3", "gC4", "gC5", "gB6"),
    ),
}


def gadget_certificates(m_size: int) -> list[tuple]:
    m1 = [f"m1_{i}" for i in range(m_size)]
    m2 = [f"m2_{i}" for i in range(m_size)]
    g = gadget_hypergraph(m1=m1, m2=m2)
    rows = []
    for label, (target, allowed) in CLIQUES.items():
        coverable = cover_feasible_within(g, target, 2.0)
        tight = not cover_feasible_within(g, target, 1.99)
        confined = support_confined(g, target, 2.0, allowed)
        rows.append((f"|M|={2 * m_size}", label, coverable, tight, confined))
    return rows


def test_e02_lemma_3_1_certificates(benchmark):
    rows = benchmark(gadget_certificates, 6)
    assert all(coverable for _m, _l, coverable, _t, _c in rows)
    assert all(tight for _m, _l, _c, tight, _cf in rows)
    assert all(confined for _m, _l, _c, _t, confined in rows)
    emit(
        "E02 / Lemma 3.1: width-2 covers of the gadget cliques",
        ["M", "clique", "weight<=2 feasible", "weight 2 tight", "support confined"],
        rows,
    )


def test_e02_scaling_in_m(benchmark):
    def sweep():
        return [
            (2 * m, all(r[4] for r in gadget_certificates(m)))
            for m in (1, 4, 8)
        ]

    rows = benchmark(sweep)
    assert all(ok for _m, ok in rows)
    emit(
        "E02 supplement: confinement is independent of |M|",
        ["|M|", "all cliques confined"],
        rows,
    )


if __name__ == "__main__":
    emit(
        "E02 / Lemma 3.1 certificates",
        ["M", "clique", "coverable", "tight", "confined"],
        gadget_certificates(6),
    )
