"""E19b — batched multi-instance serving: ``solve_many`` vs one-at-a-time.

The serving scenario behind the ROADMAP's batching item: a workload of
many width queries (HyperBench-style — mixed hw/ghw/fhw over many small
instances, with repeated query shapes, as heavy traffic produces).  Two
ways to answer it:

* **one-at-a-time** — a fresh :class:`~repro.pipeline.WidthSolver` per
  request, from cold engine caches (each serving call pays the full
  cost, the deployment model ``solve_many`` replaces);
* **batched** — one :func:`~repro.pipeline.solve_many` call: reduce and
  split for every instance up front, per-block tasks from different
  instances interleaved on one shared pool, one warm
  SearchContext/CoverOracle cache domain for the whole batch.

The assertions pin the acceptance criteria: every batched answer equals
the corresponding single-instance ``WidthSolver`` answer, and the
batched run (``--jobs 2``) beats the sequential one on wall-clock.
"""

import time

from _tables import emit

from repro import engine
from repro.pipeline import BatchRequest, WidthSolver, solve_many
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    path_hypergraph,
    triangle_cascade,
)


def build_workload() -> list[BatchRequest]:
    """A >= 20-request mixed-measure workload with repeated shapes.

    Shapes repeat (distinct ``Hypergraph`` objects that compare equal),
    exactly as real query traffic repeats — which is what a shared warm
    cache domain amortizes.
    """
    requests: list[BatchRequest] = []

    def add(make, kind):
        h = make()
        requests.append(BatchRequest(h, kind, label=f"{h.name}:{kind}"))

    for _repeat in range(3):
        for n in (6, 7, 8):
            add(lambda n=n: cycle(n), "ghw")
        add(lambda: triangle_cascade(3), "hw")
        add(lambda: triangle_cascade(4), "ghw")
        add(lambda: grid(3, 3), "ghw")
        add(lambda: clique(5), "fhw")
        add(lambda: clique(6), "fhw")
        add(lambda: path_hypergraph(6, 3, 1), "ghw")
        add(lambda: grid(2, 4), "hw")
        add(lambda: cycle(9), "fhw")
    return requests


def solve_one(request: BatchRequest):
    """The single-instance WidthSolver answer for one request."""
    solver = WidthSolver(request.hypergraph)
    method = {
        "hw": solver.hypertree_width,
        "ghw": solver.generalized_hypertree_width,
        "fhw": solver.fractional_hypertree_width_exact,
    }[request.kind]
    return method(**dict(request.params))


def run_sequential(requests) -> tuple[list, float, dict]:
    """One-at-a-time serving: cold caches per call, like isolated calls."""
    baseline = engine.stats()
    results = []
    start = time.perf_counter()
    for request in requests:
        engine.clear_context_registry()
        results.append(solve_one(request))
    elapsed = time.perf_counter() - start
    current = engine.stats()
    delta = {
        key: current[key] - baseline[key]
        for key in ("lp_solves", "cache_hits", "cache_misses")
    }
    lookups = delta["cache_hits"] + delta["cache_misses"]
    delta["hit_rate"] = delta["cache_hits"] / lookups if lookups else 0.0
    return results, elapsed, delta


def run_batched(requests, jobs: int, executor: str = "thread"):
    """One ``solve_many`` call over the whole workload."""
    engine.clear_context_registry()
    start = time.perf_counter()
    results = solve_many(requests, jobs=jobs, executor=executor)
    elapsed = time.perf_counter() - start
    from repro.pipeline import last_batch_stats

    return results, elapsed, last_batch_stats()


def run_remote(requests, jobs: int, workers: int = 2):
    """E19r: the same batch through a loopback TCP worker fleet.

    Spawns ``workers`` real ``repro worker`` subprocesses dialing an
    ephemeral registry, runs ``solve_many(..., executor="remote")``,
    and tears the fleet down.  Returns the same triple as
    :func:`run_batched`.
    """
    from repro.dist import (
        WorkerRegistry,
        close_registry,
        set_registry,
        spawn_worker,
    )

    registry = WorkerRegistry()
    previous = set_registry(registry)
    procs = [
        spawn_worker(registry.address, jobs=2, idle_timeout=300)
        for _ in range(workers)
    ]
    try:
        if not registry.wait_for_workers(workers, timeout=60.0):
            raise RuntimeError(
                f"only {registry.worker_count()}/{workers} workers joined"
            )
        engine.clear_context_registry()
        start = time.perf_counter()
        results = solve_many(requests, jobs=jobs, executor="remote")
        elapsed = time.perf_counter() - start
        from repro.pipeline import last_batch_stats

        return results, elapsed, last_batch_stats()
    finally:
        close_registry()
        set_registry(previous)
        for proc in procs:
            proc.kill()
            proc.wait(timeout=10)


def compare(jobs: int = 2):
    requests = build_workload()
    assert len(requests) >= 20, "acceptance: >= 20-instance workload"
    assert {r.kind for r in requests} >= {"hw", "ghw", "fhw"}

    sequential, seq_seconds, seq_engine = run_sequential(requests)
    batched, batch_seconds, batch_stats = run_batched(requests, jobs)

    for request, single, handle in zip(requests, sequential, batched):
        assert handle.ok, f"{request.label}: {handle.error!r}"
        single_width, _w = single
        batch_width, _w = handle.value
        assert abs(single_width - batch_width) < 1e-9, (
            f"{request.label}: sequential={single_width} "
            f"batched={batch_width}"
        )
    return (
        requests,
        (seq_seconds, seq_engine),
        (batch_seconds, batch_stats),
    )


def compare_remote(jobs: int = 4, workers: int = 2):
    """E19r: ``executor="remote"`` vs the local executors, same answers.

    Runs the full E19b workload three ways — thread pool, process pool
    (the local multi-process baseline a worker fleet must not lose to)
    and a two-worker loopback fleet — and asserts every width is
    identical across all three.
    """
    requests = build_workload()
    thread_results, thread_seconds, _ = run_batched(requests, jobs, "thread")
    process_results, process_seconds, _ = run_batched(
        requests, jobs, "process"
    )
    remote_results, remote_seconds, remote_stats = run_remote(
        requests, jobs, workers
    )
    for request, t, p, r in zip(
        requests, thread_results, process_results, remote_results
    ):
        assert t.ok and p.ok and r.ok, (
            f"{request.label}: {t.error!r} / {p.error!r} / {r.error!r}"
        )
        assert t.value[0] == p.value[0] == r.value[0], (
            f"{request.label}: thread={t.value[0]} "
            f"process={p.value[0]} remote={r.value[0]}"
        )
    assert remote_stats.tasks_remote > 0, "fleet never received a task"
    assert remote_stats.requeued_tasks == 0, "no worker died in this run"
    return (
        requests,
        (thread_seconds, process_seconds, remote_seconds),
        remote_stats,
    )


def emit_remote_report(requests, timings, remote_stats, jobs, workers):
    thread_seconds, process_seconds, remote_seconds = timings
    n = len(requests)
    emit(
        f"E19r / remote executor: {n} mixed requests, jobs={jobs}, "
        f"{workers} loopback workers",
        ["mode", "wall", "req/s", "vs thread"],
        [
            (
                "thread pool",
                f"{thread_seconds:.3f}s",
                f"{n / thread_seconds:.1f}",
                "1.0x",
            ),
            (
                "process pool",
                f"{process_seconds:.3f}s",
                f"{n / process_seconds:.1f}",
                f"{thread_seconds / process_seconds:.1f}x",
            ),
            (
                f"remote fleet ({workers} workers)",
                f"{remote_seconds:.3f}s",
                f"{n / remote_seconds:.1f}",
                f"{thread_seconds / remote_seconds:.1f}x",
            ),
        ],
    )
    emit(
        "E19r / fleet counters",
        ["tasks_remote", "local_fallback", "requeued", "workers_used"],
        [
            (
                remote_stats.tasks_remote,
                remote_stats.tasks_local_fallback,
                remote_stats.requeued_tasks,
                remote_stats.remote_workers,
            )
        ],
    )


def emit_report(requests, sequential, batched, jobs):
    seq_seconds, seq_engine = sequential
    batch_seconds, batch_stats = batched
    n = len(requests)
    emit(
        f"E19b / batched serving: {n} mixed requests "
        f"(hw+ghw+fhw), jobs={jobs}",
        ["mode", "wall", "req/s", "LP solves", "hit rate", "speedup"],
        [
            (
                "one-at-a-time (cold)",
                f"{seq_seconds:.3f}s",
                f"{n / seq_seconds:.1f}",
                seq_engine["lp_solves"],
                f"{seq_engine['hit_rate']:.2f}",
                "1.0x",
            ),
            (
                f"solve_many (jobs={jobs})",
                f"{batch_seconds:.3f}s",
                f"{n / batch_seconds:.1f}",
                batch_stats.lp_solves,
                f"{batch_stats.hit_rate:.2f}",
                f"{seq_seconds / batch_seconds:.1f}x",
            ),
        ],
    )
    emit(
        "E19b / batch scheduler counters",
        ["requests", "blocks", "tasks", "speculative", "cancelled", "failures"],
        [
            (
                batch_stats.requests,
                batch_stats.blocks,
                batch_stats.tasks_run,
                batch_stats.speculative_checks,
                batch_stats.tasks_cancelled,
                batch_stats.failures,
            )
        ],
    )


def test_e19b_batched_beats_sequential(benchmark):
    requests, sequential, batched = benchmark.pedantic(
        lambda: compare(jobs=2), rounds=1, iterations=1
    )
    assert batched[0] < sequential[0], (
        f"batched {batched[0]:.3f}s should beat "
        f"one-at-a-time {sequential[0]:.3f}s"
    )
    emit_report(requests, sequential, batched, jobs=2)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--executor",
        choices=["thread", "remote"],
        default="thread",
        help='"remote" runs the E19r variant against a loopback fleet',
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="loopback worker subprocesses for --executor remote",
    )
    args = parser.parse_args()
    if args.executor == "remote":
        requests, timings, remote_stats = compare_remote(
            jobs=args.jobs, workers=args.workers
        )
        emit_remote_report(
            requests, timings, remote_stats, args.jobs, args.workers
        )
        print(
            f"\nOK: executor=\"remote\" answered all {len(requests)} "
            f"requests identically to the local executors "
            f"({remote_stats.tasks_remote} tasks over "
            f"{remote_stats.remote_workers} workers)"
        )
    else:
        requests, sequential, batched = compare(jobs=args.jobs)
        emit_report(requests, sequential, batched, jobs=args.jobs)
        assert batched[0] < sequential[0], (
            f"batched {batched[0]:.3f}s should beat "
            f"one-at-a-time {sequential[0]:.3f}s"
        )
        print(
            f"\nOK: solve_many(jobs={args.jobs}) "
            f"{sequential[0] / batched[0]:.1f}x faster than one-at-a-time, "
            f"all {len(requests)} answers identical"
        )
