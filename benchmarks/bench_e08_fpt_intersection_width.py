"""E08 — Theorem 4.15: Check(GHD,k) is FPT in the intersection width i.

Sweeps the parameter i on overlapping-path hypergraphs of fixed length:
the size of the Theorem 4.15 closed-form subedge set f(H,k) obeys
|f(H,k)| <= m^{k+1} · 2^{k·i} (growing with i but independent of n), and
the fixpoint generator stays far below the bound.
"""

import time

from _tables import emit

from repro.algorithms import bip_subedges, check_ghd, ghd_subedges
from repro.hypergraph import intersection_width
from repro.hypergraph.generators import path_hypergraph


def sweep_rows(k: int = 2) -> list[tuple]:
    rows = []
    for i in (1, 2, 3, 4):
        h = path_hypergraph(n_edges=5, edge_size=i + 2, overlap=i)
        m = h.num_edges
        bound = m ** (k + 1) * 2 ** (k * i)
        closed_form = len(bip_subedges(h, k))
        fixpoint = len(ghd_subedges(h, k))
        start = time.perf_counter()
        ok = check_ghd(h, 2)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                i,
                intersection_width(h),
                closed_form,
                fixpoint,
                bound,
                ok,
                f"{elapsed * 1000:.1f}ms",
            )
        )
    return rows


def test_e08_fpt_in_i(benchmark):
    rows = benchmark(sweep_rows)
    for i, iwidth, closed_form, fixpoint, bound, ok, _t in rows:
        assert iwidth == i
        assert closed_form <= bound, "Theorem 4.15 size bound violated"
        assert fixpoint <= closed_form + 1  # fixpoint never coarser
        assert ok  # overlapping paths are acyclic: ghw = 1 <= 2
    emit(
        "E08 / Thm 4.15: |f(H,2)| as the BIP parameter i grows (m=5 fixed)",
        ["i", "iwidth", "|f| closed form", "|f| fixpoint", "m^3·4^i bound", "ghw<=2", "check time"],
        rows,
    )


def test_e08_growth_is_in_i_not_n(benchmark):
    """At fixed i = 2, doubling n leaves the per-edge subedge count flat."""

    def series():
        out = []
        for n_edges in (4, 8, 16):
            h = path_hypergraph(n_edges=n_edges, edge_size=4, overlap=2)
            out.append((n_edges, len(ghd_subedges(h, 2)) / n_edges))
        return out

    rows = benchmark(series)
    per_edge = [ratio for _n, ratio in rows]
    assert max(per_edge) <= min(per_edge) * 1.6  # flat-ish, not exponential
    emit(
        "E08 supplement: subedges per edge at fixed i = 2",
        ["edges", "|f| / m"],
        [(n, f"{r:.2f}") for n, r in rows],
    )


if __name__ == "__main__":
    emit(
        "E08 / FPT sweep",
        ["i", "iw", "closed", "fixpoint", "bound", "ok", "time"],
        sweep_rows(),
    )
