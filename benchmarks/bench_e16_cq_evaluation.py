"""E16 — the Section 1 motivation: why Check(·,k) is worth solving.

Two workloads:

* a Boolean path CQ (acyclic, ghw = 1) over random graphs of growing
  density — Yannakakis over the join tree keeps every intermediate at
  most |r| after semijoin reduction, while the naive left-deep plan
  materializes ~(n·p)^4 partial paths: the gap grows with the data;
* the 4-cycle CQ (ghw = 2), confirming answer-set equality between the
  engines on a cyclic query.
"""

import random

from _tables import emit

from repro.cqcsp import Relation, evaluate, evaluate_naive, parse_cq

PATH_QUERY = parse_cq(
    ":- r(x1, x2), r(x2, x3), r(x3, x4), r(x4, x5), r(x5, x6)."
)
CYCLE_QUERY = parse_cq("q(a, c) :- r(a, b), r(b, c), r(c, d), r(d, a).")


def random_graph_db(n: int, p: float, seed: int = 0):
    rng = random.Random(seed)
    rows = {
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and rng.random() < p
    }
    return {"r": Relation.from_rows("r", ["a", "b"], rows)}


def path_rows() -> list[tuple]:
    rows = []
    for n, p in ((8, 0.3), (12, 0.3), (16, 0.3)):
        db = random_graph_db(n, p, seed=n)
        fast = evaluate(PATH_QUERY, db)
        slow = evaluate_naive(PATH_QUERY, db)
        assert fast.answers.tuples == slow.answers.tuples
        rows.append(
            (
                n,
                len(db["r"]),
                fast.intermediate_tuples,
                slow.intermediate_tuples,
                round(
                    slow.intermediate_tuples
                    / max(fast.intermediate_tuples, 1),
                    2,
                ),
            )
        )
    return rows


def test_e16_yannakakis_beats_naive_on_path_query(benchmark):
    rows = benchmark(path_rows)
    ratios = [r[4] for r in rows]
    assert ratios[-1] > ratios[0], "advantage must grow with the data"
    assert ratios[-1] > 5.0
    emit(
        "E16 / Boolean path CQ (ghw 1): join-tree vs naive intermediates",
        ["n", "|r|", "Yannakakis intermediates", "naive intermediates", "naive/Yannakakis"],
        rows,
    )


def test_e16_cycle_query_correctness(benchmark):
    db = random_graph_db(10, 0.3, seed=4)

    def both():
        fast = evaluate(CYCLE_QUERY, db, k=2)
        slow = evaluate_naive(CYCLE_QUERY, db)
        return fast, slow

    fast, slow = benchmark(both)
    assert fast.answers.tuples == slow.answers.tuples
    emit(
        "E16 / 4-cycle CQ (ghw 2): engines agree",
        ["answers", "GHD intermediates", "naive intermediates"],
        [
            (
                len(fast.answers),
                fast.intermediate_tuples,
                slow.intermediate_tuples,
            )
        ],
    )


def test_e16_ghd_evaluation_time(benchmark):
    db = random_graph_db(12, 0.3, seed=12)
    result = benchmark(evaluate, PATH_QUERY, db)
    assert result.answers is not None


def test_e16_naive_evaluation_time(benchmark):
    db = random_graph_db(12, 0.3, seed=12)
    benchmark(evaluate_naive, PATH_QUERY, db)


if __name__ == "__main__":
    emit(
        "E16 / path query comparison",
        ["n", "|r|", "yannakakis", "naive", "ratio"],
        path_rows(),
    )
