"""E05 — Example 4.3 / Figures 4-6: hw(H₀) = 3 > 2 = ghw(H₀).

Recomputes all widths of the Figure 4 hypergraph with three independent
engines, re-validates the printed Figure 5 HD and Figure 6 GHDs, and
replays the Example 4.7 transformation Fig 6(a) → bag-maximal → Fig 6(b).
"""

from _tables import emit

from repro.algorithms import (
    check_ghd,
    check_hd,
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    hypertree_width,
    treewidth_exact,
)
from repro.decomposition import (
    is_bag_maximal,
    is_ghd,
    is_hd,
    make_bag_maximal,
    prune_redundant_nodes,
)
from repro.paper_artifacts import (
    example_4_3_hypergraph,
    figure_5_hd,
    figure_6a_ghd,
    figure_6b_ghd,
)


def width_rows() -> list[tuple]:
    h0 = example_4_3_hypergraph()
    hw, _hd = hypertree_width(h0)
    ghw, _g = generalized_hypertree_width_exact(h0)
    fhw, _f = fractional_hypertree_width_exact(h0)
    return [
        ("hw(H0)", hw, 3),
        ("ghw(H0)", ghw, 2),
        ("fhw(H0)", round(fhw, 4), "<= 2"),
        ("tw(primal) + 1", treewidth_exact(h0) + 1, "(context)"),
    ]


def figure_rows() -> list[tuple]:
    h0 = example_4_3_hypergraph()
    return [
        ("Figure 5 HD, width 3", is_hd(h0, figure_5_hd(), width=3)),
        ("Figure 6(a) GHD, width 2", is_ghd(h0, figure_6a_ghd(), width=2)),
        ("Figure 6(b) GHD, width 2", is_ghd(h0, figure_6b_ghd(), width=2)),
        ("Figure 6(b) is NOT an HD", not is_hd(h0, figure_6b_ghd())),
        ("Check(HD,2) rejects", not check_hd(h0, 2)),
        ("Check(GHD,2) accepts", check_ghd(h0, 2)),
    ]


def test_e05_widths(benchmark):
    rows = benchmark(width_rows)
    assert rows[0][1] == 3 and rows[1][1] == 2
    emit(
        "E05 / Example 4.3: widths of the Figure 4 hypergraph",
        ["measure", "computed", "paper"],
        rows,
    )


def test_e05_printed_figures_validate(benchmark):
    rows = benchmark(figure_rows)
    assert all(ok for _label, ok in rows)
    emit("E05 / Figures 5-6 validation", ["fact", "holds"], rows)


def test_e05_example_4_7_transformation(benchmark):
    """Fig 6(a) → bag-maximalize → prune == Fig 6(b), node for node."""
    h0 = example_4_3_hypergraph()

    def transform():
        maximal = make_bag_maximal(h0, figure_6a_ghd())
        return prune_redundant_nodes(h0, maximal)

    result = benchmark(transform)
    assert is_bag_maximal(h0, result)
    want = sorted(
        sorted(figure_6b_ghd().bag(n)) for n in figure_6b_ghd().node_ids
    )
    got = sorted(sorted(result.bag(n)) for n in result.node_ids)
    assert got == want
    emit(
        "E05 / Example 4.7: Fig 6(a) -> Fig 6(b)",
        ["step", "nodes", "width"],
        [
            ("Figure 6(a)", len(figure_6a_ghd()), figure_6a_ghd().width()),
            ("bag-maximal + pruned", len(result), result.width()),
            ("Figure 6(b) target", len(figure_6b_ghd()), 2.0),
        ],
    )


if __name__ == "__main__":
    emit("E05 widths", ["measure", "computed", "paper"], width_rows())
    emit("E05 figures", ["fact", "holds"], figure_rows())
