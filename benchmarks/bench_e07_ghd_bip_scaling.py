"""E07 — Theorem 4.11 / Corollary 4.14: Check(GHD,k) is tractable under
the BIP/BMIP.

Two reproductions:

* correctness — on a random CQ suite, the polynomial subedge pipeline
  agrees with the exponential exact oracle at every width;
* scaling — runtime of Check(GHD,2) grows polynomially in n on 1-BIP
  families (cycles, triangle cascades) of increasing size; the printed
  series makes the trend inspectable.
"""

import time

from _tables import emit

from repro.algorithms import check_ghd, generalized_hypertree_width_exact
from repro.hypergraph.generators import cycle, triangle_cascade
from repro.hypergraph import intersection_width

import random

from repro.hypergraph.generators import random_cq_hypergraph


def agreement_rows() -> list[tuple]:
    rng = random.Random(77)
    instances = [
        ("cycle(5)", cycle(5)),
        ("grid(2,3)", __import__("repro.hypergraph.generators", fromlist=["grid"]).grid(2, 3)),
        ("triangles(2)", triangle_cascade(2)),
    ]
    for idx in range(5):
        h = random_cq_hypergraph(
            n_atoms=rng.randint(4, 7),
            max_arity=3,
            cyclicity=rng.choice([0.4, 0.9]),
            rng=random.Random(rng.randint(0, 10**9)),
        )
        if h.num_vertices <= 12:
            instances.append((f"cq#{idx}", h))
    rows = []
    for label, h in instances:
        exact, _d = generalized_hypertree_width_exact(h)
        agree = all(
            check_ghd(h, k) == (k >= exact) for k in range(1, exact + 2)
        )
        rows.append((label, h.num_vertices, h.num_edges, exact, agree))
    return rows


def scaling_rows() -> list[tuple]:
    rows = []
    for family, make in (("cycle", cycle), ("triangles", triangle_cascade)):
        sizes = (6, 10, 14) if family == "cycle" else (2, 4, 6)
        for size in sizes:
            h = make(size)
            start = time.perf_counter()
            ok = check_ghd(h, 2)
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    f"{family}({size})",
                    h.num_vertices,
                    intersection_width(h),
                    ok,
                    f"{elapsed * 1000:.1f}ms",
                )
            )
    return rows


def test_e07_agreement_with_exact_oracle(benchmark):
    rows = benchmark(agreement_rows)
    assert rows and all(agree for *_x, agree in rows)
    emit(
        "E07 / Thm 4.11: subedge Check(GHD,k) vs exact oracle",
        ["instance", "|V|", "|E|", "exact ghw", "all k agree"],
        rows,
    )


def test_e07_polynomial_scaling_under_bip(benchmark):
    rows = benchmark(scaling_rows)
    assert all(ok for _i, _n, _iw, ok, _t in rows)
    emit(
        "E07 / Check(GHD,2) on 1-BIP families of growing size",
        ["instance", "|V|", "iwidth", "ghw<=2", "time"],
        rows,
    )


if __name__ == "__main__":
    emit("E07 agreement", ["inst", "|V|", "|E|", "ghw", "agree"], agreement_rows())
    emit("E07 scaling", ["inst", "|V|", "iw", "ok", "time"], scaling_rows())
