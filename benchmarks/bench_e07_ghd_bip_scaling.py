"""E07 — Theorem 4.11 / Corollary 4.14: Check(GHD,k) is tractable under
the BIP/BMIP.

Two reproductions:

* correctness — on a random CQ suite, the polynomial subedge pipeline
  agrees with the exponential exact oracle at every width;
* scaling — runtime of Check(GHD,2) grows polynomially in n on 1-BIP
  families (cycles, triangle cascades) of increasing size; the printed
  series makes the trend inspectable.
"""

import time

from _tables import emit, emit_pipeline_stats

from repro.algorithms import check_ghd, generalized_hypertree_width_exact
from repro.decomposition import is_ghd
from repro.hypergraph.generators import cycle, triangle_cascade
from repro.hypergraph import intersection_width
from repro.pipeline import WidthSolver

import random

from repro.hypergraph.generators import random_cq_hypergraph


def agreement_rows() -> list[tuple]:
    rng = random.Random(77)
    instances = [
        ("cycle(5)", cycle(5)),
        ("grid(2,3)", __import__("repro.hypergraph.generators", fromlist=["grid"]).grid(2, 3)),
        ("triangles(2)", triangle_cascade(2)),
    ]
    for idx in range(5):
        h = random_cq_hypergraph(
            n_atoms=rng.randint(4, 7),
            max_arity=3,
            cyclicity=rng.choice([0.4, 0.9]),
            rng=random.Random(rng.randint(0, 10**9)),
        )
        if h.num_vertices <= 12:
            instances.append((f"cq#{idx}", h))
    rows = []
    for label, h in instances:
        exact, _d = generalized_hypertree_width_exact(h)
        agree = all(
            check_ghd(h, k) == (k >= exact) for k in range(1, exact + 2)
        )
        rows.append((label, h.num_vertices, h.num_edges, exact, agree))
    return rows


def scaling_rows() -> list[tuple]:
    rows = []
    for family, make in (("cycle", cycle), ("triangles", triangle_cascade)):
        sizes = (6, 10, 14) if family == "cycle" else (2, 4, 6)
        for size in sizes:
            h = make(size)
            start = time.perf_counter()
            ok = check_ghd(h, 2)
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    f"{family}({size})",
                    h.num_vertices,
                    intersection_width(h),
                    ok,
                    f"{elapsed * 1000:.1f}ms",
                )
            )
    return rows


def test_e07_agreement_with_exact_oracle(benchmark):
    rows = benchmark(agreement_rows)
    assert rows and all(agree for *_x, agree in rows)
    emit(
        "E07 / Thm 4.11: subedge Check(GHD,k) vs exact oracle",
        ["instance", "|V|", "|E|", "exact ghw", "all k agree"],
        rows,
    )


def test_e07_polynomial_scaling_under_bip(benchmark):
    rows = benchmark(scaling_rows)
    assert all(ok for _i, _n, _iw, ok, _t in rows)
    emit(
        "E07 / Check(GHD,2) on 1-BIP families of growing size",
        ["instance", "|V|", "iwidth", "ghw<=2", "time"],
        rows,
    )


def pipeline_block_solve(jobs: int = 1):
    """The pipeline on a multi-block instance vs the raw solve.

    triangles(4) has 4 biconnected blocks (the triangles, glued at the
    articulation vertices t1..t3): the pipeline must solve them
    independently and stitch a witness of the same width the raw search
    finds on the whole hypergraph.
    """
    from repro.algorithms import generalized_hypertree_width

    h = triangle_cascade(4)
    solver = WidthSolver(h, jobs=jobs)
    width, decomposition = solver.generalized_hypertree_width()
    raw_width, _raw = generalized_hypertree_width(h, preprocess="none")
    return h, width, raw_width, decomposition, solver.last_stats


def test_e07_pipeline_blocks_match_raw_solve(benchmark):
    h, width, raw_width, decomposition, stats = benchmark(pipeline_block_solve)
    assert stats.blocks >= 2, "expected a multi-block benchmark instance"
    assert width == raw_width == 2
    assert is_ghd(h, decomposition, width=width)
    emit(
        "E07 / pipeline block solve on triangles(4): stitched = raw",
        ["instance", "blocks", "pipeline ghw", "raw ghw", "validates"],
        [(h.name, stats.blocks, width, raw_width, True)],
    )
    emit_pipeline_stats(
        "E07 / pipeline per-stage stats (triangles(4), ghw)",
        {"triangles(4)": stats},
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    emit("E07 agreement", ["inst", "|V|", "|E|", "ghw", "agree"], agreement_rows())
    emit("E07 scaling", ["inst", "|V|", "iw", "ok", "time"], scaling_rows())
    h, width, raw_width, _d, stats = pipeline_block_solve(jobs=args.jobs)
    emit(
        f"E07 pipeline block solve (jobs={args.jobs})",
        ["inst", "blocks", "pipeline ghw", "raw ghw"],
        [(h.name, stats.blocks, width, raw_width)],
    )
    emit_pipeline_stats(
        f"E07 pipeline per-stage stats (jobs={args.jobs})",
        {h.name: stats},
    )
