"""E01 — Lemma 2.3: ρ(K_2n) = ρ*(K_2n) = n.

Regenerates the equality series the NP-hardness proof leans on (even
cliques admit no fractional shortcut) and contrasts it with odd cliques,
where ρ*(K_{2n+1}) = n + 1/2 < ρ(K_{2n+1}).
"""

from _tables import emit

from repro.covers import edge_cover_number, fractional_edge_cover_number
from repro.hypergraph.generators import clique


def clique_cover_rows(max_n: int = 5) -> list[tuple]:
    rows = []
    for n in range(1, max_n + 1):
        size = 2 * n
        k = clique(size)
        rows.append(
            (
                f"K_{size}",
                edge_cover_number(k),
                round(fractional_edge_cover_number(k), 6),
                n,
            )
        )
    return rows


def odd_clique_rows(max_n: int = 4) -> list[tuple]:
    rows = []
    for n in range(1, max_n + 1):
        size = 2 * n + 1
        k = clique(size)
        rows.append(
            (
                f"K_{size}",
                edge_cover_number(k),
                round(fractional_edge_cover_number(k), 6),
            )
        )
    return rows


def test_e01_lemma_2_3(benchmark):
    rows = benchmark(clique_cover_rows, 5)
    for label, rho, rho_star, n in rows:
        assert rho == n, f"{label}: ρ = {rho} != {n}"
        assert abs(rho_star - n) < 1e-6, f"{label}: ρ* = {rho_star} != {n}"
    emit(
        "E01 / Lemma 2.3: even cliques, ρ = ρ* = n",
        ["hypergraph", "ρ", "ρ*", "paper n"],
        rows,
    )


def test_e01_odd_cliques_show_gap(benchmark):
    rows = benchmark(odd_clique_rows, 4)
    for label, rho, rho_star in rows:
        assert rho_star < rho, f"{label}: expected fractional advantage"
    emit(
        "E01 supplement: odd cliques, ρ* = n + 1/2 < ρ",
        ["hypergraph", "ρ", "ρ*"],
        rows,
    )


if __name__ == "__main__":
    emit(
        "E01 / Lemma 2.3: even cliques, ρ = ρ* = n",
        ["hypergraph", "ρ", "ρ*", "paper n"],
        clique_cover_rows(),
    )
    emit(
        "E01 supplement: odd cliques",
        ["hypergraph", "ρ", "ρ*"],
        odd_clique_rows(),
    )
