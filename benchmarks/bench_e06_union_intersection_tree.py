"""E06 — Examples 4.4/4.10/4.12 and Figure 7: the ⋃⋂-tree.

Rebuilds the critical path critp(u, e2) = (u, u1, u*) on the Figure 6(b)
GHD, runs Algorithm 1 on it, and checks Figure 7's content: the tree has
three nodes, leaves {e2,e3} and {e2,e7}, and its leaf union equals the
Example 4.4 subedge e2' = {v3, v9} = e2 ∩ B_u (Lemma 4.9).
"""

from _tables import emit

from repro.algorithms import (
    critical_path,
    ghd_subedges,
    union_intersection_tree,
)
from repro.decomposition import repair_special_violations, special_condition_violations
from repro.paper_artifacts import example_4_3_hypergraph, figure_6b_ghd


def figure_7_tree():
    h0 = example_4_3_hypergraph()
    d = figure_6b_ghd()
    path = critical_path(h0, d, "u0", "e2")
    covers = [frozenset(d.cover(nid).support) for nid in path[1:]]
    tree = union_intersection_tree(h0, "e2", covers)
    leaf_union = frozenset().union(
        *(leaf.intersection(h0) for leaf in tree.leaves())
    )
    return path, tree, leaf_union


def test_e06_figure_7(benchmark):
    path, tree, leaf_union = benchmark(figure_7_tree)
    h0 = example_4_3_hypergraph()
    d = figure_6b_ghd()
    assert path == ["u0", "u1", "u2"]
    assert tree.size() == 3 and tree.depth() == 1
    assert leaf_union == frozenset({"v3", "v9"})
    assert leaf_union == h0.edge("e2") & d.bag("u0")  # Lemma 4.9
    emit(
        "E06 / Figure 7: ⋃⋂-tree of critp(u, e2)",
        ["node label", "int(p)"],
        [
            (
                "{" + ",".join(sorted(n.label)) + "}",
                "{" + ",".join(sorted(map(str, n.intersection(h0)))) + "}",
            )
            for n in [tree, *tree.leaves()]
        ],
    )


def test_e06_scv_repair_example_4_4(benchmark):
    """The SCV at u0 (edge e2, vertex v2) repairs via e2' = {v3, v9}."""
    h0 = example_4_3_hypergraph()
    d = figure_6b_ghd()

    def repair():
        return repair_special_violations(h0, d)

    augmented, repaired = benchmark(repair)
    scvs = special_condition_violations(h0, d)
    fixed = special_condition_violations(augmented, repaired)
    assert scvs and not fixed
    emit(
        "E06 / Example 4.4: special condition violations before/after",
        ["decomposition", "#SCVs"],
        [("Figure 6(b) original", len(scvs)), ("after subedge repair", len(fixed))],
    )


def test_e06_fixpoint_generator_contains_figure_7_subedge(benchmark):
    h0 = example_4_3_hypergraph()
    subs = benchmark(ghd_subedges, h0, 2)
    assert frozenset({"v3", "v9"}) in set(subs.values())
    emit(
        "E06 / f(H0, 2) subedge inventory",
        ["generator", "#subedges"],
        [("fixpoint f(H0,2)", len(subs))],
    )


if __name__ == "__main__":
    path, tree, leaf_union = figure_7_tree()
    print("critical path:", path)
    print("leaf union:", sorted(leaf_union))
