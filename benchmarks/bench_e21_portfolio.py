"""E21 — the solver portfolio: racing SAT against branch-and-bound.

The repository carries two exact engines for every ``Check(X, k)``
block task — the engine-backed branch-and-bound and the CNF
elimination-ordering encoding of :mod:`repro.sat` — and neither
dominates: branch-and-bound is near-instant on sparse cycles and
grids, while the SAT core wins on small dense blocks (cliques,
CSP-shaped instances) where subedge combinations drown the search.
``solver="portfolio"`` races both per ``(block, k)`` task, predicted
winner first, and cancels the loser, so a mixed corpus should run at
roughly the sum of per-instance minima.

Corpora:

* **dense** — the race corpus: instances calibrated so each pure mode
  is badly wrong somewhere (bb stalls on K7 and the arity-3 CSPs, SAT
  crawls on the long cycles).  The headline assertion lives here:
  portfolio throughput >= both pure modes.
* **smoke** — a tiny subset for CI: answer parity across all three
  modes, no timing assertion (shared runners are too noisy for one).

Run ``python benchmarks/bench_e21_portfolio.py --corpus dense`` for
the full race, or ``--corpus smoke`` for the CI check.
"""

import random
import time

from _tables import emit

from repro import engine
from repro.pipeline import BatchRequest, last_batch_stats, solve_many
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    random_csp_hypergraph,
    triangle_cascade,
)

MODES = ("bb", "sat", "portfolio")

#: corpus name -> list of (label, make()) thunks.  All ghw: it is the
#: measure whose check tasks both engines implement at equal strength,
#: so the race is engine-vs-engine, not encoding-vs-encoding.
CORPORA = {
    "dense": [
        ("K7", lambda: clique(7)),
        ("csp(9,16)", lambda: random_csp_hypergraph(9, 16, arity=3, rng=random.Random(3))),
        ("csp(10,18)", lambda: random_csp_hypergraph(10, 18, arity=3, rng=random.Random(4))),
        ("C12", lambda: cycle(12)),
        ("C14", lambda: cycle(14)),
        ("K5", lambda: clique(5)),
        ("K6", lambda: clique(6)),
        ("C9", lambda: cycle(9)),
        ("grid(3,3)", lambda: grid(3, 3)),
        ("tri4", lambda: triangle_cascade(4)),
    ],
    "smoke": [
        ("K5", lambda: clique(5)),
        ("C9", lambda: cycle(9)),
        ("tri3", lambda: triangle_cascade(3)),
        ("grid(3,3)", lambda: grid(3, 3)),
    ],
}


def build_requests(corpus: str = "dense") -> list[BatchRequest]:
    """The ghw request list for one named corpus."""
    return [
        BatchRequest(make(), "ghw", label=label)
        for label, make in CORPORA[corpus]
    ]


def run_mode(requests, mode: str, jobs: int):
    """One timed ``solve_many`` pass from cold caches.

    The bounds pre-pass is pinned off: E21 measures the engine race
    itself, which needs the exact Check tasks to actually run (the
    pre-pass would decide most of this corpus without a single race —
    that effect is E22's subject, bench_e22_bounds_collapse.py).
    """
    engine.clear_context_registry()
    start = time.perf_counter()
    results = solve_many(requests, jobs=jobs, solver=mode, bounds="none")
    elapsed = time.perf_counter() - start
    widths = []
    for request, handle in zip(requests, results):
        assert handle.ok, f"{mode}/{request.label}: {handle.error!r}"
        widths.append(handle.value[0])
    return widths, elapsed, last_batch_stats()


def race(jobs: int = 1, corpus: str = "dense") -> dict:
    """Race all three solver modes over one corpus.

    Returns a ``{"metrics": ..., "timings": ...}`` report (the shape
    ``tools/record_bench.py`` records as ``BENCH_E21.json``) after
    asserting the acceptance criterion that every mode returns
    identical widths on every instance.
    """
    requests = build_requests(corpus)
    widths = {}
    seconds = {}
    stats = {}
    for mode in MODES:
        widths[mode], seconds[mode], stats[mode] = run_mode(
            requests, mode, jobs
        )
    for request, bb_w, sat_w, race_w in zip(
        requests, widths["bb"], widths["sat"], widths["portfolio"]
    ):
        assert bb_w == sat_w == race_w, (
            f"{request.label}: bb={bb_w} sat={sat_w} portfolio={race_w}"
        )
    best_pure = min(seconds["bb"], seconds["sat"])
    return {
        "metrics": {
            "corpus": corpus,
            "jobs": jobs,
            "instances": [
                {
                    "instance": request.label,
                    "vertices": request.hypergraph.num_vertices,
                    "edges": request.hypergraph.num_edges,
                    "ghw": width,
                }
                for request, width in zip(requests, widths["bb"])
            ],
            "tasks": {
                mode: {
                    "run": stats[mode].tasks_run,
                    "cancelled": stats[mode].tasks_cancelled,
                }
                for mode in MODES
            },
        },
        "timings": {
            **{f"{mode}_seconds": round(seconds[mode], 4) for mode in MODES},
            "portfolio_vs_best_pure": round(
                best_pure / seconds["portfolio"], 2
            ),
        },
    }


def emit_report(report: dict) -> None:
    metrics, timings = report["metrics"], report["timings"]
    n = len(metrics["instances"])
    emit(
        f"E21 / solver portfolio race: {n} ghw requests "
        f"({metrics['corpus']} corpus, jobs={metrics['jobs']})",
        ["mode", "wall", "req/s", "tasks run", "cancelled"],
        [
            (
                mode,
                f"{timings[f'{mode}_seconds']:.3f}s",
                f"{n / timings[f'{mode}_seconds']:.1f}",
                metrics["tasks"][mode]["run"],
                metrics["tasks"][mode]["cancelled"],
            )
            for mode in MODES
        ],
    )
    emit(
        "E21 / per-instance widths (identical across all three modes)",
        ["instance", "n", "m", "ghw"],
        [
            (row["instance"], row["vertices"], row["edges"], row["ghw"])
            for row in metrics["instances"]
        ],
    )


def test_e21_portfolio_beats_pure_modes(benchmark):
    report = benchmark.pedantic(
        lambda: race(jobs=1, corpus="dense"), rounds=1, iterations=1
    )
    timings = report["timings"]
    best_pure = min(timings["bb_seconds"], timings["sat_seconds"])
    assert timings["portfolio_seconds"] < best_pure, (
        f"portfolio {timings['portfolio_seconds']:.3f}s should beat the "
        f"best pure mode at {best_pure:.3f}s"
    )
    emit_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--corpus", choices=sorted(CORPORA), default="dense")
    args = parser.parse_args()
    report = race(jobs=args.jobs, corpus=args.corpus)
    emit_report(report)
    timings = report["timings"]
    # The throughput claim is calibrated for one slot per task pair:
    # with spare workers the twins genuinely race (the multicore
    # hedge), which on a single-CPU box just splits the GIL.
    if args.corpus == "dense" and args.jobs == 1:
        best_pure = min(timings["bb_seconds"], timings["sat_seconds"])
        assert timings["portfolio_seconds"] < best_pure, (
            f"portfolio {timings['portfolio_seconds']:.3f}s should beat "
            f"the best pure mode at {best_pure:.3f}s"
        )
    print(
        f"\nOK: all widths identical across {', '.join(MODES)}; "
        f"portfolio {timings['portfolio_vs_best_pure']:.2f}x the best "
        f"pure mode"
    )
