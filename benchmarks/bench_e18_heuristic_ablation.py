"""E18 (ablation) — heuristic width bounds vs the exact oracle.

DESIGN.md calls out the exact-DP range limit (~18 vertices) as the
library's main scalability trade-off; practical systems pair exact
methods with elimination heuristics.  This ablation quantifies the
sandwich quality: clique lower bound <= exact fhw <= heuristic upper
bound, with the gap and the speedup, and shows the heuristics keep
working past the exact oracle's range.
"""

import time

from _tables import emit, emit_engine_stats, measure_engine

from repro.algorithms import (
    clique_lower_bound,
    fractional_hypertree_width_exact,
    width_bounds,
)
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    triangle_cascade,
)
from repro.paper_artifacts import example_4_3_hypergraph


def sandwich_rows() -> list[tuple]:
    instances = [
        ("C7", cycle(7)),
        ("K5", clique(5)),
        ("grid(3,3)", grid(3, 3)),
        ("triangles(3)", triangle_cascade(3)),
        ("Example4.3-H0", example_4_3_hypergraph()),
    ]
    rows = []
    for label, h in instances:
        t0 = time.perf_counter()
        exact, _d = fractional_hypertree_width_exact(h)
        exact_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        lower, upper, _w = width_bounds(h)
        heur_time = time.perf_counter() - t0
        rows.append(
            (
                label,
                round(lower, 3),
                round(exact, 3),
                round(upper, 3),
                round(upper - exact, 3),
                f"{exact_time * 1000:.0f}ms",
                f"{heur_time * 1000:.0f}ms",
            )
        )
    return rows


def test_e18_sandwich_quality(benchmark):
    rows = benchmark(sandwich_rows)
    for label, lower, exact, upper, gap, _te, _th in rows:
        assert lower <= exact + 1e-9, label
        assert exact <= upper + 1e-9, label
        assert gap <= 1.0 + 1e-9, f"{label}: heuristic gap too large"
    emit(
        "E18 / heuristic sandwich: clique LB <= exact fhw <= heuristic UB",
        ["instance", "lower", "exact fhw", "upper", "gap", "exact time", "heuristic time"],
        rows,
    )


def test_e18_beyond_exact_range(benchmark):
    """grid(5,5) has 25 vertices — out of 2^n range; heuristics answer."""

    def big():
        h = grid(5, 5)
        lower, upper, _w = width_bounds(h)
        return lower, upper, h.num_vertices

    lower, upper, n = benchmark(big)
    assert n == 25 and lower <= upper
    emit(
        "E18 supplement: past the exact-DP limit",
        ["instance", "|V|", "fhw lower", "fhw upper"],
        [("grid(5,5)", n, round(lower, 3), round(upper, 3))],
    )


def bounds_pruning_rows() -> list[tuple]:
    """The same heuristics wired in as the solver's bounds pre-pass.

    For each instance: exact ghw Check tasks run with the portfolio
    pre-pass (the default) vs ``bounds="none"``, plus the number of
    blocks the pre-pass decided outright.  Widths must match — the
    pre-pass witnesses are re-validated, so it never changes answers.
    """
    from repro.pipeline import WidthSolver

    instances = [
        ("C7", cycle(7)),
        ("K5", clique(5)),
        ("grid(3,3)", grid(3, 3)),
        ("triangles(3)", triangle_cascade(3)),
        ("Example4.3-H0", example_4_3_hypergraph()),
    ]
    rows = []
    for label, h in instances:
        on = WidthSolver(h)
        width_on, _d = on.generalized_hypertree_width()
        off = WidthSolver(h, bounds="none")
        width_off, _d = off.generalized_hypertree_width()
        assert width_on == width_off, label
        rows.append(
            (
                label,
                width_on,
                off.last_stats.tasks_run,
                on.last_stats.tasks_run,
                on.last_stats.bounds_blocks_decided,
            )
        )
    return rows


def test_e18_bounds_pruning(benchmark):
    """The ablation's practical payoff: the sandwich, used as a
    pre-pass, removes exact Check tasks without changing any width."""
    rows = benchmark(bounds_pruning_rows)
    total_off = sum(row[2] for row in rows)
    total_on = sum(row[3] for row in rows)
    assert total_on < total_off
    assert any(decided > 0 for *_rest, decided in rows)
    emit(
        "E18 / heuristics as bounds pre-pass: exact ghw tasks removed",
        ["instance", "ghw", "tasks (no bounds)", "tasks (portfolio)", "blocks decided"],
        rows,
    )


def test_e18_engine_stats_on_sandwich(benchmark):
    """The exact-vs-heuristic sandwich shares one CoverOracle per
    instance, so the heuristic pass re-reads bags the exact DP already
    solved — the nonzero cross-algorithm hit count on the combined
    workload is the sharing the engine exists for."""
    stats = benchmark(lambda: measure_engine(sandwich_rows))
    assert stats["cache_hits"] > 0
    assert stats["lp_solves"] > 0
    emit_engine_stats("E18 / engine stats on the sandwich workload", {"cached": stats})


if __name__ == "__main__":
    emit(
        "E18 sandwich",
        ["inst", "lb", "exact", "ub", "gap", "t_exact", "t_heur"],
        sandwich_rows(),
    )
    emit_engine_stats(
        "E18 engine stats (sandwich workload)",
        {"cached": measure_engine(sandwich_rows)},
    )
    emit(
        "E18 bounds pre-pass pruning",
        ["inst", "ghw", "tasks off", "tasks on", "decided"],
        bounds_pruning_rows(),
    )
