"""E19 (ablation) — the GYO fast path for width-1 checks.

ghw(H) = 1 iff H is α-acyclic (the paper's footnote 1 notion).  The GYO
reduction decides this in near-linear time, whereas the generic
``k-decomp`` search at k = 1 explores separators.  This ablation checks
the two agree on a mixed suite and measures the speedup on acyclic
instances of growing size.
"""

import random
import time

from _tables import emit

from repro.algorithms import check_hd
from repro.hypergraph import is_alpha_acyclic, join_tree
from repro.decomposition import is_ghd
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    cycle,
    grid,
    random_cq_hypergraph,
)


def agreement_rows() -> list[tuple]:
    rng = random.Random(5)
    instances = [("cycle(6)", cycle(6)), ("grid(2,3)", grid(2, 3))]
    for i in range(4):
        instances.append(
            (f"acyclic#{i}", acyclic_hypergraph(6, 3, rng=random.Random(i)))
        )
        instances.append(
            (
                f"cq#{i}",
                random_cq_hypergraph(
                    5, cyclicity=0.5, rng=random.Random(rng.randint(0, 10**9))
                ),
            )
        )
    rows = []
    for label, h in instances:
        gyo = is_alpha_acyclic(h)
        kdecomp = check_hd(h, 1)
        rows.append((label, h.num_edges, gyo, kdecomp, gyo == kdecomp))
    return rows


def scaling_rows() -> list[tuple]:
    rows = []
    for n_edges in (10, 20, 40):
        h = acyclic_hypergraph(n_edges, 4, rng=random.Random(n_edges))
        t0 = time.perf_counter()
        gyo = is_alpha_acyclic(h)
        gyo_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        kd = check_hd(h, 1)
        kd_time = time.perf_counter() - t0
        assert gyo and kd
        rows.append(
            (
                n_edges,
                h.num_vertices,
                f"{gyo_time * 1000:.1f}ms",
                f"{kd_time * 1000:.1f}ms",
                round(kd_time / max(gyo_time, 1e-9), 1),
            )
        )
    return rows


def test_e19_gyo_agrees_with_kdecomp(benchmark):
    rows = benchmark(agreement_rows)
    assert all(agree for *_x, agree in rows)
    emit(
        "E19 / α-acyclicity: GYO vs Check(HD,1)",
        ["instance", "|E|", "GYO", "k-decomp", "agree"],
        rows,
    )


def test_e19_join_tree_valid(benchmark):
    h = acyclic_hypergraph(12, 4, rng=random.Random(3))

    def build():
        return join_tree(h)

    jt = benchmark(build)
    assert jt is not None
    assert is_ghd(h, jt, width=1)


def test_e19_speedup(benchmark):
    rows = benchmark(scaling_rows)
    emit(
        "E19 / GYO fast path speedup on acyclic instances",
        ["|E|", "|V|", "GYO time", "k-decomp time", "speedup"],
        rows,
    )


if __name__ == "__main__":
    emit("E19 agreement", ["inst", "|E|", "gyo", "kd", "agree"], agreement_rows())
    emit("E19 speedup", ["|E|", "|V|", "gyo", "kd", "x"], scaling_rows())
