"""E14 — Lemma 6.24: BMIP ⇒ bounded VC dimension, but not conversely.

Direction 1: on a mixed suite, vc(H) <= c + c-miwidth(H) for c = 2, 3.
Direction 2: the counterexample family E = {V \\ {v_i}} keeps vc < 2 while
its c-multi-intersection width grows as n − c — no BMIP constants exist.
"""

from _tables import emit

from repro.hypergraph import multi_intersection_width, vc_dimension
from repro.hypergraph.generators import (
    bounded_vc_unbounded_miwidth_family,
    clique,
    cycle,
    grid,
    hyperbench_like_suite,
)


def direction1_rows() -> list[tuple]:
    suite = [
        ("K5", clique(5)),
        ("C7", cycle(7)),
        ("grid(3,3)", grid(3, 3)),
    ] + [
        (f"suite#{i}", h)
        for i, h in enumerate(hyperbench_like_suite(seed=2, n_cq=5, n_csp=2))
    ]
    rows = []
    for label, h in suite:
        vc = vc_dimension(h)
        for c in (2, 3):
            i = multi_intersection_width(h, c)
            rows.append((label, c, i, vc, vc <= c + i))
    return rows


def direction2_rows() -> list[tuple]:
    rows = []
    for n in (5, 8, 11, 14):
        h = bounded_vc_unbounded_miwidth_family(n)
        rows.append(
            (
                n,
                vc_dimension(h),
                multi_intersection_width(h, 2),
                multi_intersection_width(h, 3),
                n - 3,
            )
        )
    return rows


def test_e14_bmip_implies_bounded_vc(benchmark):
    rows = benchmark(direction1_rows)
    assert all(ok for *_x, ok in rows)
    emit(
        "E14 / Lemma 6.24: vc(H) <= c + c-miwidth(H)",
        ["instance", "c", "c-miwidth", "vc", "vc <= c + i"],
        rows,
    )


def test_e14_converse_fails(benchmark):
    rows = benchmark(direction2_rows)
    for n, vc, mi2, mi3, lower in rows:
        assert vc < 2  # bounded VC dimension
        assert mi3 >= lower  # miwidth grows with n: no BMIP constants
        assert mi2 == n - 2
    emit(
        "E14 / Lemma 6.24 counterexample family E = {V \\ {v_i}}",
        ["n", "vc", "2-miwidth", "3-miwidth", "paper lower bound n-3"],
        rows,
    )


if __name__ == "__main__":
    emit("E14 dir1", ["inst", "c", "i", "vc", "ok"], direction1_rows())
    emit("E14 dir2", ["n", "vc", "mi2", "mi3", "n-3"], direction2_rows())
