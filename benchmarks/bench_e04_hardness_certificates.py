"""E04 — Theorem 3.2: φ satisfiable ⟺ ghw(H) <= 2 ⟺ fhw(H) <= 2.

Both directions, computationally:

* forward — for satisfiable φ, the Table 1 GHD exists and validates;
  for unsatisfiable φ it does not;
* backward (the LP certificates of Lemmas 3.5/3.6 and Claims D-F) —
  complementary-edge weight equality, literal-edge support confinement,
  and the three infeasible vertex sets;
* the Claim I engine — for every truth assignment Z, the path bag of
  clause j is weight-2 coverable iff clause j is satisfied, making
  "∃Z: all bags coverable" ⟺ "φ satisfiable" (checked exhaustively).
"""

from _tables import emit

from repro.hardness import CNF, build_reduction, paper_example_formula

FORMULAS = {
    "paper Ex3.3 (sat)": paper_example_formula(),
    "single clause (sat)": CNF(((1, 2, 3),)),
    "x & !x (unsat)": CNF(((1, 1, 1), (-1, -1, -1))),
    "2-var complete (unsat)": CNF(
        ((1, 2, 2), (1, -2, -2), (-1, 2, 2), (-1, -2, -2))
    ),
}


def certificate_rows() -> list[tuple]:
    rows = []
    for label, formula in FORMULAS.items():
        r = build_reduction(formula)
        forward = r.verify_forward() is not None
        equivalence = r.certify_equivalence()
        rows.append(
            (
                label,
                formula.is_satisfiable(),
                forward,
                equivalence,
            )
        )
    return rows


def lemma_rows() -> list[tuple]:
    r = build_reduction(paper_example_formula())
    claims = r.certify_claim_infeasibilities()
    rows = [
        ("Lemma 3.5 (complementary weights equal)", r.certify_lemma_3_5()),
        ("Lemma 3.6 (support confined to lit edges)", r.certify_lemma_3_6()),
    ]
    rows += [(label, ok) for label, ok in claims.items()]
    return rows


def test_e04_reduction_equivalence(benchmark):
    rows = benchmark(certificate_rows)
    for label, sat, forward, equivalence in rows:
        assert forward == sat, f"{label}: forward direction mismatch"
        assert equivalence, f"{label}: LP equivalence failed"
    emit(
        "E04 / Theorem 3.2: φ sat ⟺ width-2 decomposition of H(φ)",
        ["formula", "satisfiable", "Table-1 GHD exists", "LP equivalence"],
        rows,
    )


def test_e04_lemma_certificates(benchmark):
    rows = benchmark(lemma_rows)
    assert all(ok for _label, ok in rows)
    emit(
        "E04 / Lemmas 3.5, 3.6 and Claims D-F as LP certificates",
        ["certificate", "holds"],
        rows,
    )


if __name__ == "__main__":
    emit(
        "E04 / Theorem 3.2 equivalences",
        ["formula", "sat", "forward", "LP equivalence"],
        certificate_rows(),
    )
    emit("E04 / lemma certificates", ["certificate", "holds"], lemma_rows())
