"""E13 — Theorem 6.23 / Corollary 6.25: O(k log k) via integrality gaps.

Measures the cover integrality gap cigap(H) = ρ(H)/ρ*(H) against the
Ding-Seymour-Winkler style bound max(1, 2·vc(H^d)·log(11 ρ*(H))) used in
the Theorem 6.23 proof, and runs the FHD → greedy-integralized GHD
pipeline, reporting the achieved width ratios.
"""

from _tables import emit

from repro.algorithms import (
    fractional_hypertree_width_exact,
    oklogk_decomposition,
)
from repro.covers import (
    cover_integrality_gap,
    dsw_gap_bound,
    fractional_edge_cover_number,
)
from repro.hypergraph import vc_dimension
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    triangle_cascade,
    unbounded_support_family,
)


def instances():
    return [
        ("K4", clique(4)),
        ("K5", clique(5)),
        ("K6", clique(6)),
        ("K7", clique(7)),
        ("C7", cycle(7)),
        ("grid(3,3)", grid(3, 3)),
        ("Ex5.1(n=6)", unbounded_support_family(6)),
        ("triangles(3)", triangle_cascade(3)),
    ]


def gap_rows() -> list[tuple]:
    rows = []
    for label, h in instances():
        gap = cover_integrality_gap(h)
        bound = dsw_gap_bound(h)
        rows.append(
            (
                label,
                vc_dimension(h),
                round(fractional_edge_cover_number(h), 4),
                round(gap, 4),
                round(bound, 4),
                gap <= bound + 1e-9,
            )
        )
    return rows


def pipeline_rows() -> list[tuple]:
    rows = []
    for label, h in instances():
        if h.num_vertices > 12:
            continue
        fhw, fhd = fractional_hypertree_width_exact(h)
        ghd, ratio = oklogk_decomposition(h, fhd)
        rows.append(
            (label, round(fhw, 4), round(ghd.width(), 4), round(ratio, 4))
        )
    return rows


def test_e13_integrality_gap_bound(benchmark):
    rows = benchmark(gap_rows)
    assert all(within for *_x, within in rows)
    emit(
        "E13 / Thm 6.23: cigap(H) vs the VC-dimension bound",
        ["instance", "vc(H)", "ρ*", "cigap", "DSW bound", "within bound"],
        rows,
    )


def test_e13_oklogk_pipeline(benchmark):
    rows = benchmark(pipeline_rows)
    for label, fhw, ghw_width, ratio in rows:
        assert ratio >= 1 - 1e-9
        # O(k log k): generous concrete check for these tiny widths.
        assert ghw_width <= max(1.0, 2.5 * fhw), label
    emit(
        "E13 / Cor 6.25: FHD -> greedy GHD width ratios",
        ["instance", "fhw", "integralized ghd width", "ratio"],
        rows,
    )


if __name__ == "__main__":
    emit("E13 gaps", ["inst", "vc", "ρ*", "cigap", "bound", "ok"], gap_rows())
    emit("E13 pipeline", ["inst", "fhw", "ghd", "ratio"], pipeline_rows())
