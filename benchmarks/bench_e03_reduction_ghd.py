"""E03 — Example 3.3 / Table 1 / Figure 2: the explicit width-2 GHD.

Rebuilds the reduction hypergraph for φ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3),
constructs the Table 1 GHD from the satisfying assignment σ(x1)=1,
σ(x2)=σ(x3)=0 used in the paper, validates every GHD condition, and prints
the Table 1 rows (bag composition + λ edges per node).
"""

from _tables import emit

from repro.decomposition import violations
from repro.hardness import build_reduction, paper_example_formula


def build_and_validate():
    r = build_reduction(paper_example_formula())
    assignment = [True, False, False]  # the paper's σ
    ghd = r.table1_ghd(assignment)
    problems = violations(r.hypergraph, ghd, kind="ghd", width=2)
    return r, ghd, problems


def table1_rows(r, ghd) -> list[tuple]:
    rows = []
    for nid in [ghd.root, *_path_order(ghd)]:
        if nid in (row[0] for row in rows):
            continue
        bag = ghd.bag(nid)
        lam = ",".join(sorted(ghd.cover(nid).support))
        rows.append((nid, len(bag), lam))
    return rows


def _path_order(ghd):
    order = []
    nid = ghd.root
    while True:
        children = ghd.children(nid)
        if not children:
            break
        nid = children[0]
        order.append(nid)
    return order


def test_e03_table_1_ghd(benchmark):
    r, ghd, problems = benchmark(build_and_validate)
    assert problems == []
    assert ghd.width() == 2.0
    # Figure 2 structure: a path of 3 + 1 + 17 + 1 + 3 = 25 nodes.
    assert len(ghd) == 25
    rows = table1_rows(r, ghd)
    emit(
        "E03 / Table 1: the width-2 GHD of H(φ), φ = Example 3.3",
        ["node", "|B_u|", "λ_u (weight-1 edges)"],
        rows,
    )
    # Spot-check Table 1's first and last rows.
    assert rows[0][0] == "uC"
    assert rows[0][2] == "gC1,gC2"
    assert rows[-1][2] == "gC1p,gC2p"


def test_e03_alternative_assignment_also_works(benchmark):
    """The paper notes σ(x1)=σ(x2)=σ(x3)=true also satisfies φ."""
    r = build_reduction(paper_example_formula())

    def build():
        ghd = r.table1_ghd([True, True, True])
        return violations(r.hypergraph, ghd, kind="ghd", width=2)

    problems = benchmark(build)
    assert problems == []


if __name__ == "__main__":
    r, ghd, problems = build_and_validate()
    emit(
        "E03 / Table 1 GHD",
        ["node", "|B_u|", "λ_u"],
        table1_rows(r, ghd),
    )
    print("validation problems:", problems or "none")
