"""E12 — Theorem 6.20 / Algorithm 4: the PTAAS for K-Bounded-FHW.

Runs FHW-Approximation and reproduces its guarantees: final width within
ε of fhw(H), failure exactly when fhw(H) > K, and the iteration count
bounded by the ⌈log(K'/ε')⌉ analysis at the end of the Theorem 6.20 proof.
"""

import math

from _tables import emit

from repro.algorithms import (
    fhw_approximation,
    fractional_hypertree_width_exact,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, triangle_cascade


def instances():
    return [
        ("triangle", Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})),
        ("C6", cycle(6)),
        ("K5", clique(5)),
        ("triangles(2)", triangle_cascade(2)),
    ]


def ptaas_rows(K: float = 3.0, eps: float = 0.5) -> list[tuple]:
    rows = []
    iteration_bound = math.ceil(math.log2((K + eps - 1) / (eps / 3))) + 1
    for label, h in instances():
        exact, _w = fractional_hypertree_width_exact(h)
        result = fhw_approximation(h, K=K, eps=eps)
        rows.append(
            (
                label,
                round(exact, 4),
                round(result.width, 4),
                round(result.width - exact, 6),
                result.iterations,
                iteration_bound,
            )
        )
    return rows


def test_e12_ptaas_guarantees(benchmark):
    K, eps = 3.0, 0.5
    rows = benchmark(ptaas_rows, K, eps)
    for label, exact, width, gap, iters, bound in rows:
        assert gap < eps + 1e-9, f"{label}: PTAAS gap {gap} >= ε"
        assert iters <= bound + 1, f"{label}: too many iterations"
    emit(
        "E12 / Thm 6.20: PTAAS widths and iteration counts (K=3, ε=0.5)",
        ["instance", "fhw", "PTAAS width", "gap", "iterations", "⌈log(K'/ε')⌉ bound"],
        rows,
    )


def test_e12_fails_above_K(benchmark):
    """fhw(K6) = 3 > K = 2: the algorithm must answer 'fhw > K'."""
    result = benchmark(fhw_approximation, clique(6), 2.0, 0.5)
    assert result.failed
    emit(
        "E12 supplement: K-boundedness",
        ["instance", "K", "outcome"],
        [("K6 (fhw = 3)", 2.0, "fails as required")],
    )


if __name__ == "__main__":
    emit(
        "E12 / PTAAS",
        ["inst", "fhw", "width", "gap", "iters", "bound"],
        ptaas_rows(),
    )
