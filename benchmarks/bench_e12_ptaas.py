"""E12 — Theorem 6.20 / Algorithm 4: the PTAAS for K-Bounded-FHW.

Runs FHW-Approximation and reproduces its guarantees: final width within
ε of fhw(H), failure exactly when fhw(H) > K, and the iteration count
bounded by the ⌈log(K'/ε')⌉ analysis at the end of the Theorem 6.20 proof.
"""

import math

from _tables import emit, emit_engine_stats, emit_pipeline_stats, measure_engine

from repro.algorithms import (
    fhw_approximation,
    fractional_hypertree_width_exact,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, triangle_cascade
from repro.pipeline import WidthSolver


def instances():
    return [
        ("triangle", Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})),
        ("C6", cycle(6)),
        ("K5", clique(5)),
        ("triangles(2)", triangle_cascade(2)),
    ]


def ptaas_rows(K: float = 3.0, eps: float = 0.5) -> list[tuple]:
    rows = []
    iteration_bound = math.ceil(math.log2((K + eps - 1) / (eps / 3))) + 1
    for label, h in instances():
        exact, _w = fractional_hypertree_width_exact(h)
        result = fhw_approximation(h, K=K, eps=eps)
        rows.append(
            (
                label,
                round(exact, 4),
                round(result.width, 4),
                round(result.width - exact, 6),
                result.iterations,
                iteration_bound,
            )
        )
    return rows


def test_e12_ptaas_guarantees(benchmark):
    K, eps = 3.0, 0.5
    rows = benchmark(ptaas_rows, K, eps)
    for label, exact, width, gap, iters, bound in rows:
        assert gap < eps + 1e-9, f"{label}: PTAAS gap {gap} >= ε"
        assert iters <= bound + 1, f"{label}: too many iterations"
    emit(
        "E12 / Thm 6.20: PTAAS widths and iteration counts (K=3, ε=0.5)",
        ["instance", "fhw", "PTAAS width", "gap", "iterations", "⌈log(K'/ε')⌉ bound"],
        rows,
    )


REPEAT_QUERIES = 3


def engine_cache_stats() -> dict[str, dict]:
    """Cover-LP solve counts for repeated PTAAS queries, cached vs not.

    Each search memoizes its own covers per run (that guarantee never
    depends on the engine), so the CoverOracle's contribution is the
    sharing *across* searches: Algorithm 4's probes partially overlap,
    and a repeated width query — the ROADMAP's query-serving pattern,
    here the same PTAAS asked three times — re-reads covers an earlier
    search already solved.  The shared (bag, allowed_edges) cache must
    cut cover solves by at least 2x on this traffic (measured: ~3.4x;
    a second identical query is nearly LP-free).
    """

    def workload():
        for _ in range(REPEAT_QUERIES):
            fhw_approximation(cycle(6), K=3.0, eps=0.5)

    return {
        "cached": measure_engine(workload),
        "uncached": measure_engine(workload, cache_size=0),
    }


def test_e12_engine_cache_reduces_lp_solves(benchmark):
    stats = benchmark(engine_cache_stats)
    cached, uncached = stats["cached"], stats["uncached"]
    solves_cached = cached["lp_solves"] + cached["set_cover_solves"]
    solves_uncached = uncached["lp_solves"] + uncached["set_cover_solves"]
    assert solves_uncached >= 2 * solves_cached, (
        f"cache should cut cover solves >= 2x: "
        f"{solves_uncached} uncached vs {solves_cached} cached"
    )
    assert cached["hit_rate"] > 0.5
    emit_engine_stats(
        f"E12 / engine cache: LP solves across {REPEAT_QUERIES} repeated "
        "PTAAS queries (C6)",
        stats,
    )


def ptaas_pipeline_stats() -> dict:
    """Per-stage pipeline stats of the PTAAS on each E12 instance.

    triangles(2) splits into two triangle blocks whose binary searches
    run independently; the single-block instances show the no-op reduce
    and split stages costing microseconds.
    """
    out = {}
    for label, h in instances():
        solver = WidthSolver(h)
        solver.fhw_approximation(K=3.0, eps=0.5)
        out[label] = solver.last_stats
    return out


def test_e12_pipeline_stage_stats(benchmark):
    stats = benchmark(ptaas_pipeline_stats)
    assert stats["triangles(2)"].blocks == 2
    emit_pipeline_stats(
        "E12 / pipeline per-stage stats of the PTAAS (K=3, ε=0.5)", stats
    )


def test_e12_fails_above_K(benchmark):
    """fhw(K6) = 3 > K = 2: the algorithm must answer 'fhw > K'."""
    result = benchmark(fhw_approximation, clique(6), 2.0, 0.5)
    assert result.failed
    emit(
        "E12 supplement: K-boundedness",
        ["instance", "K", "outcome"],
        [("K6 (fhw = 3)", 2.0, "fails as required")],
    )


if __name__ == "__main__":
    emit(
        "E12 / PTAAS",
        ["inst", "fhw", "width", "gap", "iters", "bound"],
        ptaas_rows(),
    )
    emit_engine_stats("E12 engine cache (cached vs uncached)", engine_cache_stats())
    emit_pipeline_stats("E12 pipeline per-stage stats", ptaas_pipeline_stats())
