"""E23 (serving) — the always-on daemon surviving a restart warm.

``repro serve`` pairs the batch scheduler with a persistent result
store (``repro.store``): settled verdicts, stitched witnesses and
cover-oracle entries outlive the process.  The claim this benchmark
pins is the serving payoff:

* a **restarted** daemon answers a repeat-heavy workload entirely from
  the store — **zero LP solves and zero exact Check tasks** (the
  scheduler/engine counters stay flat, asserted, not eyeballed) — with
  answers identical to the cold run's;
* **request coalescing** serves K identical concurrent requests with
  exactly ONE scheduler run (``solves`` +1, ``coalesced`` +K-1).

Phases: a cold daemon serves the trace into a fresh store; the daemon
is drained and discarded; engine caches are cleared (so nothing warm
survives in-process); a new daemon on the same store replays the
trace; finally K identical concurrent requests for a novel instance
are gated in flight to prove the single-solve coalescing window.
The true cross-process restart is pinned by ``tests/test_store.py``
and ``tests/test_serve.py``; here the store is the only state carried
over, which is the same guarantee measured end to end.

Corpora:

* **full** — a HyperBench-style suite plus dense generator instances,
  hw + ghw + fhw mixed, each request repeated 3x (real query traffic
  repeats).
* **smoke** — a small subset for CI, same assertions.

Run ``python benchmarks/bench_e23_warm_restart.py`` for the full
workload, or ``--corpus smoke`` for the CI check.
"""

import asyncio
import tempfile
import threading
import time

from _tables import emit

from repro import engine
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    hyperbench_like_suite,
    triangle_cascade,
)
from repro.serve import DecompositionServer, ServeClient

#: Identical concurrent requests in the coalescing phase.
COALESCE_K = 6


def build_trace(corpus: str = "full") -> list[tuple]:
    """A repeat-heavy ``(label, hypergraph, kind)`` request trace."""
    if corpus == "full":
        suite = hyperbench_like_suite(seed=0, n_cq=10, n_csp=3)
        named = [(f"hb{i:02d}", h) for i, h in enumerate(suite)]
        named += [
            ("K5", clique(5)),
            ("C10", cycle(10)),
            ("grid(3,3)", grid(3, 3)),
            ("tri3", triangle_cascade(3)),
        ]
        kinds, repeats = ("hw", "ghw", "fhw"), 3
    elif corpus == "smoke":
        suite = hyperbench_like_suite(seed=0, n_cq=4, n_csp=1)
        named = [(f"hb{i:02d}", h) for i, h in enumerate(suite)]
        named += [("K4", clique(4)), ("C6", cycle(6))]
        kinds, repeats = ("hw", "ghw"), 2
    else:
        raise ValueError(f"unknown corpus {corpus!r}")
    unique = [
        (f"{label}/{kind}", h, kind)
        for label, h in named
        for kind in kinds
    ]
    return unique * repeats


class _LiveServer:
    """A daemon on its own loop thread, plus a client to it."""

    def __init__(self, store_dir):
        self.server = DecompositionServer(port=0, store=store_dir)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30)
        self.client = ServeClient(
            self.server.host, self.server.port, timeout=600.0
        )

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=300)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def serve_trace(live: _LiveServer, trace) -> tuple[list, float]:
    """Replay the trace against a live daemon; answers + wall clock."""
    answers = []
    start = time.perf_counter()
    for label, h, kind in trace:
        response = live.client.solve(h, kind, label=label)
        assert response["ok"], f"{label}: {response}"
        answers.append(response["answer"])
    return answers, time.perf_counter() - start


def coalescing_window(live: _LiveServer, k: int = COALESCE_K) -> dict:
    """K identical concurrent requests held in flight, then released.

    Gating ``_run_batch`` makes the window deterministic: all K are in
    the pending map before the one admitted solve may finish.
    """
    release = threading.Event()
    original = live.server._run_batch

    def gated(request):
        release.wait(timeout=120)
        return original(request)

    live.server._run_batch = gated
    novel = Hypergraph(
        {f"e{i}": [f"w{i}", f"w{(i + 1) % 7}"] for i in range(7)},
        name="novel-coalesce",
    )
    before = live.server.stats.as_dict()
    results = [None] * k

    def call(i):
        results[i] = live.client.solve(novel, "ghw")

    threads = [
        threading.Thread(target=call, args=(i,), daemon=True)
        for i in range(k)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 60
    while live.server.stats.coalesced - before["coalesced"] < k - 1:
        assert time.monotonic() < deadline, "coalescing window never filled"
        time.sleep(0.01)
    release.set()
    for t in threads:
        t.join(timeout=120)
    live.server._run_batch = original
    after = live.server.stats.as_dict()
    widths = {r["answer"]["width"] for r in results}
    assert len(widths) == 1, f"coalesced answers disagree: {widths}"
    return {
        "requests": k,
        "solves": after["solves"] - before["solves"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "width": results[0]["answer"]["width"],
    }


def warm_restart(corpus: str = "full") -> dict:
    """Cold run → drain → restart on the same store → warm run.

    Returns the ``{"metrics", "timings"}`` report recorded as
    ``BENCH_E23.json``, after asserting the acceptance criteria.
    """
    trace = build_trace(corpus)
    with tempfile.TemporaryDirectory() as store_dir:
        engine.clear_context_registry()
        cold = _LiveServer(store_dir)
        cold_answers, cold_seconds = serve_trace(cold, trace)
        cold_stats = cold.server.stats.as_dict()
        cold.stop()

        # Nothing warm survives in-process: the store is the only
        # state the restarted daemon inherits.
        engine.clear_context_registry()
        warm = _LiveServer(store_dir)
        warm_answers, warm_seconds = serve_trace(warm, trace)
        warm_stats = warm.server.stats.as_dict()
        assert warm_answers == cold_answers, "restart changed an answer"
        assert warm_stats["lp_solves"] == 0, (
            f"warm daemon ran {warm_stats['lp_solves']} LP solves"
        )
        assert warm_stats["tasks_run"] == 0, (
            f"warm daemon ran {warm_stats['tasks_run']} exact Check tasks"
        )
        assert warm_stats["store_instance_hits"] == len(trace)

        window = coalescing_window(warm)
        assert window["solves"] == 1, (
            f"{window['requests']} identical concurrent requests took "
            f"{window['solves']} scheduler runs (want exactly 1)"
        )
        assert window["coalesced"] == window["requests"] - 1
        warm.stop()

    return {
        "metrics": {
            "corpus": corpus,
            "trace_length": len(trace),
            "unique_computations": len(
                {(h.canonical_hash(), kind) for _, h, kind in trace}
            ),
            "cold": {
                key: cold_stats[key]
                for key in (
                    "solves",
                    "lp_solves",
                    "tasks_run",
                    "store_instance_hits",
                )
            },
            "warm": {
                key: warm_stats[key]
                for key in (
                    "solves",
                    "lp_solves",
                    "tasks_run",
                    "store_instance_hits",
                )
            },
            "coalescing": window,
        },
        "timings": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
        },
    }


def emit_report(report: dict) -> None:
    metrics, timings = report["metrics"], report["timings"]
    emit(
        f"E23 / warm restart: {metrics['trace_length']}-request trace, "
        f"{metrics['unique_computations']} unique computations "
        f"({metrics['corpus']} corpus)",
        ["daemon", "scheduler runs", "LP solves", "exact tasks",
         "store hits", "wall"],
        [
            (
                phase,
                metrics[phase]["solves"],
                metrics[phase]["lp_solves"],
                metrics[phase]["tasks_run"],
                metrics[phase]["store_instance_hits"],
                f"{timings[f'{phase}_seconds']:.3f}s",
            )
            for phase in ("cold", "warm")
        ],
    )
    window = metrics["coalescing"]
    emit(
        f"E23 / coalescing window ({timings['speedup']}x faster warm)",
        ["counter", "value"],
        [
            ("identical concurrent requests", window["requests"]),
            ("scheduler runs", window["solves"]),
            ("coalesced joins", window["coalesced"]),
            ("agreed width", window["width"]),
        ],
    )


def test_e23_warm_restart(benchmark):
    report = benchmark.pedantic(
        lambda: warm_restart(corpus="full"), rounds=1, iterations=1
    )
    warm = report["metrics"]["warm"]
    assert warm["lp_solves"] == 0 and warm["tasks_run"] == 0
    assert report["metrics"]["coalescing"]["solves"] == 1
    emit_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--corpus", choices=("full", "smoke"), default="full"
    )
    args = parser.parse_args()
    report = warm_restart(corpus=args.corpus)
    emit_report(report)
    metrics = report["metrics"]
    print(
        f"\nOK: restart answered {metrics['trace_length']} requests with "
        f"0 LP solves and 0 exact tasks; "
        f"{metrics['coalescing']['requests']} identical concurrent "
        f"requests -> 1 scheduler run"
    )
