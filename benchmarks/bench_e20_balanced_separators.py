"""E20 (ablation) — balanced separators as width lower bounds.

Every GHD has a centroid node whose bag balances the vertex set, so the
absence of a balanced λ-separator with |λ| <= k certifies ghw > k.  This
ablation measures the bound's quality against the exact oracle and the
clique lower bound across instance families, showing where each bound
dominates.
"""

from _tables import emit

from repro.algorithms import (
    clique_lower_bound,
    generalized_hypertree_width_exact,
    ghw_balance_lower_bound,
)
from repro.hypergraph.generators import clique, cycle, grid, triangle_cascade
from repro.paper_artifacts import example_4_3_hypergraph


def bound_rows() -> list[tuple]:
    instances = [
        ("C8", cycle(8)),
        ("grid(3,3)", grid(3, 3)),
        ("K6", clique(6)),
        ("triangles(3)", triangle_cascade(3)),
        ("Example4.3-H0", example_4_3_hypergraph()),
    ]
    rows = []
    for label, h in instances:
        exact, _d = generalized_hypertree_width_exact(h)
        balance = ghw_balance_lower_bound(h, kmax=exact + 1)
        cliq = clique_lower_bound(h, cost="integral")
        rows.append(
            (
                label,
                exact,
                balance,
                int(round(cliq)),
                max(balance, int(round(cliq))),
            )
        )
    return rows


def test_e20_bounds_are_sound_and_useful(benchmark):
    rows = benchmark(bound_rows)
    for label, exact, balance, cliq, combined in rows:
        assert balance <= exact, f"{label}: balance bound unsound"
        assert cliq <= exact, f"{label}: clique bound unsound"
    # Each bound must be the better one somewhere (they complement).
    assert any(balance >= cliq for _l, _e, balance, cliq, _c in rows)
    assert any(cliq >= balance for _l, _e, balance, cliq, _c in rows)
    emit(
        "E20 / lower bounds on ghw: balance vs clique",
        ["instance", "exact ghw", "balance LB", "clique LB", "combined"],
        rows,
    )


def test_e20_separator_witness(benchmark):
    """The returned separator really balances the hypergraph."""
    from repro.algorithms import balanced_separator, is_balanced_separator

    g = grid(3, 3)

    def find():
        return balanced_separator(g, 2)

    cover = benchmark(find)
    assert cover is not None
    assert is_balanced_separator(g, g.vertices_of(cover.support))


if __name__ == "__main__":
    emit(
        "E20 bounds",
        ["inst", "ghw", "balance", "clique", "combined"],
        bound_rows(),
    )
