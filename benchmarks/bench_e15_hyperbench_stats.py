"""E15 — the HyperBench-style statistics table ([23], quoted in §1/§4).

The paper motivates the BIP/BMIP restrictions with empirical findings:
most real CQs are acyclic or have ghw 2, almost all have 2-bounded
intersections, and CSPs have higher degrees.  This regenerates that
statistics table on the synthetic suite (the offline stand-in for the
proprietary corpus, per DESIGN.md) — the *shape* of the numbers is the
reproduction target.
"""

from _tables import emit

from repro.algorithms import check_ghd
from repro.hypergraph import (
    degree,
    intersection_width,
    multi_intersection_width,
)
from repro.hypergraph.generators import hyperbench_like_suite
from repro.pipeline import reduce_instance, split_instance


def suite_statistics(seed: int = 0, n_cq: int = 20, n_csp: int = 6):
    suite = hyperbench_like_suite(seed=seed, n_cq=n_cq, n_csp=n_csp)
    stats = {
        "instances": len(suite),
        "acyclic (ghw=1)": 0,
        "ghw<=2": 0,
        "2-BIP": 0,
        "BMIP(c=3,i=2)": 0,
        "degree<=5": 0,
    }
    for h in suite:
        if intersection_width(h) <= 2:
            stats["2-BIP"] += 1
        if multi_intersection_width(h, 3) <= 2:
            stats["BMIP(c=3,i=2)"] += 1
        if degree(h) <= 5:
            stats["degree<=5"] += 1
        if check_ghd(h, 1):
            stats["acyclic (ghw=1)"] += 1
            stats["ghw<=2"] += 1
        elif check_ghd(h, 2):
            stats["ghw<=2"] += 1
    return stats


def stats_rows(stats: dict) -> list[tuple]:
    total = stats["instances"]
    return [
        (key, value, f"{100 * value / total:.0f}%")
        for key, value in stats.items()
        if key != "instances"
    ]


def test_e15_hyperbench_shape(benchmark):
    stats = benchmark(suite_statistics, 0, 20, 6)
    total = stats["instances"]
    rows = stats_rows(stats)
    emit(
        f"E15 / HyperBench-style statistics over {total} synthetic instances",
        ["property", "count", "fraction"],
        rows,
    )
    # The paper's empirical claims, as shape constraints:
    assert stats["ghw<=2"] / total >= 0.7      # "majority ... have ghw = 2"
    assert stats["2-BIP"] / total >= 0.7       # "overwhelming number ... BIP"
    assert stats["BMIP(c=3,i=2)"] >= stats["2-BIP"]  # BMIP is more liberal


def test_e15_deterministic(benchmark):
    s1 = benchmark(suite_statistics, 42, 8, 2)
    s2 = suite_statistics(42, 8, 2)
    assert s1 == s2


def preprocess_profile(seed: int = 0, n_cq: int = 20, n_csp: int = 6):
    """How much of the HyperBench-style suite the pipeline strips away.

    Mirrors the published finding that real CQ hypergraphs are mostly
    trivial structure: the reduce stage removes vertices/edges and the
    split stage finds multiple biconnected blocks on a large fraction of
    the suite — exactly the work the width searches no longer see.
    """
    suite = hyperbench_like_suite(seed=seed, n_cq=n_cq, n_csp=n_csp)
    profile = {
        "instances": len(suite),
        "vertices_total": sum(h.num_vertices for h in suite),
        "vertices_removed": 0,
        "edges_total": sum(h.num_edges for h in suite),
        "edges_removed": 0,
        "reduced instances": 0,
        "multi-block instances": 0,
        "blocks_total": 0,
    }
    for h in suite:
        reduced = reduce_instance(h, kind="ghd")
        blocks = split_instance(reduced.hypergraph)
        profile["vertices_removed"] += reduced.vertices_removed
        profile["edges_removed"] += reduced.edges_removed
        profile["reduced instances"] += 1 if reduced.changed else 0
        profile["multi-block instances"] += 1 if len(blocks) > 1 else 0
        profile["blocks_total"] += len(blocks)
    return profile


def test_e15_pipeline_preprocess_profile(benchmark):
    profile = benchmark(preprocess_profile, 0, 20, 6)
    emit(
        f"E15 / pipeline preprocessing profile over "
        f"{profile['instances']} synthetic instances",
        ["metric", "value"],
        [(k, v) for k, v in profile.items() if k != "instances"],
    )
    # The suite is CQ-like: reduction must fire on a solid majority.
    assert profile["reduced instances"] >= profile["instances"] * 0.5
    assert profile["vertices_removed"] > 0


if __name__ == "__main__":
    stats = suite_statistics()
    emit(
        f"E15 statistics ({stats['instances']} instances)",
        ["property", "count", "fraction"],
        stats_rows(stats),
    )
    profile = preprocess_profile()
    emit(
        f"E15 pipeline preprocessing profile ({profile['instances']} instances)",
        ["metric", "value"],
        [(k, v) for k, v in profile.items() if k != "instances"],
    )
