"""E24 (serving) — end-to-end query answering over cached plans.

``POST /query`` turns the daemon into a CQ answering service: the
query's **plan** (the ghw decomposition of its hypergraph) is the
coalesced, store-persisted computation, while Yannakakis execution
over the request's own relations runs per request.  The claims this
benchmark pins, on counters rather than timings:

* a **restarted** daemon on the same store answers every repeated
  query shape **plan-warm** — zero LP solves and zero exact Check
  tasks — with answers **byte-identical** to the cold run's;
* **plan coalescing**: K identical concurrent queries cost exactly
  one plan computation (``plans_computed`` +1, ``coalesced`` +K-1)
  while every caller still gets its own executed answer;
* **plan sharing across data**: the same query shape over different
  databases computes its plan once.

Phases: a cold daemon serves a repeat-heavy concurrent query trace
into a fresh store; the daemon is drained and discarded; engine
caches are cleared; a new daemon on the same store replays the trace;
finally K identical concurrent queries are gated in flight to prove
the single-plan coalescing window.

Corpora:

* **full** — star/chain/cycle/snowflake/Boolean-chain shapes over a
  random graph plus a hub-and-spoke graph, each request repeated 3x.
* **smoke** — fewer shapes and repeats for CI, same assertions.

Run ``python benchmarks/bench_e24_query_serving.py`` for the full
workload, or ``--corpus smoke`` for the CI check.
"""

import asyncio
import json
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from _tables import emit

from repro import engine
from repro.cqcsp import relation_to_payload
from repro.cqcsp.workloads import (
    chain_query,
    cycle_query,
    hub_relation,
    random_graph_relation,
    snowflake_query,
    star_query,
)
from repro.serve import DecompositionServer, ServeClient

#: Identical concurrent queries in the plan-coalescing phase.
COALESCE_K = 6

#: Concurrent client threads replaying the trace.
CLIENT_THREADS = 8

_STAT_KEYS = (
    "queries",
    "query_answers",
    "plans_computed",
    "plan_store_hits",
    "lp_solves",
    "tasks_run",
)


def build_trace(corpus: str = "full") -> list[tuple]:
    """A repeat-heavy ``(label, query_text, relations)`` query trace.

    Relations are pre-encoded payloads so every repeat posts the exact
    same bytes.  The chain shape runs over BOTH databases: same plan
    key, different answers — the sharing the plan cache exploits.
    """
    if corpus == "full":
        graph = {"r": relation_to_payload(random_graph_relation(12, 0.25, seed=7))}
        hubs = {"r": relation_to_payload(hub_relation(3, 4, seed=7))}
        shapes = [
            ("star3", star_query(3)),
            ("chain4", chain_query(4)),
            ("cycle4", cycle_query(4)),
            ("snowflake2x2", snowflake_query(2, 2)),
            ("bool-chain3", chain_query(3, boolean=True)),
        ]
        repeats = 3
    elif corpus == "smoke":
        graph = {"r": relation_to_payload(random_graph_relation(9, 0.3, seed=7))}
        hubs = {"r": relation_to_payload(hub_relation(2, 3, seed=7))}
        shapes = [
            ("star3", star_query(3)),
            ("chain3", chain_query(3)),
            ("cycle4", cycle_query(4)),
        ]
        repeats = 2
    else:
        raise ValueError(f"unknown corpus {corpus!r}")
    unique = [
        (f"{label}/{db_name}", str(query), db)
        for label, query in shapes
        for db_name, db in (("graph", graph), ("hubs", hubs))
        if db_name == "graph" or label.startswith("chain")
    ]
    return unique * repeats


def unique_plan_count(trace) -> int:
    """Distinct plan keys in the trace: shapes, not (shape, data) pairs."""
    return len({text for _, text, _ in trace})


class _LiveServer:
    """A daemon on its own loop thread, plus a client to it."""

    def __init__(self, store_dir):
        self.server = DecompositionServer(port=0, store=store_dir)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30)
        self.client = ServeClient(
            self.server.host, self.server.port, timeout=600.0
        )

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=300)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def serve_trace(live: _LiveServer, trace) -> tuple[dict, float]:
    """Replay the trace concurrently; canonical answers + wall clock.

    Returns ``{label: serialized answer}`` after asserting every repeat
    of a label produced the identical answer bytes.
    """
    def query(entry):
        label, text, relations = entry
        response = live.client.query(text, relations, label=label)
        assert response["ok"], f"{label}: {response}"
        payload = {
            key: response[key] for key in ("width", "answers", "satisfied")
        }
        return label, json.dumps(payload, sort_keys=True)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        results = list(pool.map(query, trace))
    seconds = time.perf_counter() - start

    answers: dict = {}
    for label, blob in results:
        if label in answers:
            assert answers[label] == blob, f"{label}: repeats disagree"
        answers[label] = blob
    return answers, seconds


def coalescing_window(live: _LiveServer, trace, k: int = COALESCE_K) -> dict:
    """K identical concurrent queries held in flight, then released.

    Gating ``_run_plan`` makes the window deterministic: all K are in
    the pending map before the one admitted plan may finish.  Every
    caller still gets its own executed answer (``query_answers`` +K).
    """
    release = threading.Event()
    entered = threading.Event()
    original = live.server._run_plan

    def gated(query):
        entered.set()
        release.wait(timeout=120)
        return original(query)

    live.server._run_plan = gated
    # A shape absent from the trace, so the plan cannot be warm.
    novel = str(cycle_query(5))
    _, _, relations = trace[0]
    before = live.server.stats.as_dict()
    results = [None] * k

    def call(i):
        results[i] = live.client.query(novel, relations)

    threads = [
        threading.Thread(target=call, args=(i,), daemon=True)
        for i in range(k)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 60
    while not (
        entered.is_set()
        and live.server.stats.coalesced - before["coalesced"] >= k - 1
    ):
        assert time.monotonic() < deadline, "coalescing window never filled"
        time.sleep(0.01)
    release.set()
    for t in threads:
        t.join(timeout=120)
    live.server._run_plan = original
    after = live.server.stats.as_dict()
    blobs = {json.dumps(r["answers"], sort_keys=True) for r in results}
    assert len(blobs) == 1, "coalesced queries got different answers"
    return {
        "queries": k,
        "plans_computed": after["plans_computed"] - before["plans_computed"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "answers_executed": after["query_answers"] - before["query_answers"],
        "width": results[0]["width"],
    }


def plan_warm_restart(corpus: str = "full") -> dict:
    """Cold query serving → drain → restart on the same store → warm.

    Returns the ``{"metrics", "timings"}`` report recorded as
    ``BENCH_E24.json``, after asserting the acceptance criteria.
    """
    trace = build_trace(corpus)
    unique_plans = unique_plan_count(trace)
    with tempfile.TemporaryDirectory() as store_dir:
        engine.clear_context_registry()
        cold = _LiveServer(store_dir)
        cold_answers, cold_seconds = serve_trace(cold, trace)
        cold_stats = cold.server.stats.as_dict()
        cold.stop()
        cold_work = cold_stats["lp_solves"] + cold_stats["tasks_run"]
        assert cold_work > 0, "cold run should pay solver work for plans"
        assert cold_stats["plan_store_hits"] == 0

        # Nothing warm survives in-process: the store is the only
        # state the restarted daemon inherits.
        engine.clear_context_registry()
        warm = _LiveServer(store_dir)
        warm_answers, warm_seconds = serve_trace(warm, trace)
        warm_stats = warm.server.stats.as_dict()
        assert warm_answers == cold_answers, "restart changed an answer"
        assert warm_stats["lp_solves"] == 0, (
            f"plan-warm daemon ran {warm_stats['lp_solves']} LP solves"
        )
        assert warm_stats["tasks_run"] == 0, (
            f"plan-warm daemon ran {warm_stats['tasks_run']} exact tasks"
        )
        assert warm_stats["plan_store_hits"] == unique_plans
        assert warm_stats["query_answers"] == len(trace)

        window = coalescing_window(warm, trace)
        assert window["plans_computed"] == 1, (
            f"{window['queries']} identical concurrent queries took "
            f"{window['plans_computed']} plan computations (want exactly 1)"
        )
        assert window["coalesced"] == window["queries"] - 1
        assert window["answers_executed"] == window["queries"]
        warm.stop()

    return {
        "metrics": {
            "corpus": corpus,
            "trace_length": len(trace),
            "unique_plans": unique_plans,
            "answers_identical": True,  # asserted above, byte-for-byte
            "cold": {key: cold_stats[key] for key in _STAT_KEYS},
            "warm": {key: warm_stats[key] for key in _STAT_KEYS},
            "coalescing": window,
        },
        "timings": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
        },
    }


def emit_report(report: dict) -> None:
    metrics, timings = report["metrics"], report["timings"]
    emit(
        f"E24 / query serving: {metrics['trace_length']}-query trace, "
        f"{metrics['unique_plans']} unique plans "
        f"({metrics['corpus']} corpus)",
        ["daemon", "queries", "answers", "plans", "plan store hits",
         "LP solves", "exact tasks", "wall"],
        [
            (
                phase,
                metrics[phase]["queries"],
                metrics[phase]["query_answers"],
                metrics[phase]["plans_computed"],
                metrics[phase]["plan_store_hits"],
                metrics[phase]["lp_solves"],
                metrics[phase]["tasks_run"],
                f"{timings[f'{phase}_seconds']:.3f}s",
            )
            for phase in ("cold", "warm")
        ],
    )
    window = metrics["coalescing"]
    emit(
        f"E24 / plan-coalescing window ({timings['speedup']}x faster warm)",
        ["counter", "value"],
        [
            ("identical concurrent queries", window["queries"]),
            ("plan computations", window["plans_computed"]),
            ("coalesced joins", window["coalesced"]),
            ("answers executed", window["answers_executed"]),
            ("agreed plan width", window["width"]),
        ],
    )


def test_e24_query_serving(benchmark):
    report = benchmark.pedantic(
        lambda: plan_warm_restart(corpus="full"), rounds=1, iterations=1
    )
    warm = report["metrics"]["warm"]
    assert warm["lp_solves"] == 0 and warm["tasks_run"] == 0
    assert report["metrics"]["coalescing"]["plans_computed"] == 1
    emit_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--corpus", choices=("full", "smoke"), default="full"
    )
    args = parser.parse_args()
    report = plan_warm_restart(corpus=args.corpus)
    emit_report(report)
    metrics = report["metrics"]
    print(
        f"\nOK: restarted daemon answered {metrics['trace_length']} queries "
        f"plan-warm (0 LP solves, 0 exact tasks, answers byte-identical); "
        f"{metrics['coalescing']['queries']} identical concurrent queries "
        f"-> 1 plan computation"
    )
