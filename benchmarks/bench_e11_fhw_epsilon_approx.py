"""E11 — Theorem 6.1 / Lemma 6.4: width k+ε FHDs under the BIP.

Runs (k, ε, c)-frac-decomp on 1-BIP instances at k = fhw(H) for shrinking
ε and compares the achieved width against the exact fhw: the gap stays
below ε, and the produced FHDs have c-bounded fractional parts and the
weak special condition (re-validated, not assumed).
"""

from _tables import emit

from repro.algorithms import frac_decomp, fractional_hypertree_width_exact
from repro.decomposition import (
    check_fractional_part_bounded,
    check_weak_special_condition,
    is_fhd,
)
from repro.hypergraph import Hypergraph, intersection_width
from repro.hypergraph.generators import clique, cycle


def instances():
    return [
        ("triangle", Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})),
        ("K4", clique(4)),
        ("K5", clique(5)),
        ("C6", cycle(6)),
    ]


def approx_rows(eps: float) -> list[tuple]:
    rows = []
    for label, h in instances():
        exact, _w = fractional_hypertree_width_exact(h)
        d = frac_decomp(h, exact, eps=eps, c=3)
        assert d is not None, f"{label}: frac-decomp failed at k = fhw"
        gap = d.width() - exact
        valid = is_fhd(h, d, width=exact + eps + 1e-9)
        wsc = check_weak_special_condition(h, d) == []
        cbound = check_fractional_part_bounded(h, d, 3) == []
        rows.append(
            (
                label,
                intersection_width(h),
                round(exact, 4),
                eps,
                round(d.width(), 4),
                round(max(gap, 0.0), 6),
                valid and wsc and cbound,
            )
        )
    return rows


def test_e11_width_within_eps(benchmark):
    rows = benchmark(approx_rows, 0.5)
    for label, _iw, exact, eps, width, gap, valid in rows:
        assert gap <= eps + 1e-9, f"{label}: gap {gap} > ε"
        assert valid, f"{label}: FHD conditions failed"
    emit(
        "E11 / Thm 6.1: frac-decomp width vs exact fhw (ε = 0.5)",
        ["instance", "iwidth", "fhw", "ε", "achieved", "gap", "valid FHD+WSC+c-bounded"],
        rows,
    )


def test_e11_shrinking_epsilon(benchmark):
    """Tightening ε never loosens the achieved width."""

    def sweep():
        out = []
        for eps in (1.0, 0.5, 0.25):
            rows = approx_rows(eps)
            out.append((eps, max(r[5] for r in rows)))
        return out

    rows = benchmark(sweep)
    gaps = [g for _e, g in rows]
    assert all(g <= e + 1e-9 for (e, g) in rows)
    emit(
        "E11 supplement: max gap across instances per ε",
        ["ε", "max width gap"],
        [(e, round(g, 6)) for e, g in rows],
    )


if __name__ == "__main__":
    emit(
        "E11 / k+ε approximation",
        ["inst", "iw", "fhw", "eps", "got", "gap", "valid"],
        approx_rows(0.5),
    )
