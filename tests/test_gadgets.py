"""Tests for the Lemma 3.1 gadget's cover-theoretic core."""

import pytest

from repro.covers import (
    cover_feasible_within,
    fractional_edge_cover_number,
    support_confined,
)
from repro.hardness import (
    GADGET_CORE,
    GADGET_RESTRICTED,
    gadget_edges,
    gadget_hypergraph,
    gadget_vertex_names,
)
from repro.hypergraph import Hypergraph


class TestShape:
    def test_edge_counts(self):
        edges = gadget_edges(["m1"], ["m2"])
        assert len(edges) == 5 + 6 + 5

    def test_primed_names(self):
        edges = gadget_edges(["m1"], ["m2"], prime=True)
        assert "gA1p" in edges
        assert "a1p" in edges["gA1p"]

    def test_vertex_names(self):
        assert gadget_vertex_names()["a1"] == "a1"
        assert gadget_vertex_names(prime=True)["a1"] == "a1p"
        assert set(GADGET_RESTRICTED) < set(GADGET_CORE)

    def test_m_sets_placed(self):
        edges = gadget_edges(["m1x"], ["m2x"])
        for name in ("gA1", "gB1", "gC1"):
            assert "m1x" in edges[name]
        for name in ("gA2", "gB2", "gC2"):
            assert "m2x" in edges[name]
        for name in ("gA3", "gA4", "gA5", "gB5", "gB6"):
            assert "m1x" not in edges[name] and "m2x" not in edges[name]


class TestCliqueArguments:
    def test_three_4_cliques(self):
        g = gadget_hypergraph()
        assert g.is_clique(["a1", "a2", "b1", "b2"])
        assert g.is_clique(["b1", "b2", "c1", "c2"])
        assert g.is_clique(["c1", "c2", "d1", "d2"])

    def test_clique_cover_weight_2(self):
        """Each 4-clique needs weight exactly 2 (Lemma 2.3 reasoning)."""
        g = gadget_hypergraph()
        assert cover_feasible_within(g, ["a1", "a2", "b1", "b2"], 2.0)
        assert not cover_feasible_within(g, ["a1", "a2", "b1", "b2"], 1.9)

    def test_support_confinement_lemma_3_1(self):
        """Weight-2 covers of {a1,a2,b1,b2} use only E_A ∪ {{b1,b2}};
        hence B_uA ⊆ M ∪ {a1,a2,b1,b2} (the Lemma 3.1 argument)."""
        g = gadget_hypergraph(m1=["m1a", "m1b"], m2=["m2a", "m2b"])
        assert support_confined(
            g,
            ["a1", "a2", "b1", "b2"],
            2.0,
            ["gA1", "gA2", "gA3", "gA4", "gA5", "gB5"],
        )

    def test_support_confinement_middle_clique(self):
        g = gadget_hypergraph(m1=["m1a"], m2=["m2a"])
        assert support_confined(
            g,
            ["b1", "b2", "c1", "c2"],
            2.0,
            ["gB1", "gB2", "gB3", "gB4", "gB5", "gB6"],
        )

    def test_middle_bag_not_forced_by_lp_alone(self):
        """The LP does NOT force weight onto gB1/gB2 (gB3/gB4 suffice):
        Lemma 3.1's conclusion M ⊆ B_uB genuinely needs the connectedness
        argument about the disjoint subtrees T'_a and T'_d, not just the
        cover polytope.  This test documents that distinction."""
        from repro.covers import extremal_cover_value

        g = gadget_hypergraph(m1=["m1a"], m2=["m2a"])
        low = extremal_cover_value(
            g, ["b1", "b2", "c1", "c2"], 2.0, {"gB1": 1.0, "gB2": 1.0},
            maximize=False,
        )
        assert low == pytest.approx(0.0, abs=1e-6)


class TestAmbientRestriction:
    def test_restricted_vertices_stay_inside(self):
        """Building a bigger hypergraph around the gadget must not touch
        R = {a2, b1, b2, c1, c2, d1, d2} — mirror of the Lemma 3.1 premise."""
        edges = dict(gadget_edges(["m1"], ["m2"]))
        edges["outside"] = frozenset(["a1", "m1", "extern"])
        h = Hypergraph(edges)
        restricted = frozenset(GADGET_RESTRICTED)
        for name, content in h.edges.items():
            if not name.startswith("g"):
                assert not content & restricted

    def test_rho_star_of_gadget(self):
        g = gadget_hypergraph()
        # 8 core vertices + m1 + m2; three weight-2 cliques chained:
        # full cover needs 4 (three cliques share pairs).
        assert fractional_edge_cover_number(g) == pytest.approx(4.0)
