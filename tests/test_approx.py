"""Tests for the Section 6 approximation algorithms."""

import math

import pytest

from repro.algorithms import (
    fhw_approximation,
    frac_decomp,
    fractional_hypertree_width_exact,
    fractional_part_bound,
    integralize,
    oklogk_decomposition,
)
from repro.covers import EPS, dsw_gap_bound
from repro.decomposition import (
    check_fractional_part_bounded,
    check_weak_special_condition,
    is_fhd,
    is_ghd,
)
from repro.hypergraph import Hypergraph, intersection_width
from repro.hypergraph.generators import clique, cycle, grid, triangle_cascade


class TestFractionalPartBound:
    def test_lemma_6_4_formula(self):
        assert fractional_part_bound(2, 1, 1.0) == math.ceil(2 * 1 * 4 + 4 * 8 * 1 / 1)

    def test_eps_must_be_positive(self):
        with pytest.raises(ValueError):
            fractional_part_bound(2, 1, 0)


class TestFracDecomp:
    def test_finds_fhd_within_k_plus_eps(self):
        for h, fhw in ((clique(4), 2.0), (cycle(6), 2.0)):
            d = frac_decomp(h, fhw, eps=0.5)
            assert d is not None
            assert is_fhd(h, d, width=fhw + 0.5 + EPS)

    def test_rejects_below_fhw(self):
        k5 = clique(5)  # fhw = 2.5
        assert frac_decomp(k5, 1.5, eps=0.4) is None

    def test_fractional_part_is_c_bounded(self):
        k5 = clique(5)
        c = 3
        d = frac_decomp(k5, 2.5, eps=0.5, c=c)
        assert d is not None
        assert check_fractional_part_bounded(k5, d, c) == []

    def test_weak_special_condition_holds(self):
        t = triangle_cascade(2)
        d = frac_decomp(t, 2, eps=0.5)
        assert d is not None
        assert check_weak_special_condition(t, d) == []

    def test_integral_only_instances(self):
        """With c = 0 the search degenerates to GHD-style covers."""
        c4 = cycle(4)
        d = frac_decomp(c4, 2, eps=0.1, c=0)
        assert d is not None
        assert d.is_integral()


class TestPTAAS:
    def test_theorem_6_20_gap(self):
        """Algorithm 4 returns width < fhw + eps when fhw <= K."""
        for h in (cycle(6), clique(4), triangle_cascade(2)):
            fhw, _d = fractional_hypertree_width_exact(h)
            result = fhw_approximation(h, K=3, eps=0.75)
            assert not result.failed
            assert result.width < fhw + 0.75 + EPS

    def test_fails_above_K(self):
        k6 = clique(6)  # fhw = 3
        result = fhw_approximation(k6, K=2, eps=0.5)
        assert result.failed
        assert result.width is None

    def test_iteration_bound(self):
        """#iterations <= ceil(log2((K + eps - 1)/eps)) + small slack."""
        h = cycle(6)
        K, eps = 4.0, 0.5
        result = fhw_approximation(h, K=K, eps=eps)
        bound = math.ceil(math.log2((K + eps - 1) / (eps / 3))) + 2
        assert result.iterations <= bound
        assert len(result.trace) == result.iterations

    def test_trace_brackets_shrink(self):
        result = fhw_approximation(grid(2, 3), K=3, eps=0.5)
        widths = [high - low for low, high, _ok in result.trace]
        assert all(b <= a + EPS for a, b in zip(widths, widths[1:]))

    def test_custom_oracle(self):
        """Plugging the exact oracle in as find_fhd tightens the answer."""
        h = clique(5)

        def exact_find(hg, k, eps):
            width, d = fractional_hypertree_width_exact(hg)
            return d if width <= k + eps + EPS else None

        result = fhw_approximation(h, K=3, eps=0.3, find_fhd=exact_find)
        assert not result.failed
        assert result.width == pytest.approx(2.5)


class TestIntegralize:
    def test_produces_valid_ghd(self):
        for h in (clique(5), cycle(7)):
            _w, fhd = fractional_hypertree_width_exact(h)
            ghd = integralize(h, fhd)
            assert is_ghd(h, ghd)
            assert ghd.is_integral()

    def test_theorem_6_23_ratio_bound(self):
        """width(GHD)/width(FHD) <= max per-bag cigap <= DSW bound."""
        for h in (clique(5), clique(6), cycle(7), triangle_cascade(3)):
            fhw, fhd = fractional_hypertree_width_exact(h)
            ghd, ratio = oklogk_decomposition(h, fhd)
            assert ratio >= 1.0 - EPS
            assert ghd.width() <= dsw_gap_bound(h) * fhw + EPS

    def test_greedy_never_below_fhw(self):
        h = clique(5)
        fhw, fhd = fractional_hypertree_width_exact(h)
        ghd, _ratio = oklogk_decomposition(h, fhd)
        assert ghd.width() >= fhw - EPS


def test_frac_decomp_default_c_uses_iwidth():
    h = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
    assert intersection_width(h) == 1
    d = frac_decomp(h, 1.5, eps=0.5)
    assert d is not None
    assert d.width() <= 2.0 + EPS
