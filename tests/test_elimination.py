"""Tests for the exact elimination-ordering oracles."""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    decomposition_from_ordering,
    fractional_hypertree_width_exact,
    generalized_hypertree_width_exact,
    treewidth_exact,
    width_by_elimination,
)
from repro.covers import EPS, edge_cover_of
from repro.decomposition import is_fhd, is_ghd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import clique, cycle, grid, unbounded_support_family
from repro.paper_artifacts import example_4_3_hypergraph

from .strategies import hypergraphs


class TestKnownValues:
    def test_cycle_widths(self):
        c6 = cycle(6)
        assert generalized_hypertree_width_exact(c6)[0] == 2
        assert fractional_hypertree_width_exact(c6)[0] == pytest.approx(2.0)

    def test_triangle_fhw_is_1_5(self):
        t = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
        assert fractional_hypertree_width_exact(t)[0] == pytest.approx(1.5)
        assert generalized_hypertree_width_exact(t)[0] == 2

    def test_clique_widths(self):
        """ghw(K_n) = ceil(n/2), fhw(K_n) = n/2 (Lemma 2.3)."""
        assert generalized_hypertree_width_exact(clique(5))[0] == 3
        assert fractional_hypertree_width_exact(clique(5))[0] == pytest.approx(2.5)
        assert generalized_hypertree_width_exact(clique(6))[0] == 3
        assert fractional_hypertree_width_exact(clique(6))[0] == pytest.approx(3.0)

    def test_example_4_3(self):
        h0 = example_4_3_hypergraph()
        assert generalized_hypertree_width_exact(h0)[0] == 2
        # fhw <= ghw = 2 and H0 contains no easy fractional shortcut below 2.
        fhw, _d = fractional_hypertree_width_exact(h0)
        assert fhw <= 2.0 + EPS

    def test_treewidth_grid(self):
        assert treewidth_exact(grid(3, 3)) == 3
        assert treewidth_exact(cycle(5)) == 2

    def test_unbounded_support_family_fhw(self):
        """Ex 5.1 family: one bag covering everything costs 2 - 1/n."""
        h = unbounded_support_family(5)
        fhw, _d = fractional_hypertree_width_exact(h)
        assert fhw <= 2 - 1 / 5 + EPS


class TestWitnesses:
    def test_ghw_witness_validates(self):
        h = grid(3, 3)
        width, d = generalized_hypertree_width_exact(h)
        assert is_ghd(h, d, width=width)

    def test_fhw_witness_validates(self):
        h = clique(5)
        width, d = fractional_hypertree_width_exact(h)
        assert is_fhd(h, d, width=width + EPS)

    def test_vertex_limit_guard(self):
        with pytest.raises(ValueError, match="exceeds"):
            generalized_hypertree_width_exact(grid(5, 5), vertex_limit=10)

    def test_disconnected(self):
        h = Hypergraph({"e1": ["a", "b"], "e2": ["c", "d"]})
        width, d = generalized_hypertree_width_exact(h)
        assert width == 1
        assert is_ghd(h, d, width=1)

    def test_bad_ordering_rejected(self):
        h = cycle(4)
        with pytest.raises(ValueError, match="ordering"):
            decomposition_from_ordering(
                h, ["v1"], lambda bag: edge_cover_of(h, bag)
            )


class TestEliminationCore:
    def test_width_by_elimination_bag_cost_plumbing(self):
        h = cycle(4)
        width, ordering = width_by_elimination(h, lambda bag: float(len(bag)))
        assert width == 3.0  # treewidth 2 => max bag 3
        assert sorted(ordering) == sorted(h.vertices)


@given(hypergraphs(max_vertices=7, max_edges=6))
@settings(max_examples=20, deadline=None)
def test_width_chain(h: Hypergraph):
    """fhw <= ghw <= hw on arbitrary small hypergraphs (Section 1)."""
    from repro.algorithms import hypertree_width

    ghw, ghd = generalized_hypertree_width_exact(h)
    fhw, fhd = fractional_hypertree_width_exact(h)
    hw, _hd = hypertree_width(h)
    assert fhw <= ghw + EPS
    assert ghw <= hw
    assert is_ghd(h, ghd, width=ghw)
    assert is_fhd(h, fhd, width=fhw + EPS)


@given(hypergraphs(max_vertices=6, max_edges=5))
@settings(max_examples=15, deadline=None)
def test_lemma_2_7_monotonicity(h: Hypergraph):
    """ghw and fhw never grow under vertex-induced subhypergraphs."""
    vs = sorted(h.vertices, key=str)
    if len(vs) < 2:
        return
    sub = h.induced(vs[: len(vs) - 1])
    if sub.num_vertices == 0:
        return
    assert (
        generalized_hypertree_width_exact(sub)[0]
        <= generalized_hypertree_width_exact(h)[0]
    )
    assert (
        fractional_hypertree_width_exact(sub)[0]
        <= fractional_hypertree_width_exact(h)[0] + EPS
    )
