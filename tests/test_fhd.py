"""Tests for Check(FHD,k) under bounded degree (Section 5)."""

import pytest

from repro.algorithms import (
    check_fhd,
    fractional_hypertree_decomposition_bounded_degree,
    fractional_hypertree_width,
    fractional_hypertree_width_exact,
)
from repro.covers import EPS
from repro.decomposition import is_fhd
from repro.hypergraph import Hypergraph, degree
from repro.hypergraph.generators import cycle, grid, path_hypergraph

from .conftest import small_random_suite


class TestBoundedDegreeCheck:
    def test_triangle_fhw_1_5(self):
        t = Hypergraph({"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]})
        d = fractional_hypertree_decomposition_bounded_degree(t, 1.5)
        assert d is not None
        assert is_fhd(t, d, width=1.5 + EPS)
        assert d.width() == pytest.approx(1.5)
        assert not check_fhd(t, 1.4)

    def test_cycle_fhw_2(self):
        c6 = cycle(6)
        assert check_fhd(c6, 2)
        assert not check_fhd(c6, 1.9)

    def test_path_hypergraph_fhw_1(self):
        p = path_hypergraph(4, 3, 1)
        d = fractional_hypertree_decomposition_bounded_degree(p, 1)
        assert d is not None and d.width() == pytest.approx(1.0)

    def test_grid_2x3(self):
        g = grid(2, 3)
        exact, _w = fractional_hypertree_width_exact(g)
        assert check_fhd(g, exact + EPS)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            fractional_hypertree_decomposition_bounded_degree(cycle(4), 0.5)

    def test_explicit_degree_parameter(self):
        c5 = cycle(5)
        d = fractional_hypertree_decomposition_bounded_degree(
            c5, 2, d=degree(c5)
        )
        assert d is not None


class TestAgainstExactOracle:
    def test_agreement_on_low_degree_suite(self):
        """On degree-<=3 random instances the BDP algorithm agrees with
        the exact oracle at k = fhw and rejects at k = fhw - 0.1."""
        tested = 0
        for h in small_random_suite(count=6, seed=31):
            if degree(h) > 3 or h.num_vertices > 10:
                continue
            exact, _d = fractional_hypertree_width_exact(h)
            got = fractional_hypertree_decomposition_bounded_degree(
                h, exact + 1e-6
            )
            assert got is not None, f"{h!r}: should accept at fhw={exact}"
            assert got.width() <= exact + 1e-6
            if exact > 1.05:
                assert not check_fhd(h, exact - 0.05)
            tested += 1
        assert tested >= 2  # the suite must actually exercise the check


def test_fractional_hypertree_width_delegates_to_exact():
    c5 = cycle(5)
    width, d = fractional_hypertree_width(c5)
    exact, _d = fractional_hypertree_width_exact(c5)
    assert width == pytest.approx(exact)
    assert is_fhd(c5, d, width=width + EPS)
