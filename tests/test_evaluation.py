"""Tests for Yannakakis and decomposition-guided CQ evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqcsp import (
    Relation,
    atom_relation,
    evaluate,
    evaluate_naive,
    evaluate_with_decomposition,
    parse_cq,
    semijoin_reduce,
    yannakakis,
)
from repro.decomposition import Decomposition


def random_graph_db(n_vertices=15, n_edges=40, seed=0):
    rng = random.Random(seed)
    rows = set()
    while len(rows) < n_edges:
        a, b = rng.randint(1, n_vertices), rng.randint(1, n_vertices)
        if a != b:
            rows.add((a, b))
    return {"r": Relation.from_rows("r", ["a", "b"], rows)}


class TestAtomRelation:
    def test_rename(self):
        db = {"r": Relation.from_rows("r", ["c0", "c1"], [(1, 2)])}
        q = parse_cq("q(x) :- r(x, y).")
        rel = atom_relation(db, q.atoms[0])
        assert rel.attributes == ("x", "y")

    def test_repeated_variable_filters(self):
        db = {"r": Relation.from_rows("r", ["c0", "c1"], [(1, 1), (1, 2)])}
        q = parse_cq("q(x) :- r(x, x).")
        rel = atom_relation(db, q.atoms[0])
        assert rel.tuples == frozenset({(1,)})
        assert rel.attributes == ("x",)

    def test_arity_mismatch(self):
        db = {"r": Relation.from_rows("r", ["c0"], [(1,)])}
        q = parse_cq("q(x) :- r(x, y).")
        with pytest.raises(ValueError, match="arity"):
            atom_relation(db, q.atoms[0])


class TestYannakakis:
    def test_attribute_outside_bag_rejected(self):
        d = Decomposition.single_node(["x"], {"e": 1.0})
        rel = Relation.from_rows("n", ["x", "y"], [(1, 2)])
        with pytest.raises(ValueError, match="outside the bag"):
            yannakakis(d, {"root": rel}, ["x"])

    def test_semijoin_reduce_removes_dangling(self):
        d = Decomposition.path(
            [("a", ["x", "y"], {}), ("b", ["y", "z"], {})]
        )
        rels = {
            "a": Relation.from_rows("a", ["x", "y"], [(1, 2), (9, 9)]),
            "b": Relation.from_rows("b", ["y", "z"], [(2, 3)]),
        }
        reduced = semijoin_reduce(d, rels)
        assert reduced["a"].tuples == frozenset({(1, 2)})

    def test_boolean_result(self):
        d = Decomposition.single_node(["x"], {})
        rel = Relation.from_rows("n", ["x"], [(1,)])
        answers, _cost = yannakakis(d, {"root": rel}, [])
        assert answers.tuples == frozenset({()})

    def test_empty_means_no(self):
        d = Decomposition.single_node(["x"], {})
        rel = Relation.from_rows("n", ["x"], [])
        answers, _cost = yannakakis(d, {"root": rel}, [])
        assert answers.is_empty()


class TestEndToEnd:
    @pytest.mark.parametrize(
        "query_text",
        [
            "q(x, y, z) :- r(x, y), r(y, z), r(z, x).",  # triangle
            "q(x, w) :- r(x, y), r(y, z), r(z, w).",      # path, projected
            "q(x) :- r(x, y), r(y, x).",                  # 2-cycle
            ":- r(x, y), r(y, z).",                       # Boolean
        ],
    )
    def test_matches_naive(self, query_text):
        db = random_graph_db(seed=5)
        q = parse_cq(query_text)
        fast = evaluate(q, db)
        slow = evaluate_naive(q, db)
        assert fast.answers.tuples == slow.answers.tuples

    def test_explicit_width(self):
        db = random_graph_db(seed=6)
        q = parse_cq("q(x) :- r(x, y), r(y, z), r(z, x).")
        res = evaluate(q, db, k=2)
        assert res.answers.tuples == evaluate_naive(q, db).answers.tuples

    def test_width_too_small_rejected(self):
        db = random_graph_db(seed=6)
        q = parse_cq("q(x) :- r(x, y), r(y, z), r(z, x).")
        with pytest.raises(ValueError, match="no GHD"):
            evaluate(q, db, k=1)

    def test_fractional_cover_rejected(self):
        db = random_graph_db(seed=1)
        q = parse_cq("q(x) :- r(x, y).")
        d = Decomposition.single_node(["x", "y"], {"r#0": 0.5})
        with pytest.raises(ValueError, match="integral"):
            evaluate_with_decomposition(q, db, d)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_4cycle_query_random_dbs(seed):
    """The 4-cycle CQ (ghw 2) agrees with naive evaluation on random data."""
    db = random_graph_db(n_vertices=8, n_edges=20, seed=seed)
    q = parse_cq("q(a, c) :- r(a, b), r(b, c), r(c, d), r(d, a).")
    fast = evaluate(q, db)
    slow = evaluate_naive(q, db)
    assert fast.answers.tuples == slow.answers.tuples
