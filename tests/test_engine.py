"""Engine tests: SearchContext/CoverOracle agree with uncached computation,
LP backends agree with each other, and widths are unchanged by the refactor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covers import EPS, covered_vertices, fractional_cover_of
from repro.engine import (
    CheckSearch,
    CoverOracle,
    PurePythonSimplexBackend,
    available_backends,
    clear_context_registry,
    configure,
    engine_config,
    get_backend,
    get_context,
    oracle_for,
    reset_stats,
    stats,
)
from repro.hypergraph import Hypergraph, components
from repro.hypergraph.generators import clique, cycle, grid

from .strategies import hypergraphs


@st.composite
def hypergraph_and_region(draw):
    """A hypergraph plus a subset of its vertices (possibly empty)."""
    h = draw(hypergraphs())
    vertices = sorted(h.vertices, key=str)
    region = draw(st.sets(st.sampled_from(vertices)))
    return h, frozenset(region)


class TestSearchContext:
    @given(hypergraph_and_region())
    @settings(max_examples=50, deadline=None)
    def test_components_within_matches_induced(self, hr):
        h, region = hr
        ctx = get_context(h)
        got = set(ctx.components_within(ctx.intern(region)))
        expected = (
            set(components(h.induced(region), ())) if region else set()
        )
        assert got == expected
        # Memoized second call returns the identical tuple.
        assert ctx.components_within(ctx.intern(region)) is ctx.components_within(
            ctx.intern(region)
        )

    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_vertices_of_and_incident_edges_match_hypergraph(self, h):
        ctx = get_context(h)
        names = frozenset(list(h.edge_names)[: max(1, h.num_edges // 2)])
        assert ctx.vertices_of(names) == h.vertices_of(names)
        comp = frozenset(list(h.vertices)[:2])
        assert ctx.incident_edges(comp) == h.incident_edges(comp)

    @given(hypergraph_and_region())
    @settings(max_examples=40, deadline=None)
    def test_frontier_matches_direct_computation(self, hr):
        h, region = hr
        ctx = get_context(h)
        parent_cover = frozenset(list(h.edge_names)[:2])
        component = ctx.intern(region)
        expected = h.vertices_of(parent_cover) & h.vertices_of(
            h.incident_edges(component)
        )
        assert ctx.frontier(component, parent_cover) == expected

    def test_components_matches_module_function(self, k4):
        ctx = get_context(k4)
        sep = frozenset(list(k4.vertices)[:1])
        assert set(ctx.components(sep)) == set(components(k4, sep))

    def test_contexts_are_shared_for_equal_hypergraphs(self):
        a = Hypergraph({"e": ["x", "y"]})
        b = Hypergraph({"e": ["x", "y"]})
        assert get_context(a) is get_context(b)

    def test_interning_returns_canonical_sets(self, triangle):
        ctx = get_context(triangle)
        assert ctx.intern(frozenset({"x", "y"})) is ctx.intern({"y", "x"})


class TestCoverOracle:
    @given(hypergraph_and_region())
    @settings(max_examples=50, deadline=None)
    def test_fractional_cover_agrees_with_uncached(self, hr):
        h, bag = hr
        oracle = CoverOracle(get_context(h))
        direct = fractional_cover_of(h, bag)
        via_oracle = oracle.fractional_cover(bag)
        assert (direct is None) == (via_oracle is None)
        if direct is not None:
            assert abs(direct.weight - via_oracle.weight) <= 1e-6
            assert bag <= covered_vertices(h, via_oracle)

    @given(hypergraph_and_region())
    @settings(max_examples=30, deadline=None)
    def test_restricted_cover_agrees_with_uncached(self, hr):
        h, bag = hr
        allowed = frozenset(list(h.edge_names)[: max(1, h.num_edges // 2)])
        oracle = CoverOracle(get_context(h))
        direct = fractional_cover_of(h, bag, allowed_edges=allowed)
        via_oracle = oracle.fractional_cover(bag, allowed_edges=allowed)
        assert (direct is None) == (via_oracle is None)
        if direct is not None:
            assert abs(direct.weight - via_oracle.weight) <= 1e-6

    def test_cache_hits_are_counted_and_stable(self, k4):
        oracle = CoverOracle(get_context(k4), cache_size=16)
        bag = frozenset(list(k4.vertices)[:3])
        first = oracle.fractional_cover(bag)
        assert oracle.stats.misses == 1 and oracle.stats.hits == 0
        second = oracle.fractional_cover(bag)
        assert second is first  # cached object, not a re-solve
        assert oracle.stats.hits == 1
        assert oracle.stats.lp_solves == 1

    def test_cache_size_zero_disables_caching(self, k4):
        oracle = CoverOracle(get_context(k4), cache_size=0)
        bag = frozenset(list(k4.vertices)[:3])
        oracle.fractional_cover(bag)
        oracle.fractional_cover(bag)
        assert oracle.stats.lp_solves == 2
        assert oracle.stats.hits == 0

    def test_integral_cover_matches_set_cover(self, k5):
        oracle = oracle_for(k5)
        cover = oracle.integral_cover(k5.vertices)
        assert cover is not None and cover.is_integral()
        assert covered_vertices(k5, cover) == k5.vertices
        assert cover.weight == 3  # ρ(K5) = ⌈5/2⌉

    def test_capped_cover_has_no_integral_part(self, triangle):
        oracle = oracle_for(triangle)
        gamma = oracle.fractional_cover_capped(triangle.vertices)
        assert gamma is not None
        assert all(w < 1.0 for w in gamma.weights.values())
        assert abs(gamma.weight - 1.5) <= 1e-6

    def test_infeasible_bag_returns_none(self):
        h = Hypergraph({"e": ["a", "b"]}, vertices=["isolated"])
        oracle = CoverOracle(get_context(h))
        assert oracle.fractional_cover(frozenset({"isolated"})) is None


class TestBackends:
    @given(hypergraph_and_region())
    @settings(max_examples=40, deadline=None)
    def test_purepython_simplex_agrees_with_scipy(self, hr):
        h, bag = hr
        ctx = get_context(h)
        pure = CoverOracle(ctx, backend="purepython", cache_size=0)
        scipy_oracle = CoverOracle(ctx, backend="scipy", cache_size=0)
        a = pure.fractional_cover(bag)
        b = scipy_oracle.fractional_cover(bag)
        assert (a is None) == (b is None)
        if a is not None:
            assert abs(a.weight - b.weight) <= 1e-6
            assert bag <= covered_vertices(h, a)

    @given(hypergraph_and_region())
    @settings(max_examples=25, deadline=None)
    def test_purepython_capped_agrees_with_scipy(self, hr):
        h, bag = hr
        ctx = get_context(h)
        pure = CoverOracle(ctx, backend="purepython", cache_size=0)
        scipy_oracle = CoverOracle(ctx, backend="scipy", cache_size=0)
        a = pure.fractional_cover_capped(bag)
        b = scipy_oracle.fractional_cover_capped(bag)
        assert (a is None) == (b is None)
        if a is not None:
            assert abs(a.weight - b.weight) <= 1e-6

    def test_registry_lists_both_backends(self):
        names = available_backends()
        assert "purepython" in names and "scipy" in names
        assert isinstance(get_backend("purepython"), PurePythonSimplexBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown LP backend"):
            get_backend("cplex")


class TestConfiguration:
    def test_configure_roundtrip(self):
        original = engine_config().cache_size
        try:
            configure(backend="purepython", cache_size=7)
            assert engine_config().backend == "purepython"
            assert engine_config().cache_size == 7
            configure(backend="auto")
            assert engine_config().backend is None
        finally:
            configure(backend="auto", cache_size=original)

    def test_global_stats_accumulate(self, k4):
        clear_context_registry()
        reset_stats()
        oracle = oracle_for(k4)
        bag = frozenset(list(k4.vertices)[:3])
        oracle.fractional_cover(bag)
        oracle.fractional_cover(bag)
        snapshot = stats()
        assert snapshot["lp_solves"] >= 1
        assert snapshot["cache_hits"] >= 1
        assert 0.0 <= snapshot["hit_rate"] <= 1.0


class TestWidthsUnchangedAfterRefactor:
    """The paper's example hypergraphs keep their known widths."""

    def test_triangle(self, triangle):
        from repro.algorithms import (
            fractional_hypertree_width_exact,
            generalized_hypertree_width_exact,
            hypertree_width,
        )

        assert hypertree_width(triangle)[0] == 2
        assert generalized_hypertree_width_exact(triangle)[0] == 2
        assert abs(fractional_hypertree_width_exact(triangle)[0] - 1.5) <= EPS

    def test_cycles_and_cliques(self, c6, k4):
        from repro.algorithms import (
            fractional_hypertree_width_exact,
            generalized_hypertree_width,
            hypertree_width,
        )

        assert hypertree_width(c6)[0] == 2
        assert generalized_hypertree_width(c6)[0] == 2
        assert abs(fractional_hypertree_width_exact(k4)[0] - 2.0) <= 1e-6

    def test_paper_example_4_3(self, paper_h0):
        from repro.algorithms import (
            generalized_hypertree_width_exact,
            hypertree_width,
        )

        assert hypertree_width(paper_h0)[0] == 3
        assert generalized_hypertree_width_exact(paper_h0)[0] == 2

    def test_widths_same_on_both_backends(self, triangle, c6):
        from repro.algorithms import (
            fractional_hypertree_width_exact,
            hypertree_width,
        )

        results = {}
        for backend in ("scipy", "purepython"):
            clear_context_registry()
            configure(backend=backend)
            try:
                results[backend] = (
                    hypertree_width(triangle)[0],
                    round(fractional_hypertree_width_exact(c6)[0], 6),
                )
            finally:
                configure(backend="auto")
                clear_context_registry()
        assert results["scipy"] == results["purepython"] == (2, 2.0)


class TestCheckSearch:
    def test_guess_strategies_agree_on_feasibility(self, c6):
        for strategy in ("coverage", "lexicographic"):
            search = CheckSearch(c6, 2, guess_strategy=strategy)
            assert search.run() is not None
            search = CheckSearch(c6, 1, guess_strategy=strategy)
            assert search.run() is None

    def test_unknown_strategy_raises(self, c6):
        with pytest.raises(ValueError, match="guess_strategy"):
            CheckSearch(c6, 2, guess_strategy="random")

    def test_states_explored_counter(self, grid33):
        search = CheckSearch(grid33, 3)
        assert search.run() is not None
        assert search.states_explored > 0

    def test_searches_share_context_caches(self, grid33):
        clear_context_registry()
        first = CheckSearch(grid33, 3)
        first.run()
        warm = get_context(grid33).stats["hits"]
        second = CheckSearch(grid33, 3)
        assert second.context is first.context
        second.run()
        assert get_context(grid33).stats["hits"] > warm
