"""Differential evaluation harness: planner answers vs brute force.

Every test answers conjunctive queries twice — once through the full
plan-then-execute path (``QueryPlanner``: ghw solve, join tree from the
stitched witness, semijoin reduction + Yannakakis) and once through an
independent nested-loop reference evaluator written here from the CQ
semantics alone — and asserts the answer sets are identical.  Random
queries and databases come from Hypothesis; the canonical benchmark
shapes (star / chain / cycle / snowflake) run against the workload
generators.  Edge cases the harness pins explicitly: empty relations,
repeated variables in one atom, constants, Boolean (empty-head)
queries, self-joins and duplicated atoms.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.cqcsp import (
    Atom,
    ConjunctiveQuery,
    Const,
    QueryPlanner,
    Relation,
    answer_query,
    chain_query,
    cycle_query,
    evaluate_naive,
    hub_relation,
    parse_cq,
    random_graph_relation,
    snowflake_query,
    star_query,
)

# ---------------------------------------------------------------------------
# The reference evaluator: nested-loop backtracking straight from the
# CQ semantics.  Shares no code with the planner path on purpose.
# ---------------------------------------------------------------------------


def reference_evaluate(query: ConjunctiveQuery, database) -> frozenset:
    """All head tuples, by enumerating atom rows and unifying bindings."""
    atoms = list(query.atoms)
    answers = set()

    def extend(i: int, binding: dict) -> None:
        if i == len(atoms):
            answers.add(tuple(binding[v] for v in query.head))
            return
        atom = atoms[i]
        relation = database[atom.relation]
        if len(atom.variables) != len(relation.attributes):
            raise ValueError("arity mismatch")
        for row in relation.tuples:
            extended = dict(binding)
            consistent = True
            for term, value in zip(atom.variables, row):
                if isinstance(term, Const):
                    if term.value != value:
                        consistent = False
                        break
                elif term in extended:
                    if extended[term] != value:
                        consistent = False
                        break
                else:
                    extended[term] = value
            if consistent:
                extend(i + 1, extended)

    extend(0, {})
    return frozenset(answers)


def planner_answers(query, database, **options) -> frozenset:
    result = answer_query(query, database, **options)
    assert result.answers.attributes == tuple(query.head)
    return result.answers.tuples


def assert_differential(query, database, **options) -> None:
    assert planner_answers(query, database, **options) == reference_evaluate(
        query, database
    )


# ---------------------------------------------------------------------------
# Hypothesis: random schemas, databases and queries
# ---------------------------------------------------------------------------

_VALUES = st.integers(min_value=0, max_value=2)
_VARIABLES = ("x", "y", "z", "u")


@st.composite
def random_instance(draw):
    """A random (query, database) pair over a small random schema."""
    schema = draw(
        st.dictionaries(
            st.sampled_from(["r", "s", "t"]),
            st.integers(min_value=1, max_value=3),
            min_size=1,
            max_size=3,
        )
    )
    names = sorted(schema)
    database = {}
    for name in names:
        rows = draw(
            st.lists(
                st.tuples(*[_VALUES] * schema[name]),
                max_size=6,
                unique=True,
            )
        )
        database[name] = Relation.from_rows(
            name,
            tuple(f"c{j}" for j in range(schema[name])),
            rows,
        )
    n_atoms = draw(st.integers(min_value=1, max_value=3))
    atoms = []
    for _ in range(n_atoms):
        name = draw(st.sampled_from(names))
        arity = schema[name]
        # At least one variable per position-set (Atom requires it);
        # remaining positions are variables or constants.
        terms = [draw(st.sampled_from(_VARIABLES))]
        for _ in range(arity - 1):
            if draw(st.booleans()) and draw(st.booleans()):
                terms.append(Const(draw(_VALUES)))
            else:
                terms.append(draw(st.sampled_from(_VARIABLES)))
        draw(st.randoms(use_true_random=False)).shuffle(terms)
        if not any(isinstance(t, str) for t in terms):
            terms[0] = draw(st.sampled_from(_VARIABLES))
        atoms.append(Atom(name, tuple(terms)))
    scope = sorted(
        {t for atom in atoms for t in atom.variables if isinstance(t, str)}
    )
    head = tuple(draw(st.permutations(scope))[: draw(st.integers(0, len(scope)))])
    return ConjunctiveQuery(head, tuple(atoms)), database


class TestRandomQueries:
    @settings(max_examples=40, deadline=None)
    @given(instance=random_instance())
    def test_planner_matches_reference(self, instance):
        query, database = instance
        assert_differential(query, database)

    @settings(max_examples=15, deadline=None)
    @given(instance=random_instance())
    def test_planner_matches_naive_evaluator(self, instance):
        query, database = instance
        result = evaluate_naive(query, database)
        assert result.answers.tuples == reference_evaluate(query, database)


class TestBackends:
    """The harness holds on every available LP backend (no-scipy too)."""

    @pytest.mark.parametrize("backend", engine.available_backends())
    def test_cycle_with_constant_on_backend(self, backend):
        config = engine.engine_config()
        previous = config.backend
        engine.configure(backend=backend)
        try:
            database = {"r": random_graph_relation(8, 0.35, seed=5)}
            query = parse_cq("q(x, z) :- r(x, y), r(y, z), r(z, x), r(x, 1).")
            assert_differential(query, database)
        finally:
            config.backend = previous


# ---------------------------------------------------------------------------
# Canonical shapes over the workload generators
# ---------------------------------------------------------------------------


class TestShapes:
    @pytest.mark.parametrize(
        "query",
        [
            star_query(3),
            chain_query(4),
            chain_query(3, boolean=True),
            cycle_query(4),
            snowflake_query(2, 2),
        ],
        ids=lambda q: q.name,
    )
    def test_shape_matches_reference(self, query):
        database = {"r": random_graph_relation(9, 0.3, seed=11)}
        assert_differential(query, database)

    def test_chain_on_hub_relation(self):
        database = {"r": hub_relation(3, 4, seed=2)}
        query = chain_query(3)
        assert_differential(query, database)

    def test_shapes_match_naive(self):
        database = {"r": random_graph_relation(8, 0.3, seed=7)}
        for query in (star_query(2), cycle_query(3), chain_query(5)):
            naive = evaluate_naive(query, database)
            assert planner_answers(query, database) == naive.answers.tuples


# ---------------------------------------------------------------------------
# Pinned edge cases
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def test_empty_relation(self):
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 2)]),
            "s": Relation.from_rows("s", ("a",), []),
        }
        query = parse_cq("q(x) :- r(x, y), s(y).")
        assert planner_answers(query, database) == frozenset()
        assert reference_evaluate(query, database) == frozenset()

    def test_repeated_variable_in_atom(self):
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 1), (1, 2), (3, 3)])
        }
        query = parse_cq("q(x) :- r(x, x).")
        assert_differential(query, database)
        assert planner_answers(query, database) == frozenset({(1,), (3,)})

    def test_constants_select(self):
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 2), (2, 3), (1, 3)])
        }
        query = parse_cq("q(y) :- r(1, y).")
        assert_differential(query, database)
        assert planner_answers(query, database) == frozenset({(2,), (3,)})

    def test_string_constant(self):
        database = {
            "r": Relation.from_rows(
                "r", ("a", "b"), [("ann", 1), ("bob", 2), ("ann", 3)]
            )
        }
        query = parse_cq("q(y) :- r('ann', y).")
        assert_differential(query, database)
        assert planner_answers(query, database) == frozenset({(1,), (3,)})

    def test_boolean_satisfied_and_not(self):
        database = {"r": Relation.from_rows("r", ("a", "b"), [(1, 2)])}
        sat = parse_cq(":- r(x, y).")
        unsat = parse_cq(":- r(x, x).")
        assert reference_evaluate(sat, database) == frozenset({()})
        assert answer_query(sat, database).satisfied
        assert reference_evaluate(unsat, database) == frozenset()
        assert not answer_query(unsat, database).satisfied

    def test_duplicated_atom_self_join(self):
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 2), (2, 1), (2, 3)])
        }
        query = parse_cq("q(x, y) :- r(x, y), r(y, x), r(x, y).")
        assert_differential(query, database)
        assert planner_answers(query, database) == frozenset(
            {(1, 2), (2, 1)}
        )

    def test_subsumed_atom_still_enforced(self):
        # The unary atom's scope sits inside the binary atom's bag, so
        # it lands in no λ of its own — the semijoin enforcement path.
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 2), (3, 4)]),
            "s": Relation.from_rows("s", ("a",), [(1,)]),
        }
        query = parse_cq("q(x, y) :- r(x, y), s(x).")
        assert_differential(query, database)
        assert planner_answers(query, database) == frozenset({(1, 2)})

    def test_unknown_relation_raises(self):
        database = {"r": Relation.from_rows("r", ("a",), [(1,)])}
        query = parse_cq("q(x) :- missing(x).")
        with pytest.raises(ValueError, match="unknown relation"):
            answer_query(query, database)


# ---------------------------------------------------------------------------
# Plan-cache rebinding: one hypergraph shape, many distinct queries
# ---------------------------------------------------------------------------


class TestPlanCacheRebinding:
    """Distinct queries that share a hypergraph must not share answers.

    The plan cache keys on the canonical query hypergraph, which does
    not see the head, constants, atom argument order or repeated-
    variable patterns.  Such queries used to collide in the in-memory
    LRU: the second one silently received the first one's answers.
    Now the decomposition is shared (that is the point of the cache)
    and the plan is rebound to each asking query before execution.
    """

    def test_different_constants_same_shape(self):
        database = {
            "r": Relation.from_rows("r", ("a", "b"), [(1, 3), (2, 5)])
        }
        planner = QueryPlanner()
        three = planner.answer(parse_cq("q(x) :- r(x, 3)."), database)
        five = planner.answer(parse_cq("q(x) :- r(x, 5)."), database)
        assert three.answers.tuples == frozenset({(1,)})
        assert five.answers.tuples == frozenset({(2,)})
        # ... while the shared shape still paid for one plan solve.
        assert planner.stats.plans == 1
        assert planner.stats.plan_cache_hits == 1

    def test_different_heads_same_shape(self):
        database = {"r": Relation.from_rows("r", ("a", "b"), [(1, 2)])}
        planner = QueryPlanner()
        first = planner.answer(parse_cq("q(x) :- r(x, y)."), database)
        second = planner.answer(parse_cq("q(y) :- r(x, y)."), database)
        assert first.answers.attributes == ("x",)
        assert second.answers.attributes == ("y",)
        assert first.answers.tuples == frozenset({(1,)})
        assert second.answers.tuples == frozenset({(2,)})
        assert planner.stats.plans == 1

    def test_different_argument_order_same_shape(self):
        database = {"r": Relation.from_rows("r", ("a", "b"), [(1, 2)])}
        planner = QueryPlanner()
        forward = planner.answer(parse_cq("q(x, y) :- r(x, y)."), database)
        backward = planner.answer(parse_cq("q(x, y) :- r(y, x)."), database)
        assert forward.answers.tuples == frozenset({(1, 2)})
        assert backward.answers.tuples == frozenset({(2, 1)})
        assert planner.stats.plans == 1

    def test_different_repeated_variable_patterns(self):
        database = {
            "r": Relation.from_rows(
                "r", ("a", "b", "c"), [(1, 1, 2), (3, 4, 4), (5, 6, 7)]
            )
        }
        planner = QueryPlanner()
        left = planner.answer(parse_cq("q(x, y) :- r(x, x, y)."), database)
        right = planner.answer(parse_cq("q(x, y) :- r(x, y, y)."), database)
        assert left.answers.tuples == frozenset({(1, 2)})
        assert right.answers.tuples == frozenset({(3, 4)})
        assert planner.stats.plans == 1

    def test_rebound_rejects_other_shapes(self):
        planner = QueryPlanner()
        plan = planner.plan(parse_cq("q(x) :- r(x, y)."))
        with pytest.raises(ValueError, match="hypergraph shape"):
            plan.rebound(parse_cq("q(x) :- s(x, y)."))

    def test_plan_is_bound_to_the_asking_query(self):
        planner = QueryPlanner()
        first = parse_cq("q(x) :- r(x, 3).")
        second = parse_cq("q(x) :- r(x, 5).")
        assert planner.plan(first).query == first
        assert planner.plan(second).query == second  # a rebound cache hit
        assert planner.plan(first).key == planner.plan(second).key

    @settings(max_examples=25, deadline=None)
    @given(instances=st.lists(random_instance(), min_size=2, max_size=4))
    def test_shared_planner_matches_reference(self, instances):
        # The rest of this harness answers each query with a throwaway
        # planner, so cross-query cache collisions were invisible to
        # it.  One planner answering a whole workload closes that
        # blind spot.
        planner = QueryPlanner()
        for query, database in instances:
            result = planner.execute(planner.plan(query), database)
            assert result.answers.tuples == reference_evaluate(
                query, database
            )


# ---------------------------------------------------------------------------
# Plan persistence: a store round trip answers identically
# ---------------------------------------------------------------------------


class TestStoreRoundTrip:
    def test_store_warm_plans_answer_identically(self, tmp_path):
        database = {"r": random_graph_relation(10, 0.3, seed=3)}
        queries = [chain_query(4), cycle_query(4), star_query(3)]

        cold = QueryPlanner(str(tmp_path / "cache"))
        try:
            cold_answers = [cold.answer(q, database).answers for q in queries]
            assert cold.stats.plan_store_hits == 0
        finally:
            cold.close()

        warm = QueryPlanner(str(tmp_path / "cache"))
        try:
            for query, expected in zip(queries, cold_answers):
                plan, info = warm.plan_detailed(query)
                assert info.from_store and not info.cache_hit
                assert info.tasks_run == 0 and info.lp_solves == 0
                result = warm.execute(plan, database)
                assert result.answers == expected
                assert result.answers.tuples == reference_evaluate(
                    query, database
                )
            assert warm.stats.plan_store_hits == len(queries)
            assert warm.stats.tasks_run == 0 and warm.stats.lp_solves == 0
        finally:
            warm.close()

    def test_same_plan_different_databases(self, tmp_path):
        planner = QueryPlanner(str(tmp_path / "cache"))
        try:
            query = chain_query(3)
            db1 = {"r": random_graph_relation(8, 0.3, seed=1)}
            db2 = {"r": random_graph_relation(8, 0.3, seed=2)}
            assert planner.answer(query, db1).answers.tuples == (
                reference_evaluate(query, db1)
            )
            assert planner.answer(query, db2).answers.tuples == (
                reference_evaluate(query, db2)
            )
            # One plan solve, two executions.
            assert planner.stats.plans == 1
            assert planner.stats.plan_cache_hits == 1
            assert planner.stats.executions == 2
        finally:
            planner.close()
