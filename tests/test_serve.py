"""Concurrency harness for the ``repro serve`` daemon.

The daemon's three serving policies, proven under real concurrency
(a live asyncio server in a background thread, hammered by client
threads over actual sockets):

* **coalescing** — K concurrent identical requests share exactly one
  scheduler run (``solves`` increments once, ``coalesced`` K-1 times)
  while distinct requests each get their own;
* **admission control** — beyond ``max_in_flight + max_queue`` distinct
  computations, new work is refused with 429 (coalesced joins are
  never refused), and a draining server refuses new work with 503
  while finishing admitted solves;
* **failure isolation** — a request whose computation raises maps to
  422 for its callers and disturbs no sibling request.

The same three policies govern ``POST /query`` — there the coalesced
computation is the query's *plan* (the decomposition of its
hypergraph) while Yannakakis execution runs per request — proven by
gating :meth:`DecompositionServer._run_plan` instead.

Determinism comes from gating :meth:`DecompositionServer._run_batch`
(or ``_run_plan``) on a :class:`threading.Event` — solves block
*inside* the worker pool until the test has observed the in-flight
state it wants to assert.
"""

import asyncio
import threading
import time

import pytest

from repro.cqcsp import Relation
from repro.hypergraph import Hypergraph
from repro.serve import DecompositionServer, ServeClient, ServeError
from repro.store import checked_witness

_EPS = 1e-9


def triangle(name=None):
    return Hypergraph(
        {"r": ["x", "y"], "s": ["y", "z"], "t": ["z", "x"]}, name=name
    )


def cycle(n):
    return Hypergraph(
        {f"e{i}": [f"v{i}", f"v{(i + 1) % n}"] for i in range(n)}
    )


def wait_until(predicate, timeout=20.0):
    """Poll a cross-thread predicate until true (or fail the test)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail("condition not reached within timeout")


class Gate:
    """Blocks a server computation inside the worker pool until released.

    ``attr`` picks what to gate: ``"_run_batch"`` (solve requests, the
    default) or ``"_run_plan"`` (query plan computations).
    """

    def __init__(self, server, attr="_run_batch"):
        self.release = threading.Event()
        self.entered = 0
        self._original = getattr(server, attr)

        def gated(*args):
            self.entered += 1
            if not self.release.wait(timeout=60):
                raise TimeoutError("test gate never released")
            return self._original(*args)

        setattr(server, attr, gated)


class ServerHarness:
    """A live server on its own event loop in a background thread."""

    def __init__(self, **kwargs):
        self.server = DecompositionServer(**kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.gates = []
        self._stopped = False

    def start(self) -> ServeClient:
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=15)
        return ServeClient(
            self.server.host, self.server.port, timeout=120.0
        )

    def gate(self, attr="_run_batch") -> Gate:
        gate = Gate(self.server, attr)
        self.gates.append(gate)
        return gate

    def shutdown(self):
        if self._stopped:
            return
        self._stopped = True
        for gate in self.gates:
            gate.release.set()  # never leave solves stuck in the pool
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=15)
        self.loop.close()


@pytest.fixture
def harness():
    """Factory for live servers; all are drained at teardown."""
    created = []

    def make(**kwargs):
        h = ServerHarness(**kwargs)
        client = h.start()
        created.append(h)
        return h, client

    yield make
    for h in created:
        h.shutdown()


def fire(calls):
    """Run thunks on one thread each; returns results or exceptions."""
    results = [None] * len(calls)

    def runner(i, call):
        try:
            results[i] = call()
        except Exception as exc:  # collected, asserted by the caller
            results[i] = exc

    threads = [
        threading.Thread(target=runner, args=(i, call), daemon=True)
        for i, call in enumerate(calls)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    return results


# ----------------------------------------------------------------------
# Basics over a real socket
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_solve_health_stats(self, harness):
        h, client = harness()
        assert client.health() == {"ok": True, "draining": False}
        response = client.solve(triangle(), "ghw")
        assert response["ok"] and response["kind"] == "ghw"
        assert response["answer"]["width"] == 2
        assert response["coalesced"] is False
        # The wire witness re-validates client-side.
        witness = checked_witness(
            triangle(), response["answer"]["witness"], "ghd", width=2 + _EPS
        )
        assert witness is not None
        stats = client.stats()
        assert stats["server"]["answers"] == 1
        assert stats["server"]["solves"] == 1
        assert stats["pending"] == 0
        assert stats["config"]["solver"] == "bb"

    def test_check_kinds_over_the_wire(self, harness):
        h, client = harness()
        accept = client.solve(triangle(), "check-ghd", {"k": 2})
        reject = client.solve(triangle(), "check-ghd", {"k": 1})
        assert accept["answer"]["accepted"] is True
        assert reject["answer"]["accepted"] is False
        assert reject["answer"]["witness"] is None

    def test_protocol_errors_are_400(self, harness):
        h, client = harness()
        with pytest.raises(ServeError) as excinfo:
            client.solve(triangle(), kind="not-a-kind")
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client._call("POST", "/solve", {"hypergraph": {"edges": {}}})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client._call("POST", "/solve", {"bogus-field": 1})
        assert excinfo.value.status == 400
        # Protocol rejections never reach the solve counters.
        assert h.server.stats.solves == 0

    def test_unknown_path_and_method(self, harness):
        h, client = harness()
        with pytest.raises(ServeError) as excinfo:
            client._call("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._call("POST", "/healthz", {})
        assert excinfo.value.status == 405


# ----------------------------------------------------------------------
# Read limits: body cap and slow-client timeout
# ----------------------------------------------------------------------
class TestReadLimits:
    """The reader refuses abuse before it can cost memory or sockets."""

    def _raw(self, server, payload: bytes, timeout=15.0) -> bytes:
        import socket

        with socket.create_connection(
            (server.host, server.port), timeout=timeout
        ) as sock:
            sock.sendall(payload)
            sock.settimeout(timeout)
            chunks = []
            while True:
                try:
                    chunk = sock.recv(65536)
                except TimeoutError:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_oversized_body_refused_before_buffering(self, harness):
        h, client = harness(max_body=1024)
        # Declare a gigabyte; send none of it.  The 413 arrives from
        # the headers alone — readexactly never runs.
        response = self._raw(
            h.server,
            b"POST /solve HTTP/1.1\r\n"
            b"Content-Length: 1073741824\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413")
        # The server survives and still answers well-formed requests.
        assert client.solve(triangle(), "ghw")["ok"]

    def test_negative_content_length_is_400(self, harness):
        h, _ = harness()
        response = self._raw(
            h.server,
            b"POST /solve HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400")

    def test_slow_client_gets_408(self, harness):
        h, client = harness(read_timeout=0.3)
        # A request that never finishes its headers is cut off with
        # 408 instead of pinning a connection forever.
        response = self._raw(h.server, b"POST /solve HTTP/1.1\r\n")
        assert response.startswith(b"HTTP/1.1 408")
        # Prompt clients are unaffected by the short read window.
        assert client.solve(triangle(), "ghw")["ok"]


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_identical_requests_share_one_solve(self, harness):
        h, client = harness()
        gate = h.gate()
        K = 6
        results = None

        def workload():
            nonlocal results
            results = fire(
                [lambda: client.solve(triangle(), "ghw")] * K
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        # All K must be in flight — on ONE pending computation — before
        # the solve is allowed to finish.
        wait_until(
            lambda: h.server.stats.coalesced == K - 1
            and len(h.server._pending) == 1
        )
        assert gate.entered == 1
        gate.release.set()
        worker.join(timeout=120)

        assert all(r["ok"] for r in results)
        widths = {r["answer"]["width"] for r in results}
        assert widths == {2}
        flags = sorted(r["coalesced"] for r in results)
        assert flags == [False] + [True] * (K - 1)
        assert h.server.stats.solves == 1
        assert h.server.stats.coalesced == K - 1
        assert h.server.stats.answers == K

    def test_distinct_requests_solve_independently(self, harness):
        h, client = harness(max_in_flight=4)
        gate = h.gate()
        instances = [triangle(), cycle(4), cycle(5)]
        copies = 3
        calls = [
            (lambda inst=inst: client.solve(inst, "ghw"))
            for inst in instances
            for _ in range(copies)
        ]
        results = None

        def workload():
            nonlocal results
            results = fire(calls)

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(
            lambda: len(h.server._pending) == len(instances)
            and h.server.stats.coalesced
            == len(instances) * (copies - 1)
        )
        gate.release.set()
        worker.join(timeout=120)

        assert all(r["ok"] for r in results)
        # One solve per distinct computation, not per request.
        assert h.server.stats.solves == len(instances)
        assert h.server.stats.answers == len(instances) * copies
        for i, inst in enumerate(instances):
            group = results[i * copies : (i + 1) * copies]
            assert len({r["answer"]["width"] for r in group}) == 1

    def test_label_does_not_split_coalescing(self, harness):
        """Coalescing keys on the computation, not display names."""
        h, client = harness()
        gate = h.gate()
        results = None

        def workload():
            nonlocal results
            results = fire(
                [
                    lambda: client.solve(triangle(), "ghw", label="a"),
                    lambda: client.solve(triangle(), "ghw", label="b"),
                ]
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(lambda: h.server.stats.coalesced == 1)
        gate.release.set()
        worker.join(timeout=120)
        assert h.server.stats.solves == 1
        assert {r["label"] for r in results} == {"a", "b"}

    def test_solver_and_params_do_split_coalescing(self, harness):
        h, client = harness()
        gate = h.gate()
        results = None

        def workload():
            nonlocal results
            results = fire(
                [
                    lambda: client.solve(triangle(), "check-ghd", {"k": 1}),
                    lambda: client.solve(triangle(), "check-ghd", {"k": 2}),
                ]
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(lambda: len(h.server._pending) == 2)
        assert h.server.stats.coalesced == 0
        gate.release.set()
        worker.join(timeout=120)
        assert h.server.stats.solves == 2


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_busy_server_rejects_with_429(self, harness):
        h, client = harness(max_in_flight=1, max_queue=0)
        gate = h.gate()
        first = None

        def occupy():
            nonlocal first
            first = client.solve(triangle(), "ghw")

        occupier = threading.Thread(target=occupy, daemon=True)
        occupier.start()
        wait_until(lambda: len(h.server._pending) == 1)

        # A distinct computation is refused immediately...
        with pytest.raises(ServeError) as excinfo:
            client.solve(cycle(4), "ghw")
        assert excinfo.value.status == 429
        assert h.server.stats.rejected_busy == 1

        # ... but an identical one coalesces — joins are always free.
        results = None

        def join_workload():
            nonlocal results
            results = fire([lambda: client.solve(triangle(), "ghw")])

        joiner = threading.Thread(target=join_workload, daemon=True)
        joiner.start()
        wait_until(lambda: h.server.stats.coalesced == 1)
        gate.release.set()
        occupier.join(timeout=120)
        joiner.join(timeout=120)
        assert first["ok"]
        assert results[0]["ok"] and results[0]["coalesced"]
        assert h.server.stats.solves == 1

    def test_draining_rejects_with_503(self, harness):
        h, client = harness()
        gate = h.gate()
        results = None

        def workload():
            nonlocal results
            results = fire([lambda: client.solve(triangle(), "ghw")])

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(lambda: len(h.server._pending) == 1)

        h.server._draining = True
        try:
            # New computations are refused while draining...
            with pytest.raises(ServeError) as excinfo:
                client.solve(cycle(4), "ghw")
            assert excinfo.value.status == 503
            assert h.server.stats.rejected_draining == 1
            assert client.health()["draining"] is True
        finally:
            gate.release.set()
        # ... but the admitted solve still completes.
        worker.join(timeout=120)
        assert results[0]["ok"]
        h.server._draining = False


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
class TestFailureIsolation:
    def test_failed_computation_is_422_and_local(self, harness):
        h, client = harness()
        # check-ghd without k fails inside the scheduler.
        with pytest.raises(ServeError) as excinfo:
            client.solve(triangle(), "check-ghd")
        assert excinfo.value.status == 422
        assert h.server.stats.errors == 1
        # The server is fine; siblings are untouched.
        good = client.solve(triangle(), "ghw")
        assert good["ok"] and good["answer"]["width"] == 2
        assert len(h.server._pending) == 0

    def test_mixed_good_and_bad_under_concurrency(self, harness):
        h, client = harness()
        calls = [
            lambda: client.solve(triangle(), "ghw"),
            lambda: client.solve(triangle(), "check-ghd"),  # fails
            lambda: client.solve(cycle(4), "hw"),
            lambda: client.solve(cycle(5), "check-ghd"),  # fails
            lambda: client.solve(cycle(4), "hw"),
        ]
        results = fire(calls)
        assert results[0]["answer"]["width"] == 2
        assert isinstance(results[1], ServeError)
        assert results[1].status == 422
        assert results[2]["answer"]["width"] == 2
        assert isinstance(results[3], ServeError)
        assert results[3].status == 422
        assert results[4]["answer"]["width"] == 2
        assert h.server.stats.errors == 2
        assert len(h.server._pending) == 0

    def test_coalesced_callers_share_the_failure(self, harness):
        h, client = harness()
        gate = h.gate()
        results = None

        def workload():
            nonlocal results
            results = fire(
                [lambda: client.solve(triangle(), "check-ghd")] * 3
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(lambda: h.server.stats.coalesced == 2)
        gate.release.set()
        worker.join(timeout=120)
        assert all(
            isinstance(r, ServeError) and r.status == 422 for r in results
        )
        assert h.server.stats.errors == 3
        assert h.server.stats.solves == 0  # the run never succeeded


# ----------------------------------------------------------------------
# The store behind the daemon
# ----------------------------------------------------------------------
class TestServeWithStore:
    def test_repeat_requests_come_from_store(self, harness, tmp_path):
        h, client = harness(store=tmp_path / "store")
        cold = client.solve(triangle(), "ghw")
        assert cold["from_store"] is False
        tasks_after_cold = h.server.stats.tasks_run
        warm = client.solve(triangle(), "ghw")
        assert warm["from_store"] is True
        assert warm["answer"] == cold["answer"]
        assert h.server.stats.tasks_run == tasks_after_cold

    def test_restarted_server_answers_without_solving(self, harness, tmp_path):
        """E23 in miniature: a restart keeps the verdicts."""
        h1, client1 = harness(store=tmp_path / "store")
        instances = [triangle(), cycle(4)]
        cold = [client1.solve(inst, "ghw") for inst in instances]
        h1.shutdown()

        h2, client2 = harness(store=tmp_path / "store")
        warm = [client2.solve(inst, "ghw") for inst in instances]
        assert all(r["from_store"] for r in warm)
        assert [r["answer"] for r in warm] == [r["answer"] for r in cold]
        assert h2.server.stats.lp_solves == 0
        assert h2.server.stats.tasks_run == 0
        stats = client2.stats()
        assert stats["server"]["store_instance_hits"] == len(instances)


# ----------------------------------------------------------------------
# Query serving: decompositions as cached plans over the wire
# ----------------------------------------------------------------------
def graph_relation(rows):
    return Relation.from_rows("r", ("src", "dst"), rows)


_CHAIN = "q(x0, x2) :- r(x0, x1), r(x1, x2)."
_CYCLE = "q(x1) :- r(x1, x2), r(x2, x3), r(x3, x1)."
_DB = {"r": graph_relation([(1, 2), (2, 3), (3, 1), (3, 4)])}


class TestQueryServing:
    def test_query_answers_over_the_wire(self, harness):
        h, client = harness()
        response = client.query(_CHAIN, _DB, label="hop2")
        assert response["ok"] and response["label"] == "hop2"
        assert response["width"] == 1 and response["satisfied"]
        assert sorted(map(tuple, response["answers"]["rows"])) == [
            (1, 3), (2, 1), (2, 4), (3, 2),
        ]
        assert response["coalesced"] is False
        assert response["plan_cached"] is False
        stats = client.stats()["server"]
        assert stats["queries"] == 1 and stats["query_answers"] == 1
        assert stats["plans_computed"] == 1

    def test_query_protocol_errors_are_400(self, harness):
        h, client = harness()
        with pytest.raises(ServeError) as excinfo:
            client.query("q(x) :- r(x", _DB)
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client._call("POST", "/query", {"query": _CHAIN, "oops": 1})
        assert excinfo.value.status == 400
        assert h.server.stats.plans_computed == 0

    def test_identical_queries_share_one_plan(self, harness):
        h, client = harness()
        gate = h.gate("_run_plan")
        K = 5
        results = None

        def workload():
            nonlocal results
            results = fire([lambda: client.query(_CHAIN, _DB)] * K)

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        # All K in flight on ONE pending plan before it may resolve.
        wait_until(
            lambda: h.server.stats.coalesced == K - 1
            and len(h.server._pending) == 1
            and gate.entered == 1
        )
        gate.release.set()
        worker.join(timeout=120)

        assert all(r["ok"] for r in results)
        answers = {tuple(map(tuple, r["answers"]["rows"])) for r in results}
        assert len(answers) == 1  # identical answers for identical queries
        flags = sorted(r["coalesced"] for r in results)
        assert flags == [False] + [True] * (K - 1)
        assert h.server.stats.plans_computed == 1
        assert h.server.stats.query_answers == K

    def test_same_shape_different_data_share_plan_not_answers(self, harness):
        h, client = harness()
        gate = h.gate("_run_plan")
        other_db = {"r": graph_relation([(7, 8), (8, 9)])}
        results = None

        def workload():
            nonlocal results
            results = fire(
                [
                    lambda: client.query(_CHAIN, _DB),
                    lambda: client.query(_CHAIN, other_db),
                ]
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(
            lambda: h.server.stats.coalesced == 1 and gate.entered == 1
        )
        gate.release.set()
        worker.join(timeout=120)

        assert all(r["ok"] for r in results)
        assert h.server.stats.plans_computed == 1
        rows = {tuple(map(tuple, r["answers"]["rows"])) for r in results}
        assert len(rows) == 2  # one plan, two different answer sets

    def test_coalesced_distinct_queries_get_their_own_answers(self, harness):
        # Regression: the coalescing key identifies the *plan* (the
        # query hypergraph), which does not see the head — so the
        # forward chain and its swapped-head sibling coalesce onto one
        # plan future.  Each caller must still receive answers to ITS
        # query; the shared plan used to execute the first requester's
        # query for both, returning the sibling's answers with 200.
        h, client = harness()
        gate = h.gate("_run_plan")
        swapped = "q(x2, x0) :- r(x0, x1), r(x1, x2)."
        results = None

        def workload():
            nonlocal results
            results = fire(
                [
                    lambda: client.query(_CHAIN, _DB),
                    lambda: client.query(swapped, _DB),
                ]
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        # Both requests in flight on ONE pending plan before it resolves.
        wait_until(
            lambda: h.server.stats.coalesced == 1 and gate.entered == 1
        )
        gate.release.set()
        worker.join(timeout=120)

        forward, backward = results
        assert forward["ok"] and backward["ok"]
        assert h.server.stats.plans_computed == 1
        assert forward["answers"]["attributes"] == ["x0", "x2"]
        assert backward["answers"]["attributes"] == ["x2", "x0"]
        assert sorted(map(tuple, forward["answers"]["rows"])) == [
            (1, 3), (2, 1), (2, 4), (3, 2),
        ]
        assert sorted(map(tuple, backward["answers"]["rows"])) == [
            (1, 2), (2, 3), (3, 1), (4, 2),
        ]

    def test_query_admission_control(self, harness):
        h, client = harness(max_in_flight=1, max_queue=0)
        gate = h.gate("_run_plan")
        first = None

        def occupy():
            nonlocal first
            first = client.query(_CHAIN, _DB)

        occupier = threading.Thread(target=occupy, daemon=True)
        occupier.start()
        wait_until(lambda: len(h.server._pending) == 1)

        # A distinct query shape is refused with 429...
        with pytest.raises(ServeError) as excinfo:
            client.query(_CYCLE, _DB)
        assert excinfo.value.status == 429
        assert h.server.stats.rejected_busy == 1
        # ... and /solve admission shares the same pool.
        with pytest.raises(ServeError) as excinfo:
            client.solve(cycle(4), "ghw")
        assert excinfo.value.status == 429

        h.server._draining = True
        try:
            with pytest.raises(ServeError) as excinfo:
                client.query(_CYCLE, _DB)
            assert excinfo.value.status == 503
        finally:
            h.server._draining = False
            gate.release.set()
        occupier.join(timeout=120)
        assert first["ok"]

    def test_failing_query_is_422_and_does_not_poison_siblings(self, harness):
        h, client = harness()
        gate = h.gate("_run_plan")
        # The bad query's relations lack a name its atoms need, so its
        # execution fails after the (shared-machinery) plan resolves.
        bad_db = {"s": Relation.from_rows("s", ("a",), [(1,)])}
        results = None

        def workload():
            nonlocal results
            results = fire(
                [
                    lambda: client.query(_CHAIN, bad_db),
                    lambda: client.query(_CYCLE, _DB),
                ]
            )

        worker = threading.Thread(target=workload, daemon=True)
        worker.start()
        wait_until(lambda: gate.entered == 2)
        gate.release.set()
        worker.join(timeout=120)

        bad, good = results
        assert isinstance(bad, ServeError) and bad.status == 422
        assert bad.payload["stage"] == "execute"
        assert "unknown relation" in bad.payload["error"]
        assert good["ok"] and good["satisfied"]
        assert h.server.stats.errors == 1
        assert len(h.server._pending) == 0
        # The server still answers new queries afterwards.
        assert client.query(_CHAIN, _DB)["ok"]

    def test_restarted_daemon_answers_plan_warm(self, harness, tmp_path):
        """E24 in miniature: plans persist, answers stay identical."""
        h1, client1 = harness(store=tmp_path / "store")
        shapes = [_CHAIN, _CYCLE]
        cold = [client1.query(q, _DB) for q in shapes]
        assert all(not r["plan_from_store"] for r in cold)
        h1.shutdown()

        h2, client2 = harness(store=tmp_path / "store")
        warm = [client2.query(q, _DB) for q in shapes]
        assert all(r["plan_from_store"] for r in warm)
        assert [r["answers"] for r in warm] == [r["answers"] for r in cold]
        assert h2.server.stats.tasks_run == 0
        assert h2.server.stats.lp_solves == 0
        assert h2.server.stats.plan_store_hits == len(shapes)


# ----------------------------------------------------------------------
# The daemon on a remote worker fleet
# ----------------------------------------------------------------------
class TestServeWithRemoteExecutor:
    def test_solves_through_a_worker_and_reports_fleet(self, harness):
        from repro.dist import (
            WorkerClient,
            WorkerRegistry,
            close_registry,
            set_registry,
        )

        registry = WorkerRegistry(ping_interval=0.5)
        previous = set_registry(registry)
        client_worker = WorkerClient(
            registry.host, registry.port, jobs=2, idle_timeout=None,
            heartbeat_interval=0.3,
        )
        worker_thread = threading.Thread(
            target=client_worker.run, daemon=True
        )
        worker_thread.start()
        try:
            assert registry.wait_for_workers(1, timeout=10.0)
            h, client = harness(executor="remote")
            # cycle(6) survives the bounds pre-pass (a triangle would
            # collapse to zero block tasks and never touch the fleet).
            response = client.solve(cycle(6), "hw")
            assert response["ok"] and response["answer"]["width"] == 2
            stats = client.stats()
            assert stats["config"]["executor"] == "remote"
            workers = stats["workers"]
            assert workers is not None and workers["count"] == 1
            assert workers["capacity"] == 2
            # The executed counter travels on heartbeats; give one a
            # moment to arrive before asserting the task ran remotely.
            wait_until(
                lambda: client.stats()["workers"]["workers"][0]["executed"]
                >= 1
            )
        finally:
            close_registry()
            set_registry(previous)
            worker_thread.join(timeout=5.0)
