"""Tests for CSP solving via decompositions."""

import pytest

from repro.cqcsp import CSP, Constraint, backtracking_solve


def coloring_csp(n: int, colors: int) -> CSP:
    """n-cycle graph coloring."""
    domains = {f"v{i}": tuple(range(colors)) for i in range(n)}
    allowed = frozenset(
        (a, b) for a in range(colors) for b in range(colors) if a != b
    )
    constraints = [
        Constraint(f"ne{i}", (f"v{i}", f"v{(i + 1) % n}"), allowed)
        for i in range(n)
    ]
    return CSP(domains, constraints)


class TestConstraint:
    def test_scope_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Constraint("c", ("x",), frozenset({(1, 2)}))

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            CSP({"x": (1,)}, [Constraint("c", ("y",), frozenset({(1,)}))])

    def test_permits(self):
        c = Constraint("c", ("x", "y"), frozenset({(1, 2)}))
        assert c.permits({"x": 1, "y": 2})
        assert not c.permits({"x": 2, "y": 1})


class TestSolving:
    def test_odd_cycle_2_coloring_unsat(self):
        assert not coloring_csp(5, 2).is_satisfiable()
        assert coloring_csp(5, 2).solve() is None

    def test_even_cycle_2_coloring_sat(self):
        csp = coloring_csp(6, 2)
        solution = csp.solve()
        assert solution is not None
        assert all(c.permits(solution) for c in csp.constraints)

    def test_odd_cycle_3_coloring_sat(self):
        csp = coloring_csp(5, 3)
        solution = csp.solve()
        assert solution is not None
        assert all(c.permits(solution) for c in csp.constraints)

    def test_agrees_with_backtracking(self):
        for n, colors in ((4, 2), (5, 2), (6, 2), (5, 3)):
            csp = coloring_csp(n, colors)
            assert (backtracking_solve(csp) is not None) == csp.is_satisfiable()

    def test_unconstrained_variable(self):
        csp = CSP({"x": (1, 2), "free": (7,)}, [
            Constraint("c", ("x",), frozenset({(2,)}))
        ])
        solution = csp.solve()
        assert solution == {"x": 2, "free": 7}

    def test_empty_constraint_relation_unsat(self):
        csp = CSP({"x": (1,)}, [Constraint("c", ("x",), frozenset())])
        assert not csp.is_satisfiable()

    def test_hypergraph_shape(self):
        csp = coloring_csp(4, 2)
        h = csp.hypergraph()
        assert h.num_edges == 4
        assert h.num_vertices == 4


class TestHigherArity:
    def test_ternary_parity_constraints(self):
        """x+y+z even, chained; satisfiable with all zeros."""
        even = frozenset(
            (a, b, c)
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
            if (a + b + c) % 2 == 0
        )
        domains = {f"x{i}": (0, 1) for i in range(5)}
        constraints = [
            Constraint(f"p{i}", (f"x{i}", f"x{i+1}", f"x{i+2}"), even)
            for i in range(3)
        ]
        csp = CSP(domains, constraints)
        solution = csp.solve()
        assert solution is not None
        assert all(c.permits(solution) for c in csp.constraints)

    def test_contradictory_ternary(self):
        domains = {"a": (0,), "b": (0,), "c": (0,)}
        csp = CSP(
            domains,
            [Constraint("never", ("a", "b", "c"), frozenset({(1, 1, 1)}))],
        )
        assert not csp.is_satisfiable()
