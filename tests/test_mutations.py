"""Failure injection: every random corruption of a valid decomposition is
caught by the validators.

This is the safety net behind the library's "searches never self-certify"
rule — if a validator silently accepted a corrupted decomposition, a bug
in any search algorithm could slip through all other tests.
"""

import random

import pytest

from repro.covers import FractionalCover
from repro.decomposition import Decomposition, violations
from repro.hypergraph import Hypergraph
from repro.paper_artifacts import example_4_3_hypergraph, figure_6b_ghd


def _mutants(decomp: Decomposition, rng: random.Random):
    """Yield (description, corrupted decomposition) pairs."""
    node_ids = list(decomp.node_ids)

    # 1. Drop a vertex from a bag that an edge needs (condition 1/2).
    for nid in node_ids:
        bag = sorted(decomp.bag(nid), key=str)
        if len(bag) > 1:
            victim = rng.choice(bag)
            yield (
                f"remove {victim} from bag of {nid}",
                decomp.replace_node(nid, bag=set(bag) - {victim}),
            )

    # 2. Add a foreign vertex occurring elsewhere (condition 2).
    all_vertices = sorted(
        {v for n in node_ids for v in decomp.bag(n)}, key=str
    )
    for nid in node_ids:
        outside = [v for v in all_vertices if v not in decomp.bag(nid)]
        if outside:
            adjacent = set()
            par = decomp.parent(nid)
            if par:
                adjacent |= decomp.bag(par)
            for child in decomp.children(nid):
                adjacent |= decomp.bag(child)
            far = [v for v in outside if v not in adjacent]
            if far:
                yield (
                    f"inject {far[0]} into bag of {nid}",
                    decomp.replace_node(
                        nid, bag=decomp.bag(nid) | {far[0]}
                    ),
                )

    # 3. Zero out a cover (condition 3).
    for nid in node_ids:
        yield (
            f"erase cover of {nid}",
            decomp.replace_node(nid, cover=FractionalCover({})),
        )

    # 4. Halve all weights (condition 3 for non-trivially covered bags).
    for nid in node_ids:
        halved = {
            e: w / 2 for e, w in decomp.cover(nid).weights.items()
        }
        yield (
            f"halve cover of {nid}",
            decomp.replace_node(nid, cover=FractionalCover(halved)),
        )


def test_every_mutation_of_figure_6b_is_caught():
    h0 = example_4_3_hypergraph()
    base = figure_6b_ghd()
    assert violations(h0, base, kind="ghd", width=2) == []
    rng = random.Random(0)
    caught = total = 0
    for description, mutant in _mutants(base, rng):
        total += 1
        problems = violations(h0, mutant, kind="fhd", width=2)
        # 'fhd' is the weakest kind: if even it rejects, all kinds do.
        assert problems, f"validator missed: {description}"
        caught += 1
    assert total >= 12  # the generator really produced mutants


def test_mutated_tree_structure_is_rejected_at_construction():
    base = figure_6b_ghd()
    nodes = [
        (nid, base.bag(nid), base.cover(nid)) for nid in base.node_ids
    ]
    # Reparent u2 under itself: cycle.
    with pytest.raises(ValueError):
        Decomposition(
            nodes,
            parent={"u1": "u0", "u2": "u2", "uprime": "u0"},
        )


def test_width_inflation_is_caught():
    h0 = example_4_3_hypergraph()
    base = figure_6b_ghd()
    heavy = base.replace_node(
        "u0", cover=FractionalCover({"e2": 1.0, "e6": 1.0, "e1": 1.0})
    )
    assert violations(h0, heavy, kind="ghd", width=2)
    assert not violations(h0, heavy, kind="ghd", width=3)


def test_cover_over_wrong_hypergraph_is_caught():
    other = Hypergraph({"zzz": ["v1", "v2"]})
    base = figure_6b_ghd()
    problems = violations(other, base, kind="ghd")
    assert problems  # unknown edges, uncovered bags, missing vertices
