"""Tests for the bounds pre-pass (repro.pipeline.bounds).

The headline invariants (pinned property-based below): the pre-pass
never changes an answer — bounds-on and bounds-off agree on hw / ghw /
fhw and on every check verdict — and decided blocks run **zero** exact
Check(X, k) tasks.
"""

import math

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    fractional_hypertree_width_exact,
    generalized_hypertree_width,
    hypertree_width,
)
from repro.covers import EPS
from repro.decomposition import is_fhd, is_ghd, is_hd
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    clique,
    cycle,
    grid,
    triangle_cascade,
)
from repro.pipeline import (
    BOUNDS_MODES,
    BlockBounds,
    WidthSolver,
    compute_block_bounds,
    seeded_block_state,
    solve_many,
)
from repro.pipeline.batch import last_batch_stats

from .strategies import hypergraphs


class TestBlockBounds:
    def test_lower_k_rounds_up(self):
        b = BlockBounds(kind="fhd", lower=1.5)
        assert b.lower_k == 2
        assert BlockBounds(kind="ghd", lower=3.0).lower_k == 3
        assert BlockBounds(kind="ghd").lower_k == 1

    def test_upper_k_requires_witness(self):
        assert BlockBounds(kind="ghd", upper=2.0).upper_k is None
        b = compute_block_bounds(triangle_cascade(1), "ghd")
        assert b.upper_k == 2

    def test_decided_needs_meeting_bounds_and_witness(self):
        assert not BlockBounds(kind="ghd", lower=2.0, upper=2.0).decided
        b = compute_block_bounds(triangle_cascade(1), "ghd")
        assert b.decided
        assert b.lower == pytest.approx(b.upper)

    def test_mode_none_is_trivial(self):
        b = compute_block_bounds(clique(4), "ghd", mode="none")
        assert (b.lower, b.upper, b.witness) == (1.0, math.inf, None)

    def test_mode_clique_lower_only(self):
        b = compute_block_bounds(clique(4), "ghd", mode="clique")
        assert b.lower >= 2.0
        assert b.witness is None and b.upper == math.inf

    def test_bad_mode_and_kind(self):
        with pytest.raises(ValueError, match="bounds"):
            compute_block_bounds(clique(3), "ghd", mode="zzz")
        with pytest.raises(ValueError, match="kind"):
            compute_block_bounds(clique(3), "zzz")

    def test_hd_candidates_validated_for_special_condition(self):
        # Elimination-ordering witnesses need not satisfy the HD special
        # condition; any surviving witness must re-validate as an hd.
        b = compute_block_bounds(clique(5), "hd")
        assert b.lower >= 2.0
        if b.witness is not None:
            assert is_hd(clique(5), b.witness, width=b.upper)

    def test_fhd_uses_fractional_covers(self):
        b = compute_block_bounds(cycle(4), "fhd")
        assert b.witness is not None
        assert is_fhd(cycle(4), b.witness, width=b.upper + EPS)

    def test_modes_tuple_pinned(self):
        assert BOUNDS_MODES == ("portfolio", "clique", "none")


class TestSeededBlockState:
    def test_none_bounds_gives_fresh_state(self):
        state = seeded_block_state(None, cap=5)
        assert state.next_k == 1 and state.width is None

    def test_lower_bound_seeds_rejections(self):
        b = BlockBounds(kind="ghd", lower=3.0)
        state = seeded_block_state(b, cap=6)
        assert state.next_k == 3
        assert state.results[1] is None and state.results[2] is None
        assert state.width is None

    def test_decided_bounds_settle_instantly(self):
        b = compute_block_bounds(triangle_cascade(1), "ghd")
        assert b.decided
        state = seeded_block_state(b, cap=3)
        assert state.width == 2
        assert state.witness is b.witness

    def test_upper_beyond_cap_not_seeded(self):
        b = compute_block_bounds(triangle_cascade(1), "ghd")
        state = seeded_block_state(b, cap=1)
        # upper_k = 2 exceeds the cap: only the k <= cap part is usable.
        assert state.width is None


class TestNoExactChecksWhenDecided:
    """Regression (the tentpole's point): ``lower == upper`` blocks run
    zero exact Check(X, k) tasks; the heuristic witness is stitched."""

    def test_widthsolver_decided_runs_zero_tasks(self):
        h = triangle_cascade(3)
        solver = WidthSolver(h)
        width, d = solver.generalized_hypertree_width()
        assert width == 2 and is_ghd(h, d, width=2)
        stats = solver.last_stats
        assert stats.tasks_run == 0
        assert stats.bounds_blocks_decided == 3
        assert stats.anytime_width == 2.0

    def test_serial_and_parallel_prune_identically(self):
        # Satellite: the --jobs 1 path honours the same seeding as the
        # parallel path.  C9 has bounds [1, 2], so exactly one exact
        # check (the k = 1 reject) remains in both.
        for jobs in (1, 3):
            solver = WidthSolver(cycle(9), jobs=jobs)
            width, _d = solver.generalized_hypertree_width()
            assert width == 2
            assert solver.last_stats.tasks_run == 1

    def test_exact_oneshot_skips_decided_blocks(self):
        h = triangle_cascade(2)
        solver = WidthSolver(h)
        width, d = solver.generalized_hypertree_width_exact()
        assert width == 2 and is_ghd(h, d, width=2)
        assert solver.last_stats.tasks_run == 0
        assert solver.last_stats.bounds_blocks_decided == 2

    def test_check_prerejects_below_lower_bound(self):
        solver = WidthSolver(clique(5))
        assert solver.generalized_hypertree_decomposition(2) is None
        stats = solver.last_stats
        assert stats.tasks_run == 0
        assert stats.bounds_checks_avoided >= 1

    def test_check_preaccepts_with_witness(self):
        h = triangle_cascade(2)
        solver = WidthSolver(h)
        d = solver.generalized_hypertree_decomposition(2)
        assert is_ghd(h, d, width=2)
        assert solver.last_stats.tasks_run == 0

    def test_capped_checks_never_preaccept(self):
        # Bounded-degree fhd checks may intentionally reject instances a
        # better witness would accept: the pre-pass must not answer them.
        h = cycle(4)
        solver = WidthSolver(h)
        d = solver.fractional_hypertree_decomposition_bounded_degree(2.0)
        off = WidthSolver(h, bounds="none")
        d_off = off.fractional_hypertree_decomposition_bounded_degree(2.0)
        assert (d is None) == (d_off is None)

    def test_batch_decided_instances_and_anytime(self):
        requests = [
            (triangle_cascade(3), "ghw"),
            (clique(4), "ghw"),
            (clique(5), "check-ghd", {"k": 2}),
        ]
        results = solve_many(requests)
        assert [r.ok for r in results] == [True, True, True]
        assert results[0].value[0] == 2
        assert results[1].value[0] == 2
        assert results[2].value is None  # lower bound 3 > 2
        stats = last_batch_stats()
        assert stats.tasks_run == 0
        assert stats.bounds_blocks_decided >= 4
        assert stats.anytime_answers >= 2


class TestBoundsModesAgree:
    def test_clique_mode_agrees(self):
        h = grid(3, 3)
        on = WidthSolver(h, bounds="clique")
        width, d = on.generalized_hypertree_width()
        off = WidthSolver(h, bounds="none")
        width_off, _ = off.generalized_hypertree_width()
        assert width == width_off and is_ghd(h, d, width=width)
        assert on.last_stats.bounds == "clique"

    def test_bad_bounds_mode(self):
        with pytest.raises(ValueError, match="bounds"):
            WidthSolver(cycle(4), bounds="zzz")
        with pytest.raises(ValueError, match="bounds"):
            solve_many([(cycle(4), "ghw")], bounds="zzz")


class TestBoundsOnOffProperty:
    """Bounds-on and bounds-off agree on every width measure, and the
    bounds-on witnesses validate on the original hypergraph."""

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_vertices=7, max_edges=6))
    def test_hw_agrees(self, h):
        w_on, d_on = hypertree_width(h)
        w_off, _ = hypertree_width(h, bounds="none")
        assert w_on == w_off
        assert is_hd(h, d_on, width=w_on)

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_vertices=7, max_edges=6))
    def test_ghw_agrees(self, h):
        w_on, d_on = generalized_hypertree_width(h)
        w_off, _ = generalized_hypertree_width(h, bounds="none")
        assert w_on == w_off
        assert is_ghd(h, d_on, width=w_on)

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_vertices=7, max_edges=6))
    def test_fhw_agrees(self, h):
        w_on, d_on = fractional_hypertree_width_exact(h)
        w_off, _ = fractional_hypertree_width_exact(h, bounds="none")
        assert w_on == pytest.approx(w_off, abs=1e-6)
        assert is_fhd(h, d_on, width=w_on + EPS)

    @settings(max_examples=15, deadline=None)
    @given(hypergraphs(max_vertices=6, max_edges=5))
    def test_batch_agrees_with_bounds_off(self, h):
        (on,) = solve_many([(h, "ghw")])
        (off,) = solve_many([(h, "ghw")], bounds="none")
        assert on.value[0] == off.value[0]
        assert is_ghd(h, on.value[1], width=on.value[0])
