"""Tests for the Decomposition tree structure."""

import pytest

from repro.covers import FractionalCover
from repro.decomposition import Decomposition


def three_node_path() -> Decomposition:
    return Decomposition.path(
        [
            ("a", ["x", "y"], {"e1": 1.0}),
            ("b", ["y", "z"], {"e2": 1.0}),
            ("c", ["z", "w"], {"e3": 0.5, "e4": 0.5}),
        ]
    )


class TestConstruction:
    def test_path_shape(self):
        d = three_node_path()
        assert d.root == "a"
        assert d.parent("b") == "a"
        assert d.children("a") == ("b",)
        assert len(d) == 3

    def test_single_node(self):
        d = Decomposition.single_node(["x"], {"e": 1.0})
        assert d.root == "root"
        assert d.children("root") == ()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Decomposition(
                [("a", ["x"], {}), ("a", ["y"], {})], parent={}, root="a"
            )

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError, match="root|forest"):
            Decomposition(
                [("a", ["x"], {}), ("b", ["y"], {})], parent={}
            )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(
                [("a", ["x"], {}), ("b", ["y"], {})],
                parent={"a": "b", "b": "a"},
            )

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Decomposition([("a", ["x"], {})], parent={"a": "zzz"})

    def test_declared_root_with_parent_rejected(self):
        with pytest.raises(ValueError, match="has a parent"):
            Decomposition(
                [("a", ["x"], {}), ("b", ["y"], {})],
                parent={"b": "a", "a": "b"},
                root="b",
            )

    def test_cover_mapping_coerced(self):
        d = Decomposition.single_node(["x"], {"e": 1.0})
        assert isinstance(d.cover("root"), FractionalCover)


class TestStructure:
    def test_preorder_parents_first(self):
        d = three_node_path()
        order = d.preorder()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_subtree_nodes(self):
        d = three_node_path()
        assert set(d.subtree_nodes("b")) == {"b", "c"}

    def test_subtree_vertices(self):
        d = three_node_path()
        assert d.subtree_vertices("b") == frozenset({"y", "z", "w"})

    def test_nodes_containing(self):
        d = three_node_path()
        assert d.nodes_containing("z") == frozenset({"b", "c"})
        assert d.nodes_containing("nope") == frozenset()

    def test_nodes_intersecting(self):
        d = three_node_path()
        assert d.nodes_intersecting(["x", "w"]) == frozenset({"a", "c"})

    def test_path_between_endpoints(self):
        d = three_node_path()
        assert d.path_between("a", "c") == ["a", "b", "c"]
        assert d.path_between("c", "a") == ["c", "b", "a"]
        assert d.path_between("b", "b") == ["b"]

    def test_path_between_siblings(self):
        d = Decomposition(
            [("r", ["x"], {}), ("l", ["x"], {}), ("m", ["x"], {})],
            parent={"l": "r", "m": "r"},
        )
        assert d.path_between("l", "m") == ["l", "r", "m"]


class TestMeasures:
    def test_width(self):
        d = three_node_path()
        assert d.width() == pytest.approx(1.0)

    def test_is_integral(self):
        d = three_node_path()
        assert not d.is_integral()

    def test_replace_node(self):
        d = three_node_path()
        d2 = d.replace_node("a", bag=["x"])
        assert d2.bag("a") == frozenset({"x"})
        assert d.bag("a") == frozenset({"x", "y"})  # original intact

    def test_as_dict_roundtrippable_fields(self):
        d = three_node_path()
        data = d.as_dict()
        assert data["root"] == "a"
        assert set(data["nodes"]) == {"a", "b", "c"}
        assert data["parent"]["c"] == "b"
