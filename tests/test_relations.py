"""Tests for the relational algebra substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqcsp import Relation, join_all


def rel(name, attrs, rows):
    return Relation.from_rows(name, attrs, rows)


class TestConstruction:
    def test_basic(self):
        r = rel("r", ["a", "b"], [(1, 2), (3, 4)])
        assert len(r) == 2
        assert ("a", "b") == r.attributes

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            rel("r", ["a", "a"], [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rel("r", ["a"], [(1, 2)])


class TestOperators:
    def test_project(self):
        r = rel("r", ["a", "b"], [(1, 2), (1, 3)])
        assert r.project(["a"]).tuples == frozenset({(1,)})

    def test_project_unknown(self):
        with pytest.raises(KeyError):
            rel("r", ["a"], []).project(["z"])

    def test_rename(self):
        r = rel("r", ["a", "b"], [(1, 2)]).rename({"a": "x"})
        assert r.attributes == ("x", "b")

    def test_select_equal(self):
        r = rel("r", ["a", "b"], [(1, 2), (3, 2), (1, 5)])
        assert len(r.select_equal("a", 1)) == 2

    def test_join_shared_attribute(self):
        r = rel("r", ["a", "b"], [(1, 2), (2, 3)])
        s = rel("s", ["b", "c"], [(2, 9), (7, 8)])
        out = r.join(s)
        assert out.tuples == frozenset({(1, 2, 9)})
        assert out.attributes == ("a", "b", "c")

    def test_join_no_shared_is_product(self):
        r = rel("r", ["a"], [(1,), (2,)])
        s = rel("s", ["b"], [(8,), (9,)])
        assert len(r.join(s)) == 4

    def test_semijoin(self):
        r = rel("r", ["a", "b"], [(1, 2), (2, 3)])
        s = rel("s", ["b"], [(2,)])
        assert r.semijoin(s).tuples == frozenset({(1, 2)})

    def test_empty_relation_flows(self):
        r = rel("r", ["a"], [])
        s = rel("s", ["a"], [(1,)])
        assert r.join(s).is_empty()
        assert s.semijoin(r).is_empty()

    def test_join_all_tracks_intermediates(self):
        rs = [
            rel("r1", ["a", "b"], [(i, i + 1) for i in range(5)]),
            rel("r2", ["b", "c"], [(i, i + 1) for i in range(5)]),
        ]
        out, cost = join_all(rs)
        assert cost == len(rs[0]) + len(out)

    def test_join_all_empty_input(self):
        with pytest.raises(ValueError):
            join_all([])


@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_join_matches_nested_loop_semantics(rows_r, rows_s):
    r = rel("r", ["a", "b"], rows_r)
    s = rel("s", ["b", "c"], rows_s)
    expected = frozenset(
        (ra, rb, sc) for ra, rb in rows_r for sb, sc in rows_s if rb == sb
    )
    assert r.join(s).tuples == expected


@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12),
    st.sets(st.tuples(st.integers(0, 4),), max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_semijoin_matches_filter_semantics(rows_r, rows_s):
    r = rel("r", ["a", "b"], rows_r)
    s = rel("s", ["b"], rows_s)
    keys = {b for (b,) in rows_s}
    expected = frozenset(row for row in rows_r if row[1] in keys)
    assert r.semijoin(s).tuples == expected
